"""End-to-end GDN request-path throughput — the macro trajectory bench.

Where ``bench_kernel_throughput.py`` measures the kernel/RPC substrate
in isolation, this benchmark grinds the *whole* serving stack the way
a user download does: browser → access-point HTTPD → Globe Object
Server (bound through a GLS lookup) → file bytes back.  The workload
is driven through the scenario engine (an open-loop
:class:`~repro.workloads.loadgen.UniformSchedule` over every site of
the topology, one long-lived browser per site), so the measured path
is exactly the one every figure experiment exercises.

The persisted record (``results/gdn_request_path.json``) carries
``requests_per_sec`` and ``events_per_sec`` with the same stable keys
as the kernel records, so ``check_trajectory.py`` gates it alongside
them: a regression anywhere in the serving stack — transport, RPC
dispatch, serde charging, GOS/HTTPD handlers — shows up here even
when the kernel microbenchmarks stay flat.

Setup (deployment build, publication, replication push) is excluded
from the timed window; the timed window covers the request drive
only.  The usual cancellation invariant is asserted at the end: after
the load drains, no stale guard timers may remain in the heap.
"""

import os
import time

from conftest import best_of as _best_of, save_json

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.sim.topology import Topology
from repro.workloads.loadgen import LoadStats, UniformSchedule
from repro.workloads.packages import synthetic_file
from repro.workloads.scenario import OpenLoopScenario

# Overridable so CI can run a reduced smoke pass (rates are
# per-second; committed baselines come from the full-scale defaults).
GDN_REQUESTS = int(os.environ.get("BENCH_GDN_REQUESTS", 2_000))
#: Open-loop offered load, requests/second of simulated time.
GDN_RATE = float(os.environ.get("BENCH_GDN_RATE", 400.0))

PACKAGE = "/apps/devel/HotRelease"
_FILE = "release.tar.gz"


def _build_deployment(seed: int = 23) -> GdnDeployment:
    """Two regions, one GOS+HTTPD pair each, one replicated package."""
    topology = Topology.balanced(regions=2, countries=1, cities=1, sites=2)
    gdn = GdnDeployment(topology=topology, seed=seed, secure=False)
    for index, region in enumerate(gdn._regions()):
        gdn.add_gos("gos-%d" % index, next(region.sites()))
    for index, gos_name in enumerate(sorted(gdn.object_servers)):
        gdn.add_httpd("httpd-%d" % index, colocate_with=gos_name)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")

    def publish():
        yield from moderator.create_package(
            PACKAGE, {_FILE: synthetic_file("hot", 8_000)},
            ReplicationScenario.master_slave(
                "gos-0", ["gos-1"], cache_ttl=600.0))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(5.0)
    return gdn


def test_gdn_request_path_throughput(benchmark):
    """Requests/sec and events/sec for the full download path."""

    def measure():
        gdn = _build_deployment()
        world = gdn.world
        browser_for = gdn.browser_pool("bench")

        def one_request(arrival):
            response = yield from browser_for(arrival.site).download(
                PACKAGE, _FILE)
            return response.ok

        # Warm the serving path once per site before the timed window
        # (browser channels connected, HTTPDs bound through the GLS):
        # the record then measures steady-state serving, so the rate
        # is comparable across request counts (CI runs reduced scale
        # against the committed full-scale baseline).
        def warm():
            for site in world.topology.sites:
                response = yield from browser_for(site).download(
                    PACKAGE, _FILE)
                assert response.ok
        gdn.run(warm())

        stats = LoadStats(registry=world.metrics, prefix="bench")
        scenario = OpenLoopScenario(UniformSchedule(GDN_RATE), GDN_REQUESTS,
                                    sites=world.topology.sites,
                                    label="gdn-request-path")
        events_before = world.sim.events_processed
        timers_before = world.sim.timers_scheduled
        lookups_before = gdn.gls.total_requests()
        started = time.perf_counter()
        sim_elapsed = gdn.run(
            scenario.drive(world.sim, one_request,
                           rng=world.rng_for("bench"), stats=stats),
            limit=1e9)
        wall = time.perf_counter() - started
        events = world.sim.events_processed - events_before
        assert stats.ok == GDN_REQUESTS, \
            "every request must succeed (got %d ok / %d failed)" \
            % (stats.ok, stats.failed)
        sim = world.sim
        # The simulator-wide deadline pool (connect/call guards on the
        # serving path) must be fully drained once the load completes.
        assert world.metrics.get("kernel.deadline_pool.depth").value == 0
        return ({"requests_per_sec": GDN_REQUESTS / wall,
                 "events_per_sec": events / wall,
                 "events_per_request": events / GDN_REQUESTS,
                 "timers_per_request":
                     (sim.timers_scheduled - timers_before) / GDN_REQUESTS,
                 # Directory-tree load per served request (the flash-
                 # crowd cache drives this down; this deployment runs
                 # cache-off, recording the reference ratio).
                 "upstream_lookups_per_request":
                     (gdn.gls.total_requests() - lookups_before)
                     / GDN_REQUESTS,
                 "peak_heap_size": sim.peak_heap_size,
                 "peak_ready_size": sim.peak_ready_size,
                 "heap_after_run": sim.heap_size,
                 "stale_after_run": sim.stale_timer_count,
                 "sim_throughput_per_sec": stats.throughput(sim_elapsed),
                 # Simulated user-perceived latency (cost-model trail:
                 # the serving stack must not drift silently).
                 "sim_latency_p50_ms": stats.latency.p(50) * 1e3,
                 "sim_latency_p95_ms": stats.latency.p(95) * 1e3,
                 "sim_latency_mean_ms": stats.latency.mean * 1e3},
                stats.ok)

    metrics, served = _best_of(benchmark, measure, "requests_per_sec")
    # Every RPC on the path cancels its guard timer on completion: a
    # drained run leaves nothing stale, and the heap stays bounded by
    # in-flight work (open-loop backlog), not by total requests.
    assert metrics["stale_after_run"] == 0
    assert metrics["peak_heap_size"] < GDN_REQUESTS
    benchmark.extra_info.update(metrics)
    save_json("gdn_request_path", metrics)
