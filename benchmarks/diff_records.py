#!/usr/bin/env python3
"""Cross-PR rate diff: this run's bench records vs a previous run's.

Where ``check_trajectory.py`` *gates* a run against the committed
baselines, this script only *informs*: CI downloads the most recent
``bench-records-<sha>`` artifact from an earlier workflow run and
prints a rate-by-rate diff table next to the trajectory gate, so a
PR's effect on runner-class numbers is visible without re-running
anything locally.  It never fails the build — runner classes differ
between runs, and the comparison is context, not a contract.

Usage::

    python benchmarks/diff_records.py --old <prev-artifact-dir> \
        --new <fresh-records-dir> [--label-old <sha>] [--label-new <sha>]

Exit status is 0 unless the directories are unusable (2).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from check_trajectory import RATE_METRICS

#: Ratio metrics ride along in the diff table (never gated): the
#: timers-scheduled-per-request ratio makes cross-PR timer-churn
#: regressions visible right next to the rate diff, the
#: wall-clock-per-simulated-user ratio does the same for the
#: population-scaling bench, and the upstream-GLS-lookups-per-request
#: ratio tracks how hard the serving tier leans on the directory
#: tree.  The chunked-transfer record contributes its faulted arm's
#: retry and re-fetch waste (``chunk_retries_per_transfer``,
#: ``bytes_refetched_ratio``).  Unlike the rates, lower is better.
RATIO_METRICS = ("timers_per_request", "events_per_request",
                 "wall_clock_us_per_user",
                 "upstream_lookups_per_request",
                 "chunk_retries_per_transfer",
                 "bytes_refetched_ratio")

#: Quality ratios where *higher* is better (the cache's hit rate on
#: the flash-crowd record); printed alongside but annotated the other
#: way around.
QUALITY_METRICS = ("cache_hit_rate",)


def diff_directories(old_dir: pathlib.Path, new_dir: pathlib.Path
                     ) -> List[dict]:
    """Rows for every rate/ratio metric present in both same-named
    records."""
    rows: List[dict] = []
    for new_path in sorted(new_dir.glob("*.json")):
        old_path = old_dir / new_path.name
        status = "" if old_path.exists() else "new benchmark"
        new_record = json.loads(new_path.read_text())
        old_record = (json.loads(old_path.read_text())
                      if old_path.exists() else {})
        for metric in RATE_METRICS + RATIO_METRICS + QUALITY_METRICS:
            if metric not in new_record:
                continue
            rows.append({
                "name": new_path.stem,
                "metric": metric,
                "old": (float(old_record[metric])
                        if metric in old_record else None),
                "new": float(new_record[metric]),
                "status": status,
            })
    for old_path in sorted(old_dir.glob("*.json")):
        if not (new_dir / old_path.name).exists():
            rows.append({"name": old_path.stem, "metric": "-",
                         "old": None, "new": None,
                         "status": "dropped benchmark"})
    return rows


def format_table(rows: List[dict], label_old: str, label_new: str) -> str:
    lines = ["cross-PR rate diff: %s -> %s" % (label_old, label_new),
             "%-24s %-18s %14s %14s %9s" % ("benchmark", "metric",
                                            label_old[:14], label_new[:14],
                                            "change")]
    for row in rows:
        # Ratios (per-request counts, hit rates) need decimals; rates
        # do not.
        value_format = ("%.3f" if row["metric"] in RATIO_METRICS
                        + QUALITY_METRICS else "%.0f")
        if row["old"] is None or row["new"] is None:
            old = "-" if row["old"] is None else value_format % row["old"]
            new = "-" if row["new"] is None else value_format % row["new"]
            change = row["status"] or "-"
            lines.append("%-24s %-18s %14s %14s  %s"
                         % (row["name"], row["metric"], old, new, change))
            continue
        change = (row["new"] / row["old"] - 1.0) if row["old"] else 0.0
        if row["metric"] in RATIO_METRICS:
            note = "  (lower is better)"
        elif row["metric"] in QUALITY_METRICS:
            note = "  (higher is better)"
        else:
            note = ""
        lines.append("%-24s %-18s %14s %14s  %+7.1f%%%s"
                     % (row["name"], row["metric"],
                        value_format % row["old"],
                        value_format % row["new"], change * 100.0, note))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="print a cross-PR bench-record rate diff "
                    "(informational; never fails)")
    parser.add_argument("--old", required=True, type=pathlib.Path,
                        help="directory of a previous run's *.json records")
    parser.add_argument("--new", required=True, type=pathlib.Path,
                        help="directory of this run's *.json records")
    parser.add_argument("--label-old", default="previous")
    parser.add_argument("--label-new", default="this run")
    args = parser.parse_args(argv)
    if not args.old.is_dir() or not args.new.is_dir():
        print("error: --old and --new must be directories",
              file=sys.stderr)
        return 2
    rows = diff_directories(args.old, args.new)
    if not rows:
        print("no comparable *.json records found")
        return 0
    print(format_table(rows, args.label_old, args.label_new))
    return 0


if __name__ == "__main__":
    sys.exit(main())
