"""A1 — eager push vs lazy TTL pull: consistency against traffic."""

from conftest import save_result

from repro.experiments.ablations import (format_consistency,
                                         run_consistency_ablation)


def test_a1_push_vs_pull(benchmark):
    result = benchmark.pedantic(run_consistency_ablation,
                                rounds=1, iterations=1)
    save_result("A1_push_vs_pull", format_consistency(result))
    push, pull = result["rows"]
    # Push keeps replicas perfectly fresh; pull trades staleness for
    # demand-driven traffic.
    assert push["stale"] == 0
    assert pull["stale"] > 0
    benchmark.extra_info["pull_stale"] = pull["stale"]
    benchmark.extra_info["push_wan_kib"] = push["wan_bytes"] / 1024
