"""Chunked-transfer bench: budgeted resumable downloads (ISSUE 9).

Large objects move as per-chunk RPCs through an HTTPD proxy with
client-side reassembly, integrity verification, and a persistent
resume token (``src/repro/gdn/transfer.py``).  Two arms bracket the
subsystem:

* **clean** — a closed-loop population downloads a multi-chunk
  package across regions with no faults.  Measured: wall-clock
  transfers/sec and events/sec (the trajectory-gated rates), simulated
  transfer throughput and latency, and the no-waste baselines
  (``chunk_retries_per_transfer`` and ``bytes_refetched_ratio`` must
  both be ~0).
* **faulted** — the same workload rides out two scheduled partitions
  of the clients' site.  Interrupted transfers restart from their
  checkpointed token, so the arm must complete >=99% of transfers
  while fetching at most ``1 + LOSS_BOUND`` of the object bytes —
  resumption, not restart-from-zero, is what bounds the waste.

The persisted record (``results/chunked_transfer.json``) carries the
gated rates plus the quality ratios that ``diff_records.py`` prints
across PRs (lower is better for both).
"""

import os
import time

from conftest import best_of as _best_of, save_json

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.gdn.transfer import (ResumeToken, TransferBudgetExhausted,
                                TransferError)
from repro.sim.failures import FailureInjector
from repro.sim.retry import ExponentialBackoff, RetryBudget
from repro.sim.topology import Topology
from repro.workloads.loadgen import LoadStats
from repro.workloads.packages import synthetic_file
from repro.workloads.scenario import ClosedLoopScenario

# Overridable so CI can run a reduced smoke pass (committed baselines
# come from the full-scale defaults).
XFER_CLIENTS = int(os.environ.get("BENCH_XFER_CLIENTS", 4))
XFER_EACH = int(os.environ.get("BENCH_XFER_EACH", 3))
XFER_CHUNKS = int(os.environ.get("BENCH_XFER_CHUNKS", 48))

CHUNK = 2048
PACKAGE = "/apps/devel/BigTarball"
_FILE = "big.tar.gz"

#: The faulted arm's waste budget: total fetched bytes may not exceed
#: ``(1 + LOSS_BOUND) x`` the bytes actually delivered.  Resumption
#: keeps the real ratio far below this (a restart re-fetches at most
#: the one chunk that was in flight when the partition hit).
LOSS_BOUND = 0.25

#: Two partition windows, offsets into the drive.  The first opens a
#: few seconds in, while every first-wave transfer is mid-chunk (at
#: reduced CI scale too), so interrupted transfers must resume from
#: their checkpointed token; the second catches later waves at full
#: scale.  The gaps let checkpointed transfers finish between faults.
PARTITIONS = ((4.0, 20.0), (55.0, 15.0))

CLIENT_SITE = "r1/c0/m0/s0"


def _build():
    """One serving GOS; the access point is *not* colocated and never
    caches, so every chunk read crosses to the object server — the
    worst-case path the resume token has to protect."""
    topology = Topology.balanced(regions=2, countries=1, cities=1,
                                 sites=2)
    gdn = GdnDeployment(topology=topology, seed=37, secure=False)
    gdn.add_gos("gos-0", "r0/c0/m0/s0")
    gdn.add_httpd("ap", site="r0/c0/m0/s1",
                  cache_policy=lambda _name: None)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")
    payload = synthetic_file("big-tarball", CHUNK * XFER_CHUNKS)

    def publish():
        yield from moderator.create_package(
            PACKAGE, {_FILE: payload},
            ReplicationScenario.single_server("gos-0", cache_ttl=None))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(2.0)
    return gdn, payload


def _run_arm(faulted):
    """Drive one arm; return its metrics dict."""
    gdn, payload = _build()
    world = gdn.world
    policy = ExponentialBackoff(timeout=2.0, retries=3, base=0.5,
                                multiplier=2.0, max_delay=4.0, jitter=0.5)
    # A refilling budget: partitions may retry freely over time, but a
    # coordinated burst (or restart-from-zero waste) still cannot
    # exceed ``burst`` charges in one window.
    budget = RetryBudget(rate=2.0, burst=64.0)
    downloader = gdn.chunked_downloader(policy=policy, budget=budget,
                                        resume=True, chunk_size=CHUNK)
    browser_for = gdn.browser_pool("bench")
    sim = world.sim

    def one_transfer(arrival):
        browser = browser_for(arrival.site)
        saved = {}

        def checkpoint(token):
            saved["wire"] = token.to_wire()

        for _attempt in range(12):
            token = (ResumeToken.from_wire(saved["wire"])
                     if "wire" in saved else None)
            try:
                data, _token = yield from downloader.download(
                    browser, PACKAGE, _FILE, token=token,
                    checkpoint=checkpoint)
            except TransferBudgetExhausted:
                return False
            except TransferError:
                yield sim.timeout(2.0)
                continue
            return data == payload
        return False

    if faulted:
        injector = FailureInjector(world)
        base = world.now
        for start, duration in PARTITIONS:
            injector.partition_domain(world.topology.site(CLIENT_SITE),
                                      base + start, duration)

    stats = LoadStats(registry=world.metrics, prefix="bench")
    scenario = ClosedLoopScenario(
        XFER_CLIENTS, 1.0, requests_per_client=XFER_EACH,
        sites=[world.topology.site(CLIENT_SITE)], think="fixed",
        label="chunked-%s" % ("faulted" if faulted else "clean"))
    events_before = world.sim.events_processed
    started = time.perf_counter()
    sim_elapsed = gdn.run(
        scenario.drive(world.sim, one_transfer,
                       rng=world.rng_for("bench"), stats=stats),
        limit=1e9)
    wall = time.perf_counter() - started
    browser_for.close()
    transfers = XFER_CLIENTS * XFER_EACH
    return {
        "transfers": transfers,
        "completed": stats.ok,
        "completed_ratio": stats.ok / transfers,
        "requests_per_sec": stats.ok / wall,
        "events_per_sec":
            (world.sim.events_processed - events_before) / wall,
        "sim_throughput_per_sec": stats.throughput(sim_elapsed),
        "sim_latency_mean_ms": stats.latency.mean * 1e3,
        "chunk_retries_per_transfer":
            downloader.chunks_retried / transfers,
        "bytes_refetched_ratio": downloader.refetch_ratio(),
        "bytes_fetched": downloader.bytes_fetched,
        "bytes_applied": downloader.bytes_applied,
        "resumes": downloader.resumes,
    }


def test_chunked_transfer_arms(benchmark):
    """Clean arm: every transfer completes with zero waste.  Faulted
    arm: >=99% complete and fetched bytes stay within the loss bound."""

    def measure():
        clean = _run_arm(faulted=False)
        faulted = _run_arm(faulted=True)
        return ({
            # Gated rates come from the clean arm — the steady-state
            # serving path whose regressions the trajectory must catch.
            "requests_per_sec": clean["requests_per_sec"],
            "events_per_sec": clean["events_per_sec"],
            "sim_throughput_per_sec": clean["sim_throughput_per_sec"],
            "sim_latency_mean_ms": clean["sim_latency_mean_ms"],
            "sim_latency_faulted_mean_ms":
                faulted["sim_latency_mean_ms"],
            # Quality ratios (diff_records.py context, lower is
            # better): the clean arm pins the no-waste baseline, the
            # faulted arm shows what the faults actually cost.
            "chunk_retries_per_transfer":
                faulted["chunk_retries_per_transfer"],
            "bytes_refetched_ratio": faulted["bytes_refetched_ratio"],
            "faulted_completed_ratio": faulted["completed_ratio"],
            "faulted_resumes": faulted["resumes"],
            "clean_chunk_retries_per_transfer":
                clean["chunk_retries_per_transfer"],
            "clean_bytes_refetched_ratio":
                clean["bytes_refetched_ratio"],
            "clean_completed_ratio": clean["completed_ratio"],
            "faulted_bytes_fetched": faulted["bytes_fetched"],
            "faulted_bytes_applied": faulted["bytes_applied"],
        }, None)

    metrics, _ = _best_of(benchmark, measure, "requests_per_sec")

    # Clean arm: nothing fails, nothing is wasted.
    assert metrics["clean_completed_ratio"] == 1.0, metrics
    assert metrics["clean_chunk_retries_per_transfer"] == 0.0, metrics
    assert metrics["clean_bytes_refetched_ratio"] == 0.0, metrics
    # Faulted arm: the acceptance bound — >=99% of transfers complete,
    # re-fetching at most (1 + LOSS_BOUND) of the delivered bytes.
    assert metrics["faulted_completed_ratio"] >= 0.99, metrics
    assert metrics["faulted_bytes_fetched"] <= \
        (1.0 + LOSS_BOUND) * metrics["faulted_bytes_applied"], metrics
    # The faults really interrupted transfers (resumption did work).
    assert metrics["faulted_resumes"] > 0, metrics

    benchmark.extra_info.update(metrics)
    save_json("chunked_transfer", metrics)
