"""E5 / §3.1 — per-object scenarios vs one-size-fits-all (Pierre et al.)."""

from conftest import save_result

from repro.experiments.e5_adaptive import (format_result,
                                           run_adaptive_replication_experiment)


def test_e5_adaptive_replication(benchmark):
    result = benchmark.pedantic(run_adaptive_replication_experiment,
                                rounds=1, iterations=1)
    save_result("E5_sec31_adaptive_replication", format_result(result))
    rows = {row["strategy"]: row for row in result["rows"]}
    adaptive = rows["Adaptive"]
    norepl = rows["NoRepl"]
    replall = rows["ReplAll"]
    # The study's conclusion: per-object assignment generates less
    # wide-area traffic than every uniform strategy...
    for name, row in rows.items():
        if name != "Adaptive":
            assert adaptive["wan_bytes"] <= row["wan_bytes"], name
    # ...while improving response time over the no-replication Web
    # baseline and approaching replicate-everything latency at a
    # fraction of its replica count.
    assert adaptive["latency"].mean < 0.6 * norepl["latency"].mean
    assert adaptive["replicas"] < replall["replicas"]
    benchmark.extra_info["adaptive_wan_mib"] = \
        adaptive["wan_bytes"] / (1024 * 1024)
    benchmark.extra_info["norepl_wan_mib"] = \
        norepl["wan_bytes"] / (1024 * 1024)
