"""Population scaling: wall-clock and req/s vs simulated users.

The million-user headline of the aggregated-cohort model (ISSUE 6):
one :class:`AggregatedPopulation` generator per (site, cohort) drives
thousands of merged clients through a single order-statistics arrival
process, and the server answers each request with one
``send_burst``-batched fragment download — so kernel cost scales with
*activity*, not with population.

The benchmark sweeps population 10^3 → 10^6 under a committed diurnal
profile, records wall-clock, requests/sec (real time) and
wall-clock-per-simulated-user at every scale, and persists the sweep
as ``results/scaling_population.json`` under the perf-trajectory gate
(the gated rates come from the largest scale swept).  Total request
count is held constant across scales (think time grows with
population), so the sweep isolates the cost of *representing users* —
which is exactly what aggregation is supposed to crush: wall clock
must grow far slower than population.
"""

import os
import time

from conftest import best_of as _best_of, save_json

from repro.sim.topology import Topology
from repro.sim.world import World
from repro.workloads.cohort import CohortScenario, DiurnalProfile
from repro.workloads.loadgen import LoadStats
from repro.workloads.scenario import RequestMix

# Full-scale default sweeps to one million simulated users; CI smoke
# caps the sweep (and shrinks the simulated day) via env.
POP_MAX = int(os.environ.get("BENCH_POP_MAX", 1_000_000))
SIM_DURATION = float(os.environ.get("BENCH_POP_DURATION", 600.0))
FRAGMENTS = int(os.environ.get("BENCH_POP_FRAGMENTS", 8))
#: Total requests targeted per scale — held constant across the sweep
#: (think time grows with population) so the only thing that varies is
#: how many *users* the kernel must represent.
REQUEST_TOTAL = int(os.environ.get("BENCH_POP_REQUESTS", 200_000))

SCALES = [s for s in (1_000, 10_000, 100_000, 1_000_000) if s <= POP_MAX]


def run_scale(population: int) -> dict:
    world = World(topology=Topology.balanced(4, 4, 4, 4), seed=42)
    sim = world.sim
    topo = world.topology

    # One origin server; every request is a fragment download the
    # server answers with a single batched burst (deliver_burst).
    server = world.host("origin", topo.site("r0/c0/m0/s0"))
    server_sock = server.udp_socket(80)

    def serve():
        while True:
            datagram = yield server_sock.recv()
            reply_port, fragments = datagram.payload
            server_sock.send_burst(
                datagram.src_host, reply_port,
                [(("frag", index), 4096) for index in range(fragments)])

    server.spawn(serve())

    client_sites = topo.sites[1:]
    hosts = {site.path: world.host("client@" + site.path, site)
             for site in client_sites}

    def download(arrival):
        host = hosts[arrival.site.path]
        sock = host.udp_socket()
        sock.send_to(server, 80, (sock.port, FRAGMENTS), size=64)
        received = 0
        while received < FRAGMENTS:
            yield sock.recv()
            received += 1
        sock.close()
        return True

    # Mean think time such that the diurnally-modulated issue rate
    # integrates to REQUEST_TOTAL over the run, independent of scale:
    # clients * mean_multiplier * duration / think ≈ REQUEST_TOTAL.
    profile = DiurnalProfile.sinusoidal(slots=24, floor=0.2,
                                        period=SIM_DURATION)
    think = (population * profile.mean_multiplier() * SIM_DURATION
             / REQUEST_TOTAL)
    scenario = CohortScenario(population, think, duration=SIM_DURATION,
                              sites=client_sites,
                              mix=RequestMix(1024, alpha=1.0,
                                             write_fraction=0.0),
                              cohort_size=8192, profile=profile)

    import random
    stats = LoadStats()
    started = time.perf_counter()
    elapsed = world.run_until(
        sim.process(scenario.drive(sim, download, rng=random.Random(7),
                                   stats=stats)),
        limit=1e12)
    wall = time.perf_counter() - started
    assert stats.in_flight == 0
    assert stats.issued > 0
    assert elapsed >= SIM_DURATION
    return {
        "population": population,
        "wall_clock_sec": wall,
        "wall_clock_us_per_user": wall / population * 1e6,
        "requests_issued": stats.issued,
        "requests_per_sec": stats.issued / wall,
        "events_per_sec": sim.events_processed / wall,
        "events_processed": sim.events_processed,
        "timers_scheduled": sim.timers_scheduled,
        "burst_calls": world.network.burst_calls,
        "burst_messages": world.network.burst_messages,
        "peak_heap_size": sim.peak_heap_size,
    }


def test_population_scaling(benchmark):
    """Sweep 10^3 → POP_MAX; gate rates at the largest scale."""

    def measure():
        sweep = [run_scale(population) for population in SCALES]
        head = sweep[-1]
        record = {
            "requests_per_sec": head["requests_per_sec"],
            "events_per_sec": head["events_per_sec"],
            "population": head["population"],
            "wall_clock_sec": head["wall_clock_sec"],
            "wall_clock_us_per_user": head["wall_clock_us_per_user"],
            "timers_per_request":
                head["timers_scheduled"] / head["requests_issued"],
            "events_per_request":
                head["events_processed"] / head["requests_issued"],
            "sweep": sweep,
        }
        return record, sweep

    metrics, sweep = _best_of(benchmark, measure, "requests_per_sec",
                              passes=1)

    lines = ["population scaling (diurnal, %d-fragment burst downloads)"
             % FRAGMENTS,
             "%10s %12s %14s %12s %16s" % ("users", "requests",
                                           "wall-clock(s)", "req/s",
                                           "us-per-user")]
    for row in sweep:
        lines.append("%10d %12d %14.2f %12.0f %16.2f"
                     % (row["population"], row["requests_issued"],
                        row["wall_clock_sec"], row["requests_per_sec"],
                        row["wall_clock_us_per_user"]))
    print()
    print("\n".join(lines))

    # Aggregation contract: with total activity held constant, wall
    # clock must grow far slower than population.  Allow generous
    # slack for per-cohort overhead and runner noise, but
    # linear-in-population blowups fail loudly.
    if len(sweep) >= 2:
        first, last = sweep[0], sweep[-1]
        scale_up = last["population"] / first["population"]
        slow_down = last["wall_clock_sec"] / max(first["wall_clock_sec"],
                                                 1e-9)
        assert slow_down < scale_up * 0.5, \
            "wall clock tracked population growth: %r" % (sweep,)
    benchmark.extra_info.update(
        {key: value for key, value in metrics.items() if key != "sweep"})
    save_json("scaling_population", metrics)
