"""E1 / Figure 1 — invocation cost through the subobject stack."""

from conftest import save_result

from repro.experiments.e1_dso_invocation import (
    format_result, run_dso_invocation_experiment)


def test_e1_dso_invocation(benchmark):
    result = benchmark.pedantic(run_dso_invocation_experiment,
                                rounds=1, iterations=1)
    save_result("E1_fig1_dso_invocation", format_result(result))
    rows = {row["representative"]: row for row in result["rows"]}
    local = rows["cache role (fresh copy)"]
    same_site = rows["client role, same site"]
    world = rows["client role, cross world"]
    # Local execution through the stack is free in simulated time;
    # remote costs are dominated by network separation.
    assert local["read_small"] == 0.0
    assert same_site["read_small"] > 0.0
    assert world["read_small"] > 100 * same_site["read_small"]
    benchmark.extra_info["cross_world_ms"] = world["read_small"] * 1e3
