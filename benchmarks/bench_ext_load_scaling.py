"""E10 (extension) — server saturation vs per-region replication."""

from conftest import save_result

from repro.experiments.e10_load_scaling import (assert_shape, format_result,
                                                run_load_scaling_experiment)


def test_e10_load_scaling(benchmark):
    result = benchmark.pedantic(run_load_scaling_experiment,
                                rounds=1, iterations=1)
    save_result("E10_ext_load_scaling", format_result(result))
    assert_shape(result)
    single_worst = [row for row in result["rows"]
                    if not row["replicate"]][-1]
    replicated_worst = [row for row in result["rows"]
                        if row["replicate"]][-1]
    benchmark.extra_info["single_mean_ms"] = \
        single_worst["latency"].mean * 1e3
    benchmark.extra_info["replicated_mean_ms"] = \
        replicated_worst["latency"].mean * 1e3
