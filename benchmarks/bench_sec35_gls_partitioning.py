"""E6 / §3.5 — partitioning directory nodes into hashed subnodes."""

from conftest import save_result

from repro.experiments.e6_partitioning import (assert_shape, format_result,
                                               run_partitioning_experiment)


def test_e6_gls_partitioning(benchmark):
    result = benchmark.pedantic(run_partitioning_experiment,
                                rounds=1, iterations=1)
    save_result("E6_sec35_gls_partitioning", format_result(result))
    assert_shape(result)
    rows = result["rows"]
    benchmark.extra_info["root_load_k1"] = rows[0]["root_load_max"]
    benchmark.extra_info["root_load_k8"] = rows[-1]["root_load_max"]
