"""E4 / Figure 4 — the cost of TLS channel configurations."""

from conftest import save_result

from repro.experiments.e4_security import (assert_shape, format_result,
                                           run_security_overhead_experiment)


def test_e4_security_overhead(benchmark):
    result = benchmark.pedantic(run_security_overhead_experiment,
                                rounds=1, iterations=1)
    save_result("E4_fig4_security_overhead", format_result(result))
    assert_shape(result)
    plain, one_way, two_way, integrity = result["rows"]
    benchmark.extra_info["tls_handshake_overhead_ms"] = \
        (two_way["handshake"] - plain["handshake"]) * 1e3
    benchmark.extra_info["encryption_bulk_overhead_pct"] = \
        two_way["large_overhead"]
    benchmark.extra_info["integrity_only_bulk_overhead_pct"] = \
        integrity["large_overhead"]
