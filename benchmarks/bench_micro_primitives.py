"""Wall-clock micro-benchmarks of the reproduction's hot primitives.

Unlike the experiment benches (which time one full simulated run),
these use pytest-benchmark conventionally — many rounds over the pure
in-process building blocks: the opaque-invocation codec, OID hashing,
the event loop, and the RSA used by the TLS layer.
"""

import random

from repro.core.ids import ObjectId
from repro.core.marshal import marshal_invocation, pack, unpack
from repro.security.crypto import RsaKeyPair
from repro.sim.kernel import Simulator
from repro.workloads.packages import synthetic_file

_INVOCATION_ARGS = {"path": "bin/gimp", "offset": 0,
                    "meta": {"version": 3, "tags": ["a", "b"]}}
_STATE = {"files": {"f%02d" % i: synthetic_file("bench", 2048)
                    for i in range(32)},
          "attributes": {"category": "graphics"}, "version": 7}


def test_marshal_invocation(benchmark):
    payload = benchmark(marshal_invocation, "getFileContents",
                        _INVOCATION_ARGS)
    assert isinstance(payload, bytes)


def test_pack_package_state(benchmark):
    data = benchmark(pack, _STATE)
    assert len(data) > 32 * 2048


def test_unpack_package_state(benchmark):
    data = pack(_STATE)
    state = benchmark(unpack, data)
    assert state["version"] == 7


def test_oid_shard(benchmark):
    oid = ObjectId.from_seed("bench-object")
    shard = benchmark(oid.shard, 16)
    assert 0 <= shard < 16


def test_event_loop_throughput(benchmark):
    """Events processed per benchmark round: 10k chained timeouts."""

    def run_chain():
        sim = Simulator()

        def chain():
            for _ in range(10_000):
                yield sim.timeout(0.001)

        sim.process(chain())
        sim.run()
        return sim.events_processed

    events = benchmark(run_chain)
    assert events >= 10_000


def test_rsa_sign(benchmark):
    keypair = RsaKeyPair.generate(random.Random(1), bits=512)
    signature = benchmark(keypair.sign, b"package digest")
    assert keypair.public.verify(b"package digest", signature)


def test_rsa_verify(benchmark):
    keypair = RsaKeyPair.generate(random.Random(2), bits=512)
    signature = keypair.sign(b"package digest")
    ok = benchmark(keypair.public.verify, b"package digest", signature)
    assert ok
