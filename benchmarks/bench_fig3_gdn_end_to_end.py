"""E3 / Figure 3 — GDN vs single-origin WWW vs FTP mirroring."""

from conftest import save_result

from repro.experiments.e3_end_to_end import (format_result,
                                             run_end_to_end_experiment)


def test_e3_gdn_end_to_end(benchmark):
    result = benchmark.pedantic(run_end_to_end_experiment,
                                rounds=1, iterations=1)
    save_result("E3_fig3_end_to_end", format_result(result))
    www, mirror, gdn = result["rows"]
    # The paper's positioning: the GDN beats the single-origin Web on
    # user latency by serving from nearby replicas...
    assert gdn["latency"].mean < 0.7 * www["latency"].mean
    # ...and beats indiscriminate mirroring on distribution traffic.
    assert gdn["setup_wan"] <= mirror["setup_wan"]
    benchmark.extra_info["www_mean_ms"] = www["latency"].mean * 1e3
    benchmark.extra_info["gdn_mean_ms"] = gdn["latency"].mean * 1e3
