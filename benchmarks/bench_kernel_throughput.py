"""Kernel/RPC fast-path throughput — the perf-trajectory benchmark.

Three microbenchmarks of the hottest path in the repo, each persisting
a comparable JSON record (events/sec, requests/sec, peak heap size)
via ``conftest.save_json`` so successive PRs can be compared:

* pure event-loop throughput (chained + parallel timers),
* guard-timer churn (create/cancel, the RPC deadline pattern), and
* UDP RPC echo round-trips over the simulated network — the pattern
  every Globe Location Service lookup follows.

The echo benchmark also asserts the cancellation invariant: a
successful call must leave *no* timer behind, so the heap stays small
no matter how many requests a run pushes through.

Metrics are sourced from the telemetry registry (the same
function-backed instruments every experiment reads), and the records
carry streaming-histogram summaries of per-request simulated latency
— extra keys are ignored by ``check_trajectory.py``, which gates only
the ``*_per_sec`` rates.
"""

import os
import time

from conftest import best_of as _best_of, save_json

from repro.analysis.telemetry import MetricsRegistry
from repro.sim.kernel import Simulator
from repro.sim.rpc import UdpRpcClient, UdpRpcServer
from repro.sim.topology import Topology
from repro.sim.world import World

# Request counts are overridable so CI can run a reduced smoke pass
# (rates are per-second and roughly scale-independent; the committed
# baselines under results/ come from the full-scale defaults).
CHAIN_EVENTS = int(os.environ.get("BENCH_CHAIN_EVENTS", 50_000))
CHURN_TIMERS = int(os.environ.get("BENCH_CHURN_TIMERS", 50_000))
ECHO_CALLS = int(os.environ.get("BENCH_ECHO_CALLS", 2_000))


def test_event_loop_throughput(benchmark):
    """Events/sec over chained and overlapping timers."""

    def measure():
        sim = Simulator()

        def chain():
            for _ in range(CHAIN_EVENTS):
                yield sim.timeout(0.001)

        def background():
            # Overlapping timers keep the heap populated, so heappush /
            # heappop run at realistic depth rather than on a near-empty
            # heap.
            for _ in range(CHAIN_EVENTS // 10):
                yield sim.timeout(0.011)

        sim.process(chain())
        sim.process(background())
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
        return ({"events_per_sec": sim.events_processed / wall,
                 "peak_heap_size": sim.peak_heap_size},
                sim.events_processed)

    metrics, events = _best_of(benchmark, measure, "events_per_sec")
    assert events >= CHAIN_EVENTS
    benchmark.extra_info.update(metrics)
    save_json("kernel_event_loop", metrics)


def test_timer_cancellation_churn(benchmark):
    """Create-then-cancel guard timers: the RPC deadline pattern.

    Every iteration arms a long deadline and cancels it almost
    immediately — what a successful RPC does.  Lazy invalidation plus
    compaction must keep the heap from accumulating dead timers.
    """

    def measure():
        sim = Simulator()
        registry = MetricsRegistry()
        sim.bind_metrics(registry)

        def churn():
            for _ in range(CHURN_TIMERS):
                guard = sim.timeout(1000.0)  # would linger ~forever
                yield sim.timeout(0.001)
                guard.cancel()

        sim.process(churn())
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
        cancelled = registry.get("kernel.timers_cancelled").value
        return ({"events_per_sec": sim.events_processed / wall,
                 "peak_heap_size": sim.peak_heap_size,
                 "timers_cancelled": cancelled,
                 "cancellations_per_sec": cancelled / wall,
                 "stale_after_run": sim.stale_timer_count},
                sim.peak_heap_size)

    metrics, peak = _best_of(benchmark, measure, "events_per_sec")
    # Without cancellation the heap would hold all CHURN_TIMERS dead
    # deadlines at once; with it, compaction caps the live+stale set.
    assert peak < CHURN_TIMERS // 10
    assert metrics["stale_after_run"] == 0
    benchmark.extra_info.update(metrics)
    save_json("kernel_timer_churn", metrics)


def test_udp_rpc_echo_throughput(benchmark):
    """Requests/sec and events/sec for back-to-back UDP RPC echoes."""

    def measure():
        world = World(topology=Topology.balanced(1, 1, 1, 2), seed=9)
        registry = world.metrics
        latency = registry.histogram("echo.sim_latency")
        a = world.host("client", "r0/c0/m0/s0")
        b = world.host("node", "r0/c0/m0/s1")
        server = UdpRpcServer(b, 5300)
        server.register("echo", lambda ctx, args: args["x"])
        server.start()
        client = UdpRpcClient(a)
        client.bind_metrics(registry, "echo.client")

        def caller():
            sim = world.sim
            for index in range(ECHO_CALLS):
                begun = sim.now
                value = yield from client.call(b, 5300, "echo", {"x": index})
                latency.record(sim.now - begun)
                assert value == index

        proc = a.spawn(caller())
        started = time.perf_counter()
        world.run_until(proc, limit=1e9)
        wall = time.perf_counter() - started
        sim = world.sim
        assert registry.get("echo.client.calls").value == ECHO_CALLS
        assert registry.get("echo.client.retries").value == 0
        # The deadline pool must drain: every guard was answered, so
        # no deadline may still be pending after the load completes.
        assert registry.get("echo.client.deadlines.depth").value == 0
        assert registry.get("echo.client.deadlines.armed").value \
            == ECHO_CALLS
        guard_arms = registry.get("echo.client.deadlines.timer_arms").value
        timers = registry.get("kernel.timers_scheduled").value
        events = registry.get("kernel.events_processed").value
        return ({"requests_per_sec": ECHO_CALLS / wall,
                 "events_per_sec": events / wall,
                 "peak_heap_size": sim.peak_heap_size,
                 "heap_after_run": sim.heap_size,
                 "stale_after_run": sim.stale_timer_count,
                 # Timer churn per request (two delivery timers per
                 # round trip + the pool's rare guard re-arms; the
                 # per-call-timer implementation sat at 3.0).
                 "timers_per_request": timers / ECHO_CALLS,
                 # Kernel events per round trip.  The inline inbox
                 # hand-off (Store.put_inline on the UDP path) resumes
                 # a parked recv() during the arrival timer's callback,
                 # so the two per-datagram run-queue events a round
                 # trip used to pay are gone (~5 -> ~3).
                 "events_per_request": events / ECHO_CALLS,
                 "guard_timer_arms": guard_arms,
                 # Simulated per-request latency from the streaming
                 # histogram (sanity trail: the sim cost model must not
                 # drift silently between PRs).
                 "sim_latency_p50_ms": latency.p(50) * 1e3,
                 "sim_latency_p95_ms": latency.p(95) * 1e3,
                 "sim_latency_mean_ms": latency.mean * 1e3},
                sim.peak_heap_size)

    metrics, peak = _best_of(benchmark, measure, "requests_per_sec")
    # Each call cancels its pooled retry deadline on success: the heap
    # must stay bounded by in-flight work, not by the number of calls
    # made, and guard timers must be pooled (well under one kernel arm
    # per guarded call — the ISSUE 5 acceptance number).
    assert peak < ECHO_CALLS // 10
    assert metrics["stale_after_run"] == 0
    assert metrics["timers_per_request"] < 2.2
    # Inline inbox hand-off: no run-queue event per delivered datagram.
    assert metrics["events_per_request"] < 4.0
    assert metrics["guard_timer_arms"] < ECHO_CALLS / 10
    benchmark.extra_info.update(metrics)
    save_json("kernel_udp_rpc_echo", metrics)
