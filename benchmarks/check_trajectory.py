#!/usr/bin/env python3
"""Perf-trajectory gate: fresh kernel benchmarks vs committed baselines.

The committed ``benchmarks/results/kernel_*.json`` records are the
repo's performance trajectory — each PR that claims a speedup (or must
not cause a slowdown) is compared against them.  This script reads a
directory of freshly produced records (run the benchmarks with
``BENCH_RESULTS_DIR`` pointing somewhere disposable) and **fails when
any rate metric regresses by more than the threshold** (default 30%,
generous because CI machines vary; the committed baselines come from
full-scale local runs).

Usage::

    BENCH_RESULTS_DIR=/tmp/fresh BENCH_ECHO_CALLS=500 \
        python -m pytest benchmarks/bench_kernel_throughput.py -q
    python benchmarks/check_trajectory.py --fresh /tmp/fresh

Exit status 0 = within budget, 1 = regression, 2 = usage error.
Override / refresh flow: see benchmarks/README.md (set
``TRAJECTORY_SKIP=1`` to bypass a known-noisy run; refresh baselines
by re-running the benchmarks at full scale without
``BENCH_RESULTS_DIR`` and committing the updated json).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Dict, List, Optional, Tuple

#: Only rate metrics gate the trajectory; size/leak metrics
#: (peak_heap_size, stale_after_run) are asserted by the benchmarks
#: themselves and depend on the configured request counts.
RATE_METRICS = ("requests_per_sec", "events_per_sec")

DEFAULT_THRESHOLD = 0.30
BASELINE_DIR = pathlib.Path(__file__).parent / "results"


def compare_records(name: str, baseline: Dict, fresh: Dict,
                    threshold: float = DEFAULT_THRESHOLD
                    ) -> Tuple[List[dict], List[dict]]:
    """Compare one benchmark record; return (rows, regressions).

    A row is produced per rate metric present in both records; it is a
    regression when the fresh rate dropped more than ``threshold``
    relative to the baseline.
    """
    rows: List[dict] = []
    regressions: List[dict] = []
    for metric in RATE_METRICS:
        if metric not in baseline or metric not in fresh:
            continue
        base = float(baseline[metric])
        new = float(fresh[metric])
        if base <= 0:
            continue
        change = new / base - 1.0
        row = {"name": name, "metric": metric, "baseline": base,
               "fresh": new, "change": change}
        rows.append(row)
        if change < -threshold:
            regressions.append(row)
    return rows, regressions


def check_directory(fresh_dir: pathlib.Path,
                    baseline_dir: pathlib.Path = BASELINE_DIR,
                    threshold: float = DEFAULT_THRESHOLD
                    ) -> Tuple[List[dict], List[dict], List[str]]:
    """Compare every ``*.json`` record in ``fresh_dir`` against its
    same-named committed baseline; returns (rows, regressions,
    unmatched names)."""
    rows: List[dict] = []
    regressions: List[dict] = []
    unmatched: List[str] = []
    fresh_files = sorted(fresh_dir.glob("*.json"))
    if not fresh_files:
        raise FileNotFoundError("no fresh *.json records in %s" % fresh_dir)
    for fresh_path in fresh_files:
        baseline_path = baseline_dir / fresh_path.name
        if not baseline_path.exists():
            unmatched.append(fresh_path.name)
            continue
        name = fresh_path.stem
        record_rows, record_regressions = compare_records(
            name, json.loads(baseline_path.read_text()),
            json.loads(fresh_path.read_text()), threshold)
        rows.extend(record_rows)
        regressions.extend(record_regressions)
    return rows, regressions, unmatched


def _format_row(row: dict, threshold: float) -> str:
    flag = "REGRESSION" if row["change"] < -threshold else "ok"
    return ("%-24s %-18s %12.0f -> %12.0f  %+6.1f%%  %s"
            % (row["name"], row["metric"], row["baseline"], row["fresh"],
               row["change"] * 100.0, flag))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on perf-trajectory regressions")
    parser.add_argument("--fresh", required=True, type=pathlib.Path,
                        help="directory of freshly produced *.json records")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=BASELINE_DIR,
                        help="committed baseline directory "
                             "(default: benchmarks/results)")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get(
                            "TRAJECTORY_THRESHOLD", DEFAULT_THRESHOLD)),
                        help="allowed fractional rate drop (default 0.30)")
    args = parser.parse_args(argv)

    if os.environ.get("TRAJECTORY_SKIP") == "1":
        print("TRAJECTORY_SKIP=1: perf-trajectory gate skipped")
        return 0
    try:
        rows, regressions, unmatched = check_directory(
            args.fresh, args.baseline, args.threshold)
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    print("perf trajectory vs %s (threshold %.0f%%):"
          % (args.baseline, args.threshold * 100.0))
    for row in rows:
        print("  " + _format_row(row, args.threshold))
    for name in unmatched:
        print("  %-24s (no committed baseline; add one by running the "
              "benchmarks at full scale)" % name)
    if regressions:
        print("\n%d metric(s) regressed beyond the %.0f%% budget."
              % (len(regressions), args.threshold * 100.0))
        print("If this is expected (documented trade-off) or the runner "
              "is known-noisy, re-run with TRAJECTORY_SKIP=1 or refresh "
              "the baselines (see benchmarks/README.md).")
        return 1
    print("trajectory ok: no metric regressed beyond %.0f%%."
          % (args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
