"""E9 / §6.1 — authorization enforcement across the attack surface."""

from conftest import save_result

from repro.experiments.e9_policy import (assert_shape, format_result,
                                         run_policy_experiment)


def test_e9_policy_enforcement(benchmark):
    result = benchmark.pedantic(run_policy_experiment,
                                rounds=1, iterations=1)
    save_result("E9_sec6_policy_enforcement", format_result(result))
    assert_shape(result)
    refused = [row for row in result["rows"] if row["outcome"] == "refused"]
    benchmark.extra_info["attacks_refused"] = len(refused)
