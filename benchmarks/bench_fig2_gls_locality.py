"""E2 / Figure 2 — GLS lookup cost proportional to distance."""

from conftest import save_result

from repro.experiments.e2_gls_locality import (assert_proportionality,
                                               format_result,
                                               run_gls_locality_experiment)


def test_e2_gls_locality(benchmark):
    result = benchmark.pedantic(run_gls_locality_experiment,
                                rounds=1, iterations=1)
    save_result("E2_fig2_gls_locality", format_result(result))
    assert_proportionality(result)
    rows = result["rows"]
    benchmark.extra_info["site_hops"] = rows[0]["hops"]
    benchmark.extra_info["world_hops"] = rows[-1]["hops"]
    benchmark.extra_info["world_latency_ms"] = rows[-1]["latency"] * 1e3
