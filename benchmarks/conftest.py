"""Benchmark-suite configuration.

Each benchmark runs one experiment driver (a full simulated deployment
+ workload) exactly once under pytest-benchmark timing, prints the
table the corresponding paper figure implies, and persists it under
``benchmarks/results/`` so the artifacts survive output capturing.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a formatted experiment table (and echo it)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / ("%s.txt" % name)).write_text(text + "\n")
    print()
    print(text)
