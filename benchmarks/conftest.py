"""Benchmark-suite configuration.

Each benchmark runs one experiment driver (a full simulated deployment
+ workload) exactly once under pytest-benchmark timing, prints the
table the corresponding paper figure implies, and persists it under
``benchmarks/results/`` so the artifacts survive output capturing.

Throughput benchmarks additionally persist a machine-readable record
via :func:`save_json` (events/sec, requests/sec, peak heap size, ...)
so successive PRs can be compared as a perf trajectory:
``benchmarks/results/<name>.json``.  CI redirects the output with
``BENCH_RESULTS_DIR`` so fresh records can be compared against the
committed baselines by ``check_trajectory.py`` without overwriting
them (see benchmarks/README.md).
"""

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(os.environ.get(
    "BENCH_RESULTS_DIR", pathlib.Path(__file__).parent / "results"))

BEST_OF = int(os.environ.get("BENCH_BEST_OF", 3))


def best_of(benchmark, measure, primary, passes=None):
    """Benchmark single passes; record the fastest pass's metrics.

    Rates on a shared machine are noisy downward only (scheduler
    preemption can slow a pass, nothing can speed one up), so the
    trajectory records the best pass, keyed on the ``primary`` rate
    metric.  Each timed round runs exactly one ``measure()`` pass (so
    pytest-benchmark's own timing stays honest); if the harness ran
    fewer than ``passes`` rounds (``--benchmark-disable`` runs just
    one), extra untimed passes top the sample up.  Returns
    (best metrics, that pass's return value).
    """
    passes = BEST_OF if passes is None else passes
    state = {"calls": 0, "metrics": None, "value": None}

    def one_pass():
        state["calls"] += 1
        metrics, value = measure()
        if state["metrics"] is None \
                or metrics[primary] > state["metrics"][primary]:
            state["metrics"], state["value"] = metrics, value
        return value

    benchmark(one_pass)
    for _ in range(passes - state["calls"]):
        one_pass()
    return state["metrics"], state["value"]


def save_result(name: str, text: str) -> None:
    """Persist a formatted experiment table (and echo it)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / ("%s.txt" % name)).write_text(text + "\n")
    print()
    print(text)


def save_json(name: str, record: dict) -> None:
    """Persist a comparable perf record (and echo it).

    ``record`` should be flat JSON-serialisable metrics — e.g.
    ``{"events_per_sec": ..., "requests_per_sec": ...,
    "peak_heap_size": ...}`` — with stable keys across PRs.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = json.dumps(record, indent=2, sort_keys=True)
    (RESULTS_DIR / ("%s.json" % name)).write_text(text + "\n")
    print()
    print("%s: %s" % (name, text))
