"""Flash-crowd serving bench: the GLS-lookup cache at both extremes.

The paper's motivating scenario (§1, §3.1): a release announcement
sends a very large number of browsers at one package.  Every HTTPD
binding that expires mid-crowd turns into a GLS lookup, so without a
cache the directory tree absorbs one lookup per concurrent rebind —
the location service melts exactly when the serving tier is busiest.

Two workloads bracket the cache:

* **spike** — a closed-loop population hammers one package through
  HTTPDs whose bindings expire every second.  With the cache on,
  singleflight collapses each expiry burst into one upstream lookup
  and refresh-ahead hides even that latency; measured: upstream
  GLS lookups per request (must drop >=5x) and closed-loop sim
  throughput (must rise).
* **adversarial all-unique** — every request hits a distinct package,
  so the cache can never produce a hit and only its bookkeeping
  remains.  Measured: wall-clock requests/sec with the cache on must
  stay within 5% of the cache-off path.

The persisted record (``results/flash_crowd.json``) carries
``requests_per_sec``/``events_per_sec`` (gated by
``check_trajectory.py``) plus the cache-quality ratios
(``upstream_lookups_per_request``, ``cache_hit_rate``) that
``diff_records.py`` prints across PRs.
"""

import os
import time

from conftest import best_of as _best_of, save_json

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.sim.topology import Topology
from repro.workloads.cohort import CohortScenario
from repro.workloads.loadgen import LoadStats, UniformSchedule
from repro.workloads.packages import synthetic_file
from repro.workloads.scenario import OpenLoopScenario

# Overridable so CI can run a reduced smoke pass (committed baselines
# come from the full-scale defaults).
FLASH_CLIENTS = int(os.environ.get("BENCH_FLASH_CLIENTS", 300))
FLASH_DURATION = float(os.environ.get("BENCH_FLASH_DURATION", 30.0))
#: Objects (= requests) per adversarial drive; every request in a
#: drive hits its own never-seen package.
UNIQUE_OBJECTS = int(os.environ.get("BENCH_FLASH_UNIQUE", 250))
#: Inner best-of passes for the adversarial wall-clock comparison
#: (each pass drives a fresh slice of the corpus, so uniqueness
#: holds across passes too).
ADVERSARIAL_PASSES = int(os.environ.get("BENCH_FLASH_ADV_PASSES", 3))
#: Allowed wall-clock regression of the cache-on adversarial variant.
ADVERSARIAL_TOLERANCE = float(
    os.environ.get("BENCH_FLASH_TOLERANCE", 0.05))

PACKAGE = "/apps/devel/HotRelease"
_FILE = "release.tar.gz"

#: HTTPD bindings go stale on this horizon — every expiry during the
#: crowd is a GLS lookup unless the cache absorbs it.
BINDING_TTL = 1.0
#: Per-object cache-policy TTL (bounds GLS cache entries *and* the
#: caching representative): entries outlive several binding expiries,
#: yet expire a few times inside the measured window so the TTL and
#: refresh-ahead machinery is exercised, not just steady-state hits.
CACHE_TTL = 5.0
CACHE_OPTIONS = {}


def _build_deployment(gls_cache, packages, seed: int = 29,
                      replicate: bool = True,
                      batch_window: float = 0.2) -> GdnDeployment:
    """Two regions; the access-point HTTPDs live at sites *without* a
    GOS, so every GLS lookup walks the tree (leaf miss, forwarding
    pointers down from an ancestor) instead of being answered by a
    colocated leaf node — the expensive path the cache absorbs."""
    topology = Topology.balanced(regions=2, countries=1, cities=1,
                                 sites=2)
    gdn = GdnDeployment(topology=topology, seed=seed, secure=False,
                        gls_cache=gls_cache, batch_window=batch_window)
    for index, region in enumerate(gdn._regions()):
        sites = list(region.sites())
        gdn.add_gos("gos-%d" % index, sites[0])
        gdn.add_httpd("httpd-%d" % index, site=sites[1],
                      binding_ttl=BINDING_TTL,
                      cache_policy=lambda _name: CACHE_TTL)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")
    slaves = ["gos-1"] if replicate else []

    def publish():
        for index, name in enumerate(packages):
            yield from moderator.create_package(
                name, {_FILE: synthetic_file("flash-%d" % index, 8_000)},
                ReplicationScenario.master_slave("gos-0", slaves,
                                                 cache_ttl=600.0))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(5.0)
    return gdn


def _cache_totals(gdn):
    hits = sum(c.hits for c in gdn.lookup_caches.values())
    misses = sum(c.misses for c in gdn.lookup_caches.values())
    coalesced = sum(c.coalesced for c in gdn.lookup_caches.values())
    return hits, misses, coalesced


def _run_spike(gls_cache):
    """One flash crowd on one package; return the pass metrics."""
    gdn = _build_deployment(gls_cache, [PACKAGE])
    world = gdn.world
    browser_for = gdn.browser_pool("bench")

    def one_request(arrival):
        response = yield from browser_for(arrival.site).download(
            PACKAGE, _FILE)
        return response.ok

    def warm():
        for site in world.topology.sites:
            response = yield from browser_for(site).download(PACKAGE,
                                                             _FILE)
            assert response.ok
    gdn.run(warm())

    stats = LoadStats(registry=world.metrics, prefix="bench")
    scenario = CohortScenario(FLASH_CLIENTS, 0.5,
                              duration=FLASH_DURATION,
                              sites=world.topology.sites,
                              label="flash-crowd")
    lookups_before = gdn.gls.total_requests()
    events_before = world.sim.events_processed
    started = time.perf_counter()
    sim_elapsed = gdn.run(
        scenario.drive(world.sim, one_request,
                       rng=world.rng_for("bench"), stats=stats),
        limit=1e9)
    wall = time.perf_counter() - started
    assert stats.failed == 0, \
        "flash crowd must be fully served (%d failed)" % stats.failed
    upstream = gdn.gls.total_requests() - lookups_before
    hits, misses, _coalesced = _cache_totals(gdn)
    browser_for.close()
    return {
        "requests": stats.ok,
        "requests_per_sec": stats.ok / wall,
        "events_per_sec":
            (world.sim.events_processed - events_before) / wall,
        "sim_throughput_per_sec": stats.throughput(sim_elapsed),
        "sim_latency_mean_ms": stats.latency.mean * 1e3,
        "upstream_lookups": upstream,
        "upstream_lookups_per_request": upstream / stats.ok,
        "cache_hit_rate": (hits / (hits + misses)
                           if hits + misses else 0.0),
    }


class _AdversarialArm:
    """One deployment driven over disjoint slices of an all-unique
    corpus: every request hits a never-before-seen package, so the
    cache can never produce a hit and only its bookkeeping remains."""

    def __init__(self, gls_cache):
        self.names = ["/apps/flash/Unique%d" % index
                      for index in range(UNIQUE_OBJECTS
                                         * ADVERSARIAL_PASSES)]
        # A wide authority batch window keeps the (quadratic) DNS
        # zone-transfer churn of publishing a large corpus out of the
        # untimed setup; the drives below never touch the authority.
        self.gdn = _build_deployment(gls_cache, self.names,
                                     replicate=False, batch_window=2.0)
        self.gdn.settle(5.0)
        self.browser_for = self.gdn.browser_pool("bench")
        self.served = 0
        self.passes = 0
        self.best_rate = 0.0

    def _one_request(self, arrival):
        name = self.names[self.served]
        self.served += 1
        response = yield from self.browser_for(arrival.site).download(
            name, _FILE)
        return response.ok

    def drive_once(self):
        world = self.gdn.world
        stats = LoadStats(registry=world.metrics,
                          prefix="bench%d" % self.passes)
        self.passes += 1
        scenario = OpenLoopScenario(UniformSchedule(200.0),
                                    UNIQUE_OBJECTS,
                                    sites=world.topology.sites,
                                    label="all-unique")
        started = time.perf_counter()
        self.gdn.run(scenario.drive(world.sim, self._one_request,
                                    rng=world.rng_for("bench"),
                                    stats=stats),
                     limit=1e9)
        wall = time.perf_counter() - started
        assert stats.ok == UNIQUE_OBJECTS
        self.best_rate = max(self.best_rate, stats.ok / wall)

    def close(self):
        hits, _misses, _coalesced = _cache_totals(self.gdn)
        # The cache-busting premise held: every lookup was a cold miss.
        assert hits == 0
        self.browser_for.close()


def _run_adversarial_pair():
    """Cache-on vs cache-off over the all-unique corpus, drives
    interleaved (and best-of recorded per arm) so allocator warm-up
    and scheduler noise hit both arms alike."""
    cached = _AdversarialArm(CACHE_OPTIONS)
    uncached = _AdversarialArm(None)
    for index in range(ADVERSARIAL_PASSES):
        order = ((uncached, cached) if index % 2 == 0
                 else (cached, uncached))
        for arm in order:
            arm.drive_once()
    cached.close()
    uncached.close()
    return {"adversarial_requests_per_sec": cached.best_rate,
            "adversarial_uncached_requests_per_sec":
                uncached.best_rate}


def test_flash_crowd_cache_extremes(benchmark):
    """Spike: >=5x fewer upstream lookups + higher throughput with the
    cache on; adversarial all-unique: <5% wall-clock overhead."""

    def measure():
        cached = _run_spike(CACHE_OPTIONS)
        uncached = _run_spike(None)
        adversarial = _run_adversarial_pair()
        return ({
            # Gated rates: the cache-on spike is the serving path this
            # PR optimises, so it carries the trajectory record.
            "requests_per_sec": cached["requests_per_sec"],
            "events_per_sec": cached["events_per_sec"],
            "sim_throughput_per_sec": cached["sim_throughput_per_sec"],
            "sim_throughput_uncached_per_sec":
                uncached["sim_throughput_per_sec"],
            "sim_latency_mean_ms": cached["sim_latency_mean_ms"],
            "sim_latency_uncached_mean_ms":
                uncached["sim_latency_mean_ms"],
            "upstream_lookups_per_request":
                cached["upstream_lookups_per_request"],
            "upstream_lookups_uncached_per_request":
                uncached["upstream_lookups_per_request"],
            "lookup_reduction":
                (uncached["upstream_lookups_per_request"]
                 / max(cached["upstream_lookups_per_request"], 1e-9)),
            "cache_hit_rate": cached["cache_hit_rate"],
            **adversarial,
        }, None)

    metrics, _ = _best_of(benchmark, measure, "requests_per_sec")

    # The tentpole claims, at full strength on the committed record:
    # the crowd's GLS load collapses by >=5x ...
    assert metrics["lookup_reduction"] >= 5.0, metrics
    # ... the crowd is served measurably faster (sim time, so this is
    # deterministic: cache hits and refresh-ahead remove the lookup
    # round-trip from the rebind path) ...
    assert metrics["sim_throughput_per_sec"] \
        > metrics["sim_throughput_uncached_per_sec"], metrics
    assert metrics["sim_latency_mean_ms"] \
        < metrics["sim_latency_uncached_mean_ms"], metrics
    assert metrics["cache_hit_rate"] > 0.5, metrics
    # ... and the cache-hostile workload pays at most a few percent:
    # no hit is ever possible, so what remains is pure bookkeeping.
    floor = (1.0 - ADVERSARIAL_TOLERANCE) \
        * metrics["adversarial_uncached_requests_per_sec"]
    assert metrics["adversarial_requests_per_sec"] >= floor, metrics

    benchmark.extra_info.update(metrics)
    save_json("flash_crowd", metrics)
