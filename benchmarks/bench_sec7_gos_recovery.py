"""E8 / §4 — object-server crash, persistence, reboot reconstruction."""

from conftest import save_result

from repro.experiments.e8_recovery import (assert_shape, format_result,
                                           run_recovery_experiment)


def test_e8_gos_recovery(benchmark):
    result = benchmark.pedantic(run_recovery_experiment,
                                rounds=1, iterations=1)
    save_result("E8_sec7_gos_recovery", format_result(result))
    assert_shape(result)
    benchmark.extra_info["healthy_mean_ms"] = result["before"].mean * 1e3
    benchmark.extra_info["recovered_mean_ms"] = result["after"].mean * 1e3
