"""A3 / §6.3 — the GLS over UDP (the paper) vs TCP (the open question)."""

from conftest import save_result

from repro.experiments.ablations import (format_transport,
                                         run_transport_ablation)


def test_a3_gls_udp_vs_tcp(benchmark):
    result = benchmark.pedantic(run_transport_ablation,
                                rounds=1, iterations=1)
    save_result("A3_gls_udp_vs_tcp", format_transport(result))
    udp, tcp = result["rows"]
    # The paper chose UDP "for efficiency reasons"; TCP pays a
    # handshake per directory-node hop.
    assert tcp["latency"].mean > 1.5 * udp["latency"].mean
    assert tcp["bytes"] > udp["bytes"]
    benchmark.extra_info["udp_ms"] = udp["latency"].mean * 1e3
    benchmark.extra_info["tcp_ms"] = tcp["latency"].mean * 1e3
