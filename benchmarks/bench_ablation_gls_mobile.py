"""A2 / §3.5 — mobile objects: contact address at leaf vs intermediate."""

from conftest import save_result

from repro.experiments.ablations import (format_mobility,
                                         run_mobility_ablation)


def test_a2_gls_mobile_objects(benchmark):
    result = benchmark.pedantic(run_mobility_ablation,
                                rounds=1, iterations=1)
    save_result("A2_gls_mobile_objects", format_mobility(result))
    leaf, country = result["rows"]
    # Storing the address at the country node makes each move cheaper
    # and shortens the pointer chase (§3.5's mobile-object argument).
    assert country["update"].mean < leaf["update"].mean
    assert country["hops"].mean <= leaf["hops"].mean
    benchmark.extra_info["leaf_move_ms"] = leaf["update"].mean * 1e3
    benchmark.extra_info["country_move_ms"] = country["update"].mean * 1e3
