"""E7 / §5 — the DNS-based Globe Name Service."""

from conftest import save_result

from repro.experiments.e7_gns_resolution import (assert_shape, format_result,
                                                 run_gns_resolution_experiment)


def test_e7_gns_resolution(benchmark):
    result = benchmark.pedantic(run_gns_resolution_experiment,
                                rounds=1, iterations=1)
    save_result("E7_sec5_gns_resolution", format_result(result))
    assert_shape(result)
    benchmark.extra_info["cold_ms"] = result["cold"].mean * 1e3
    benchmark.extra_info["warm_ms"] = result["warm"].mean * 1e3
    benchmark.extra_info["batched_updates"] = \
        result["batching"][-1]["updates"]
