"""The subobject composition of a local representative (paper §3.3, Fig 1b).

A local representative is composed of four subobjects:

* **semantics** — user-defined functionality, written without any
  knowledge of distribution (:class:`SemanticsSubobject`);
* **communication** — system-provided point-to-point messaging between
  local representatives in different address spaces
  (:class:`CommunicationSubobject`);
* **replication** — keeps replica state consistent per a per-object
  strategy; sees only opaque invocation messages
  (:mod:`repro.core.replication`);
* **control** — bridges the user-defined interface of the semantics
  subobject and the standard interface of the replication subobject
  (:class:`ControlSubobject`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from ..sim.rpc import RpcChannel, RpcFault
from ..sim.transport import ConnectionClosed, Host, TransportError
from .idl import IdlError, Interface, Mode
from .ids import ContactAddress, ObjectId
from .marshal import (marshal_invocation, marshal_result,
                      unmarshal_invocation, unmarshal_result)

__all__ = [
    "SemanticsSubobject",
    "CommunicationSubobject",
    "ControlSubobject",
    "RemoteInvocationError",
]


class RemoteInvocationError(Exception):
    """A remote method execution failed; carries the remote fault."""


class SemanticsSubobject:
    """Base class for user-defined object functionality.

    Subclasses declare methods with :func:`repro.core.idl.read_only` /
    :func:`repro.core.idl.mutating` and implement ``snapshot_state`` /
    ``restore_state`` so replication protocols (and the Globe Object
    Server's persistence, §4) can move their state around without
    understanding it.
    """

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        cls.interface = Interface.of(cls)

    # Subclasses override these two; state must be a packable dict.

    def snapshot_state(self) -> dict:
        """A plain-dict snapshot of the full object state."""
        raise NotImplementedError

    def restore_state(self, state: dict) -> None:
        """Replace the object state with ``state``."""
        raise NotImplementedError

    # Replication may use a lighter state than persistence: subclasses
    # can exclude master-local bookkeeping (e.g. retained old file
    # contents) from what is shipped to slaves and caches.  Defaults
    # to the full snapshot.

    def replication_state(self) -> dict:
        return self.snapshot_state()

    def restore_replication_state(self, state: dict) -> None:
        self.restore_state(state)


class CommunicationSubobject:
    """Point-to-point messaging to other local representatives.

    System-provided (paper: "generally … taken from a library").  Keeps
    one multiplexed channel per destination endpoint so repeated
    invocations do not pay reconnection (or TLS re-handshake) costs,
    and transparently reconnects once if an idle channel has died.

    ``channel_wrapper`` is the security hook: the TLS layer passes a
    wrapper that runs a handshake on each fresh connection and tags it
    with the authenticated peer principal.
    """

    #: RPC method name under which Globe object servers and other
    #: replica hosts expose DSO message routing.
    DSO_RPC_METHOD = "dso_message"

    def __init__(self, host: Host, world,
                 channel_wrapper: Optional[Callable] = None):
        self.host = host
        self.world = world
        self.channel_wrapper = channel_wrapper
        self._channels: Dict[tuple, RpcChannel] = {}
        self.messages_sent = 0

    def _endpoint(self, address: ContactAddress) -> tuple:
        return (address.host_name, address.port)

    def _open(self, address: ContactAddress
              ) -> Generator[Any, Any, RpcChannel]:
        endpoint = self._endpoint(address)
        channel = self._channels.get(endpoint)
        if channel is not None and not channel.conn.closed \
                and not channel.conn.broken:
            return channel
        try:
            remote = self.world.hosts[address.host_name]
        except KeyError:
            raise TransportError("unknown host %r" % address.host_name)
        channel = yield from RpcChannel.open(
            self.host, remote, address.port,
            channel_wrapper=self.channel_wrapper)
        self._channels[endpoint] = channel
        return channel

    def send_dso_message(self, address: ContactAddress, oid: ObjectId,
                         message: dict) -> Generator[Any, Any, dict]:
        """Deliver one DSO protocol message; return the reply message.

        Retries exactly once on a stale cached channel (the peer may
        have closed it); connection failures beyond that propagate.
        """
        args = {"oid": oid.hex, "msg": message}
        for attempt in (0, 1):
            channel = yield from self._open(address)
            try:
                self.messages_sent += 1
                reply = yield from channel.call(self.DSO_RPC_METHOD, args)
                return reply
            except ConnectionClosed:
                self._channels.pop(self._endpoint(address), None)
                if attempt == 1:
                    raise
        raise AssertionError("unreachable")

    def close(self) -> None:
        for channel in self._channels.values():
            channel.close()
        self._channels.clear()


class ControlSubobject:
    """Bridges user-facing calls and the replication subobject.

    Client path: marshal the invocation into an opaque message, hand it
    to the replication subobject along with its read/write mode, then
    unmarshal the returned result.  Server path: the replication
    subobject calls :meth:`execute` to run an opaque message against
    the local semantics subobject.
    """

    def __init__(self, semantics: Optional[SemanticsSubobject],
                 interface: Interface):
        self.semantics = semantics
        self.interface = interface
        self.replication = None  # wired by the local representative
        self.local_invocations = 0

    def invoke(self, method: str, args: Optional[dict] = None
               ) -> Generator[Any, Any, Any]:
        """User-facing method invocation (used via the LR)."""
        args = args or {}
        mode = self.interface.mode(method)  # raises IdlError if unknown
        payload = marshal_invocation(method, args)
        raw = yield from self.replication.invoke(payload, mode)
        result = unmarshal_result(raw)
        if isinstance(result, dict) and result.get("__fault__"):
            raise RemoteInvocationError(
                "%s: %s" % (result.get("kind"), result.get("message")))
        return result

    def execute(self, payload: bytes) -> bytes:
        """Run an opaque invocation against the local semantics.

        Returns an opaque result message.  Faults are encoded in-band
        so they can cross the wire and re-raise at the caller.
        """
        if self.semantics is None:
            raise IdlError("this representative holds no semantics state")
        method, args = unmarshal_invocation(payload)
        spec = self.interface.spec(method)
        function = getattr(self.semantics, spec.name)
        self.local_invocations += 1
        try:
            value = function(**args)
        except Exception as exc:  # noqa: BLE001 - faults cross the wire
            return marshal_result({"__fault__": True,
                                   "kind": type(exc).__name__,
                                   "message": str(exc)})
        return marshal_result(value)

    def mode_of(self, payload: bytes) -> Mode:
        """Mode of an opaque invocation (for server-side routing)."""
        method, _args = unmarshal_invocation(payload)
        return self.interface.mode(method)
