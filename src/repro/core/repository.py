"""Implementation repository (paper §3.4, §7).

Binding installs a local representative whose implementation — the
"appropriate set of subobjects" — is loaded "from a nearby
implementation repository in a way similar to remote class loading in
Java".  We model this: implementations are registered globally (the
code base), and each host fetches an implementation once from the
nearest repository host, paying transfer time and traffic for the code
size; afterwards it is cached locally (the paper's "directory in the
local file system").
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple, Type

from ..sim.serde import HEADER_OVERHEAD
from ..sim.topology import Topology
from ..sim.transport import Host
from .idl import Interface
from .subobjects import SemanticsSubobject

__all__ = ["Implementation", "ImplementationRepository", "RepositoryError"]

#: Default size of an implementation bundle (subobject code), bytes.
DEFAULT_CODE_SIZE = 50_000


class RepositoryError(Exception):
    """Raised for unknown implementations or misconfiguration."""


class Implementation:
    """A named, loadable DSO implementation."""

    def __init__(self, impl_id: str,
                 semantics_class: Type[SemanticsSubobject],
                 code_size: int = DEFAULT_CODE_SIZE,
                 semantics_args: Optional[dict] = None):
        self.impl_id = impl_id
        self.semantics_class = semantics_class
        self.code_size = code_size
        self.semantics_args = semantics_args or {}

    @property
    def interface(self) -> Interface:
        return self.semantics_class.interface

    def make_semantics(self) -> SemanticsSubobject:
        """A fresh semantics subobject instance."""
        return self.semantics_class(**self.semantics_args)

    def __repr__(self) -> str:
        return "Implementation(%s)" % self.impl_id


class ImplementationRepository:
    """Registry plus per-host download cache."""

    def __init__(self, world):
        self.world = world
        self._registry: Dict[str, Implementation] = {}
        self._repo_hosts: List[Host] = []
        self._cached: Set[Tuple[str, str]] = set()
        self.downloads = 0

    def register(self, implementation: Implementation) -> None:
        self._registry[implementation.impl_id] = implementation

    def implementation(self, impl_id: str) -> Implementation:
        try:
            return self._registry[impl_id]
        except KeyError:
            raise RepositoryError(
                "no implementation registered for %r" % impl_id) from None

    def add_repository_host(self, host: Host) -> None:
        """Declare ``host`` as serving implementation downloads."""
        self._repo_hosts.append(host)

    def preload(self, host: Host, impl_id: str) -> None:
        """Mark ``impl_id`` as already present on ``host`` (no cost)."""
        self.implementation(impl_id)  # validate
        self._cached.add((host.name, impl_id))

    def is_cached(self, host: Host, impl_id: str) -> bool:
        return (host.name, impl_id) in self._cached

    def _nearest_repo(self, host: Host) -> Optional[Host]:
        best = None
        best_level = None
        for repo in self._repo_hosts:
            if not repo.up:
                continue
            level = Topology.separation(host.site, repo.site)
            if best_level is None or level < best_level:
                best, best_level = repo, level
        return best

    def load(self, host: Host, impl_id: str
             ) -> Generator[Any, Any, Implementation]:
        """Fetch an implementation onto ``host`` (cached thereafter).

        ``impl = yield from repository.load(host, "gdn.package")``
        """
        implementation = self.implementation(impl_id)
        if self.is_cached(host, impl_id):
            return implementation
        repo = self._nearest_repo(host)
        if repo is not None and repo is not host:
            network = self.world.network
            level = Topology.separation(host.site, repo.site)
            request_size = HEADER_OVERHEAD + len(impl_id)
            network.meter.record(level, request_size)
            network.meter.record(level, implementation.code_size)
            delay = (network.transfer_delay(host.site, repo.site,
                                            request_size)
                     + network.transfer_delay(repo.site, host.site,
                                              implementation.code_size))
            yield self.world.sim.timeout(delay)
            self.downloads += 1
        self._cached.add((host.name, impl_id))
        return implementation
