"""Interface definitions for semantics subobjects (paper §7).

Globe defines DSO interfaces in an IDL and generates language bindings.
We reproduce the part the replication machinery needs: each method of a
semantics subobject is declared read-only or mutating, because the
replication subobject — which never sees method names, only opaque
messages plus this one bit — routes reads and writes differently
(reads can execute at any replica, writes must reach the master).

Usage::

    class Counter(SemanticsSubobject):
        @mutating
        def increment(self, by=1): ...

        @read_only
        def value(self): ...
"""

from __future__ import annotations

import enum
from typing import Callable, Dict

__all__ = ["Mode", "MethodSpec", "Interface", "read_only", "mutating",
           "IdlError"]


class IdlError(Exception):
    """Raised for interface violations (unknown/undeclared methods)."""


class Mode(enum.Enum):
    """Whether a method only reads state or may modify it."""

    READ = "read"
    WRITE = "write"


class MethodSpec:
    """Metadata for one declared DSO method."""

    __slots__ = ("name", "mode")

    def __init__(self, name: str, mode: Mode):
        self.name = name
        self.mode = mode

    def __repr__(self) -> str:
        return "MethodSpec(%s, %s)" % (self.name, self.mode.value)


def read_only(func: Callable) -> Callable:
    """Declare a semantics method as state-preserving."""
    func._dso_mode = Mode.READ
    return func


def mutating(func: Callable) -> Callable:
    """Declare a semantics method as state-modifying."""
    func._dso_mode = Mode.WRITE
    return func


class Interface:
    """The set of declared methods of a semantics class."""

    def __init__(self, name: str, methods: Dict[str, MethodSpec]):
        self.name = name
        self.methods = methods

    @classmethod
    def of(cls, semantics_class: type) -> "Interface":
        """Collect declared methods from a semantics class."""
        methods: Dict[str, MethodSpec] = {}
        for attr_name in dir(semantics_class):
            attr = getattr(semantics_class, attr_name, None)
            mode = getattr(attr, "_dso_mode", None)
            if mode is not None:
                methods[attr_name] = MethodSpec(attr_name, mode)
        return cls(semantics_class.__name__, methods)

    def spec(self, method: str) -> MethodSpec:
        try:
            return self.methods[method]
        except KeyError:
            raise IdlError("method %r is not declared on interface %s"
                           % (method, self.name)) from None

    def mode(self, method: str) -> Mode:
        return self.spec(method).mode

    def __contains__(self, method: str) -> bool:
        return method in self.methods

    def __repr__(self) -> str:
        return "Interface(%s, %d methods)" % (self.name, len(self.methods))
