"""Client-side caching with TTL-based freshness (paper §3.3 "lazy
replication", §4: the representative installed in a GDN-HTTPD "may act
as a replica for the DSO, in which case downloading … is fast").

The caching subobject keeps a full local copy of the object state.
Reads execute locally while the copy is fresh (its age is below the
TTL); a stale copy is revalidated with a ``pull`` carrying the cached
version, so an unchanged object costs only a small round-trip rather
than a state transfer.  Writes are forwarded to the authoritative copy
and invalidate the cache.

This is the protocol that turns a GDN-enabled HTTPD into a replica of
popular packages without any moderator action.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..idl import Mode
from ..ids import ContactAddress
from .base import (ReplicationError, ReplicationSubobject,
                   register_protocol)

__all__ = ["CachingClient"]

PROTOCOL = "cache"


class CachingClient(ReplicationSubobject):
    """A pull-based caching local representative."""

    protocol = PROTOCOL
    role = "cache"

    def __init__(self, addresses: List[ContactAddress], ttl: float = 60.0):
        super().__init__()
        if not addresses:
            raise ReplicationError("no contact addresses to bind to")
        self.bound = addresses[0]
        self.write_target = (self.find_role(addresses, "master")
                             or self.find_role(addresses, "server")
                             or self.bound)
        self.ttl = ttl
        self.version = -1
        self.fetched_at: Optional[float] = None
        self.pulls = 0
        self.revalidations = 0

    # -- freshness ---------------------------------------------------------

    @property
    def _now(self) -> float:
        return self.lr.host.sim.now

    def is_fresh(self) -> bool:
        return (self.fetched_at is not None
                and self._now - self.fetched_at <= self.ttl)

    def invalidate(self) -> None:
        self.fetched_at = None

    def _refresh(self) -> Generator:
        self.pulls += 1
        reply = yield from self._send(self.bound, {
            "type": "pull", "have_version": self.version})
        kind = reply.get("type")
        if kind == "fresh":
            self.revalidations += 1
        elif kind == "state":
            self._restore(reply["state"])
            self.version = reply["version"]
        else:
            raise ReplicationError("unexpected pull reply %r" % kind)
        self.fetched_at = self._now

    # -- the standard interface ---------------------------------------------

    def invoke(self, payload: bytes, mode: Mode
               ) -> Generator[Any, Any, bytes]:
        if mode == Mode.READ:
            if not self.is_fresh():
                yield from self._refresh()
            else:
                self.reads_local += 1
            return self.control.execute(payload)
        self.writes_forwarded += 1
        result = yield from self._invoke_remote(
            self.write_target, payload, mode)
        self.invalidate()
        return result

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        # A cache can itself answer pulls (e.g. browsers behind a
        # GDN-proxy), but only while fresh; anything else is refused.
        if message.get("type") == "pull" and self.is_fresh():
            if message.get("have_version", -1) >= self.version:
                return {"type": "fresh", "version": self.version}
            return {"type": "state", "version": self.version,
                    "state": self._snapshot()}
        return {"type": "error", "reason": "cache cannot serve this"}
        yield  # pragma: no cover


def _make_cache(addresses, ttl=60.0, **_kwargs):
    return CachingClient(addresses, ttl=ttl)


register_protocol(PROTOCOL, _make_cache, {})
