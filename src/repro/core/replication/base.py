"""Replication subobject framework (paper §3.3).

A replication subobject decides, per opaque invocation, where that
invocation executes and how replica state stays consistent.  All
concrete protocols speak a small common message vocabulary between
local representatives (the paper's "Globe Replication Protocol" arrows
in Figure 3):

========== ===============================================================
type       meaning
========== ===============================================================
invoke     run this opaque invocation (mode read/write) here or forward it
result     opaque result message for an ``invoke``
join       a new replica announces itself; reply carries current state
leave      a replica is going away
pull       give me your state if newer than ``have_version``
state      state transfer (version + packed state)
fresh      pull response: your copy is already current
state_push master pushes new state to a slave
op_push    sequencer pushes an ordered write invocation (active repl.)
ack        acknowledgement
========== ===============================================================

Concrete protocols live in sibling modules; each defines client-role
and replica-role subobject classes and registers itself in
:data:`PROTOCOLS` so the implementation repository can build both sides
by name.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..idl import Mode
from ..ids import ContactAddress
from ..marshal import pack, unpack

__all__ = ["ReplicationSubobject", "ReplicationError", "PROTOCOLS",
           "register_protocol", "protocol_names"]


class ReplicationError(Exception):
    """Raised when a replication protocol cannot complete an operation."""


#: protocol name -> {"client": factory, "roles": {role: factory}}
PROTOCOLS: Dict[str, dict] = {}


def register_protocol(name: str, client_factory, role_factories: dict) -> None:
    """Register a replication protocol's client and replica factories."""
    PROTOCOLS[name] = {"client": client_factory, "roles": role_factories}


def protocol_names() -> List[str]:
    return sorted(PROTOCOLS)


class ReplicationSubobject:
    """Base class with the standard replication interface.

    Lifecycle: constructed by a factory, then ``attach``-ed to its
    local representative (which supplies control and communication
    subobjects), then optionally ``start``-ed (a generator — replicas
    use it to join their master and fetch initial state).
    """

    protocol = "?"
    role = "?"

    def __init__(self):
        self.lr = None
        self.control = None
        self.comm = None
        self.oid = None
        # Counters read by experiments.
        self.reads_local = 0
        self.reads_remote = 0
        self.writes_local = 0
        self.writes_forwarded = 0
        self.state_transfers = 0

    # -- wiring ----------------------------------------------------------

    def attach(self, local_representative) -> None:
        self.lr = local_representative
        self.control = local_representative.control
        self.comm = local_representative.comm
        self.oid = local_representative.oid

    def start(self) -> Generator:
        """Protocol start-up (joining, initial state fetch).  A process."""
        return
        yield  # pragma: no cover - makes this a generator

    def stop(self) -> None:
        """Protocol teardown (leave messages are best-effort)."""

    # -- durable protocol state -------------------------------------------

    def protocol_state(self) -> dict:
        """Protocol bookkeeping worth persisting across a host reboot
        (version counters, peer lists).  Object servers checkpoint this
        next to the semantics state; without it a recovered master
        would forget its slaves and roll its version counter back,
        leaving slaves ignoring every future push."""
        return {}

    def restore_protocol_state(self, state: dict) -> None:
        """Reinstate persisted protocol bookkeeping after a reboot."""

    # -- the standard interface ------------------------------------------

    def invoke(self, payload: bytes, mode: Mode
               ) -> Generator[Any, Any, bytes]:
        """Route a locally issued opaque invocation; return raw result."""
        raise NotImplementedError

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        """Handle a protocol message from another representative."""
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------

    def _send(self, address: ContactAddress, message: dict
              ) -> Generator[Any, Any, dict]:
        reply = yield from self.comm.send_dso_message(
            address, self.oid, message)
        if reply.get("type") == "error":
            raise ReplicationError(reply.get("reason", "remote error"))
        return reply

    def _invoke_remote(self, address: ContactAddress, payload: bytes,
                       mode: Mode) -> Generator[Any, Any, bytes]:
        reply = yield from self._send(address, {
            "type": "invoke", "payload": payload, "mode": mode.value})
        if reply.get("type") != "result":
            raise ReplicationError(
                "expected result, got %r" % reply.get("type"))
        return reply["payload"]

    def _snapshot(self) -> bytes:
        self.state_transfers += 1
        return pack(self.control.semantics.replication_state())

    def _restore(self, state_bytes: bytes) -> None:
        self.state_transfers += 1
        self.control.semantics.restore_replication_state(
            unpack(state_bytes))

    @staticmethod
    def find_role(addresses: List[ContactAddress], role: str
                  ) -> Optional[ContactAddress]:
        for address in addresses:
            if address.role == role:
                return address
        return None
