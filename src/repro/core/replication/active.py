"""Active replication (paper §3.3: "one object may actively replicate
all the state at all the local representatives").

Every replica executes every write.  A sequencer (the ``master`` role)
imposes a total order on writes: it executes each write itself and
multicasts the *operation* — not the resulting state — to all replicas,
tagged with a sequence number.  Replicas apply operations strictly in
sequence order, buffering out-of-order arrivals in a hold-back queue.

Compared with master/slave state pushing, active replication trades
per-write computation at every replica for much smaller update traffic
when state is large and operations are small — one of the trade-offs a
per-object replication scenario can exploit (§3.1).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..idl import Mode
from ..ids import ContactAddress
from .base import (ReplicationError, ReplicationSubobject,
                   register_protocol)

__all__ = ["ActiveClient", "ActiveSequencer", "ActiveReplica"]

PROTOCOL = "active"


class ActiveClient(ReplicationSubobject):
    """Reads to the nearest replica, writes to the sequencer."""

    protocol = PROTOCOL
    role = "client"

    def __init__(self, addresses: List[ContactAddress]):
        super().__init__()
        if not addresses:
            raise ReplicationError("no contact addresses to bind to")
        self.bound = addresses[0]
        self.sequencer: Optional[ContactAddress] = self.find_role(
            addresses, "master")

    def invoke(self, payload: bytes, mode: Mode
               ) -> Generator[Any, Any, bytes]:
        if mode == Mode.READ:
            self.reads_remote += 1
            result = yield from self._invoke_remote(self.bound, payload, mode)
        else:
            self.writes_forwarded += 1
            target = self.sequencer or self.bound
            result = yield from self._invoke_remote(target, payload, mode)
        return result

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        return {"type": "error", "reason": "pure client holds no state"}
        yield  # pragma: no cover


class ActiveSequencer(ReplicationSubobject):
    """Orders writes, executes them, multicasts operations."""

    protocol = PROTOCOL
    role = "master"

    def __init__(self):
        super().__init__()
        self.seq = 0
        self.replicas: Dict[tuple, ContactAddress] = {}
        self.push_failures = 0

    def protocol_state(self) -> dict:
        return {"seq": self.seq,
                "replicas": [address.to_wire()
                             for address in self.replicas.values()]}

    def restore_protocol_state(self, state: dict) -> None:
        self.seq = state.get("seq", 0)
        for wire in state.get("replicas", []):
            address = ContactAddress.from_wire(wire)
            self.replicas[address.key()] = address

    def invoke(self, payload: bytes, mode: Mode
               ) -> Generator[Any, Any, bytes]:
        if mode == Mode.READ:
            self.reads_local += 1
            return self.control.execute(payload)
        return self._apply_write(payload)
        yield  # pragma: no cover - _apply_write spawns asynchronously

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        kind = message.get("type")
        if kind == "invoke":
            mode = Mode(message.get("mode", "write"))
            if mode == Mode.READ:
                self.reads_local += 1
                return {"type": "result",
                        "payload": self.control.execute(message["payload"])}
            return {"type": "result",
                    "payload": self._apply_write(message["payload"])}
        if kind == "join":
            address = ContactAddress.from_wire(message["ca"])
            self.replicas[address.key()] = address
            return {"type": "state", "version": self.seq,
                    "state": self._snapshot()}
        if kind == "leave":
            address = ContactAddress.from_wire(message["ca"])
            self.replicas.pop(address.key(), None)
            return {"type": "ack"}
        if kind == "pull":
            if message.get("have_version", -1) >= self.seq:
                return {"type": "fresh", "version": self.seq}
            return {"type": "state", "version": self.seq,
                    "state": self._snapshot()}
        return {"type": "error", "reason": "unsupported message %r" % kind}
        yield  # pragma: no cover

    def _apply_write(self, payload: bytes) -> bytes:
        self.writes_local += 1
        self.seq += 1
        seq = self.seq
        result = self.control.execute(payload)
        for address in list(self.replicas.values()):
            self.lr.host.spawn(self._push_op(address, seq, payload))
        return result

    def _push_op(self, address: ContactAddress, seq: int,
                 payload: bytes) -> Generator:
        try:
            yield from self._send(address, {"type": "op_push", "seq": seq,
                                            "payload": payload})
        except Exception:  # noqa: BLE001 - replica may be down; it rejoins
            self.push_failures += 1


class ActiveReplica(ReplicationSubobject):
    """Executes the totally ordered write stream locally."""

    protocol = PROTOCOL
    role = "replica"

    def __init__(self, sequencer: ContactAddress):
        super().__init__()
        self.sequencer = sequencer
        self.applied_seq = -1
        self.holdback: Dict[int, bytes] = {}

    def start(self) -> Generator:
        my_address = self.lr.contact_address
        if my_address is None:
            raise ReplicationError(
                "replica has no registered contact address")
        reply = yield from self._send(self.sequencer, {
            "type": "join", "ca": my_address.to_wire()})
        if reply.get("type") != "state":
            raise ReplicationError("join did not return state")
        self._restore(reply["state"])
        self.applied_seq = reply["version"]
        self.holdback = {seq: op for seq, op in self.holdback.items()
                         if seq > self.applied_seq}
        self._drain_holdback()

    def invoke(self, payload: bytes, mode: Mode
               ) -> Generator[Any, Any, bytes]:
        if mode == Mode.READ:
            self.reads_local += 1
            return self.control.execute(payload)
        self.writes_forwarded += 1
        result = yield from self._invoke_remote(self.sequencer, payload, mode)
        return result

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        kind = message.get("type")
        if kind == "invoke":
            mode = Mode(message.get("mode", "write"))
            if mode == Mode.READ:
                self.reads_local += 1
                return {"type": "result",
                        "payload": self.control.execute(message["payload"])}
            self.writes_forwarded += 1
            payload = yield from self._invoke_remote(
                self.sequencer, message["payload"], mode)
            return {"type": "result", "payload": payload}
        if kind == "op_push":
            seq = message["seq"]
            if seq > self.applied_seq:
                self.holdback[seq] = message["payload"]
                self._drain_holdback()
            return {"type": "ack"}
        if kind == "pull":
            if message.get("have_version", -1) >= self.applied_seq:
                return {"type": "fresh", "version": self.applied_seq}
            return {"type": "state", "version": self.applied_seq,
                    "state": self._snapshot()}
        return {"type": "error", "reason": "unsupported message %r" % kind}

    def _drain_holdback(self) -> None:
        while self.applied_seq + 1 in self.holdback:
            seq = self.applied_seq + 1
            payload = self.holdback.pop(seq)
            self.control.execute(payload)
            self.applied_seq = seq
            self.writes_local += 1


def _make_client(addresses, **_kwargs):
    return ActiveClient(addresses)


def _make_sequencer(**_kwargs):
    return ActiveSequencer()


def _make_replica(master=None, **_kwargs):
    if master is None:
        raise ReplicationError("replica role needs the sequencer's address")
    return ActiveReplica(master)


register_protocol(PROTOCOL, _make_client,
                  {"master": _make_sequencer, "replica": _make_replica})
