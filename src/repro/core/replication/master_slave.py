"""Master/slave replication (paper §7).

One replica is the *master*; any number of *slaves* hold copies.
Reads execute at whichever replica the client is bound to (normally
the nearest one, found via the GLS); writes are forwarded to the
master, which executes them and pushes fresh state to all slaves.

Push is asynchronous by default — the client's write completes when
the master has executed it, and slaves converge shortly after
(configure ``sync_push=True`` for write-through behaviour).  Slaves
joining later, or rejoining after a reboot, fetch state with a `join`
message, which is also how a Globe Object Server reconstructs replicas
(§4).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ...sim.rpc import RpcFault, RpcTimeout
from ...sim.transport import TransportError
from ..idl import Mode
from ..ids import ContactAddress
from .base import (ReplicationError, ReplicationSubobject,
                   register_protocol)

__all__ = ["MasterSlaveClient", "MasterSlaveMaster", "MasterSlaveSlave"]

PROTOCOL = "master_slave"

#: Failures that say "this replica is unreachable", not "this
#: invocation is wrong" — safe to answer with a different replica.
_TRANSIENT = (RpcTimeout, RpcFault, TransportError)


class MasterSlaveClient(ReplicationSubobject):
    """Client proxy: reads to the bound (nearest) replica, writes to
    the master (directly when its address is known, otherwise via the
    bound replica, which forwards).

    Reads are idempotent, so when the bound replica is unreachable the
    proxy fails over along the remaining (nearest-first) contact
    addresses and re-pins to whichever replica answers.  Writes never
    fail over: the master is the only authoritative copy.
    """

    protocol = PROTOCOL
    role = "client"

    def __init__(self, addresses: List[ContactAddress]):
        super().__init__()
        if not addresses:
            raise ReplicationError("no contact addresses to bind to")
        self.addresses = list(addresses)
        self.bound = addresses[0]
        self.master: Optional[ContactAddress] = self.find_role(
            addresses, "master")
        self.read_failovers = 0

    def invoke(self, payload: bytes, mode: Mode
               ) -> Generator[Any, Any, bytes]:
        if mode == Mode.READ:
            self.reads_remote += 1
            result = yield from self._read_with_failover(payload)
        else:
            self.writes_forwarded += 1
            target = self.master or self.bound
            result = yield from self._invoke_remote(target, payload, mode)
        return result

    def _read_with_failover(self, payload: bytes
                            ) -> Generator[Any, Any, bytes]:
        candidates = [self.bound] + [address for address in self.addresses
                                     if address.key() != self.bound.key()]
        last_error: Optional[Exception] = None
        for fallback, address in enumerate(candidates):
            try:
                result = yield from self._invoke_remote(
                    address, payload, Mode.READ)
            except _TRANSIENT as error:
                last_error = error
                continue
            if fallback:
                self.read_failovers += 1
                self.bound = address
            return result
        assert last_error is not None
        raise last_error

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        return {"type": "error", "reason": "pure client holds no state"}
        yield  # pragma: no cover


class MasterSlaveMaster(ReplicationSubobject):
    """The authoritative replica: applies writes, pushes state."""

    protocol = PROTOCOL
    role = "master"

    def __init__(self, sync_push: bool = False):
        super().__init__()
        self.sync_push = sync_push
        self.version = 0
        self.slaves: Dict[tuple, ContactAddress] = {}
        self.push_failures = 0

    def protocol_state(self) -> dict:
        return {"version": self.version,
                "slaves": [address.to_wire()
                           for address in self.slaves.values()]}

    def restore_protocol_state(self, state: dict) -> None:
        self.version = state.get("version", 0)
        for wire in state.get("slaves", []):
            address = ContactAddress.from_wire(wire)
            self.slaves[address.key()] = address

    # -- local invocation (co-located callers) -----------------------------

    def invoke(self, payload: bytes, mode: Mode
               ) -> Generator[Any, Any, bytes]:
        if mode == Mode.READ:
            self.reads_local += 1
            return self.control.execute(payload)
        result = yield from self._apply_write(payload)
        return result

    # -- protocol messages ---------------------------------------------------

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        kind = message.get("type")
        if kind == "invoke":
            mode = Mode(message.get("mode", "write"))
            if mode == Mode.READ:
                self.reads_local += 1
                return {"type": "result",
                        "payload": self.control.execute(message["payload"])}
            payload = yield from self._apply_write(message["payload"])
            return {"type": "result", "payload": payload}
        if kind == "join":
            address = ContactAddress.from_wire(message["ca"])
            self.slaves[address.key()] = address
            return {"type": "state", "version": self.version,
                    "state": self._snapshot()}
        if kind == "leave":
            address = ContactAddress.from_wire(message["ca"])
            self.slaves.pop(address.key(), None)
            return {"type": "ack"}
        if kind == "pull":
            if message.get("have_version", -1) >= self.version:
                return {"type": "fresh", "version": self.version}
            return {"type": "state", "version": self.version,
                    "state": self._snapshot()}
        return {"type": "error", "reason": "unsupported message %r" % kind}

    # -- write path -----------------------------------------------------------

    def _apply_write(self, payload: bytes) -> Generator[Any, Any, bytes]:
        self.writes_local += 1
        result = self.control.execute(payload)
        self.version += 1
        if self.slaves:
            state = self._snapshot()
            version = self.version
            pushes = [self.lr.host.spawn(self._push_one(address, version,
                                                        state))
                      for address in list(self.slaves.values())]
            if self.sync_push:
                for push in pushes:
                    yield push
        return result

    def _push_one(self, address: ContactAddress, version: int,
                  state: bytes) -> Generator:
        try:
            yield from self._send(address, {"type": "state_push",
                                            "version": version,
                                            "state": state})
        except Exception:  # noqa: BLE001 - slave may be down; it rejoins
            self.push_failures += 1


class MasterSlaveSlave(ReplicationSubobject):
    """A read-serving copy that forwards writes to the master."""

    protocol = PROTOCOL
    role = "slave"

    def __init__(self, master: ContactAddress):
        super().__init__()
        self.master = master
        self.version = -1

    def start(self) -> Generator:
        """Join the master and fetch initial state."""
        my_address = self.lr.contact_address
        if my_address is None:
            raise ReplicationError("slave has no registered contact address")
        reply = yield from self._send(self.master, {
            "type": "join", "ca": my_address.to_wire()})
        if reply.get("type") != "state":
            raise ReplicationError("join did not return state")
        self._restore(reply["state"])
        self.version = reply["version"]

    def stop(self) -> None:
        # Leaving is best-effort and asynchronous; the master also
        # drops us on the first failed push.
        my_address = self.lr.contact_address
        if my_address is not None and self.lr.host.up:
            self.lr.host.spawn(self._send_leave(my_address))

    def _send_leave(self, my_address: ContactAddress) -> Generator:
        try:
            yield from self._send(self.master, {
                "type": "leave", "ca": my_address.to_wire()})
        except Exception:  # noqa: BLE001 - best effort
            pass

    def invoke(self, payload: bytes, mode: Mode
               ) -> Generator[Any, Any, bytes]:
        if mode == Mode.READ:
            self.reads_local += 1
            return self.control.execute(payload)
        self.writes_forwarded += 1
        result = yield from self._invoke_remote(self.master, payload, mode)
        return result

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        kind = message.get("type")
        if kind == "invoke":
            mode = Mode(message.get("mode", "write"))
            if mode == Mode.READ:
                self.reads_local += 1
                return {"type": "result",
                        "payload": self.control.execute(message["payload"])}
            self.writes_forwarded += 1
            payload = yield from self._invoke_remote(
                self.master, message["payload"], mode)
            return {"type": "result", "payload": payload}
        if kind == "state_push":
            if message["version"] > self.version:
                self._restore(message["state"])
                self.version = message["version"]
            return {"type": "ack"}
        if kind == "pull":
            if message.get("have_version", -1) >= self.version:
                return {"type": "fresh", "version": self.version}
            return {"type": "state", "version": self.version,
                    "state": self._snapshot()}
        return {"type": "error", "reason": "unsupported message %r" % kind}


def _make_client(addresses, **_kwargs):
    return MasterSlaveClient(addresses)


def _make_master(sync_push=False, **_kwargs):
    return MasterSlaveMaster(sync_push=sync_push)


def _make_slave(master=None, **_kwargs):
    if master is None:
        raise ReplicationError("slave role needs the master's address")
    return MasterSlaveSlave(master)


register_protocol(PROTOCOL, _make_client,
                  {"master": _make_master, "slave": _make_slave})
