"""Replication protocols for distributed shared objects.

Importing this package registers all built-in protocols in
:data:`repro.core.replication.base.PROTOCOLS`:

* ``client_server`` — single authoritative server (paper §7);
* ``master_slave`` — master applies writes, pushes state to slaves
  (paper §7);
* ``active`` — sequencer-ordered operation multicast (§3.3);
* ``cache`` — TTL-based client-side caching / lazy replication (§3.3).
"""

from . import active, cache, client_server, master_slave  # noqa: F401
from .base import (PROTOCOLS, ReplicationError, ReplicationSubobject,
                   protocol_names, register_protocol)
from .active import ActiveClient, ActiveReplica, ActiveSequencer
from .cache import CachingClient
from .client_server import ClientServerClient, ClientServerServer
from .master_slave import (MasterSlaveClient, MasterSlaveMaster,
                           MasterSlaveSlave)

__all__ = [
    "PROTOCOLS", "ReplicationError", "ReplicationSubobject",
    "protocol_names", "register_protocol",
    "ActiveClient", "ActiveReplica", "ActiveSequencer",
    "CachingClient", "ClientServerClient", "ClientServerServer",
    "MasterSlaveClient", "MasterSlaveMaster", "MasterSlaveSlave",
]
