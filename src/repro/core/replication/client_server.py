"""Client/(single) server replication (paper §7).

The simplest of the two protocols the paper ships: the object's state
lives at exactly one server; every invocation — read or write — is
forwarded there.  The client-side subobject is a pure proxy with no
local state.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..idl import Mode
from ..ids import ContactAddress
from .base import (ReplicationError, ReplicationSubobject,
                   register_protocol)

__all__ = ["ClientServerClient", "ClientServerServer"]

PROTOCOL = "client_server"


class ClientServerClient(ReplicationSubobject):
    """Forwards every invocation to the single server."""

    protocol = PROTOCOL
    role = "client"

    def __init__(self, addresses: List[ContactAddress]):
        super().__init__()
        server = self.find_role(addresses, "server")
        if server is None:
            raise ReplicationError(
                "client/server binding needs a 'server' contact address")
        self.server = server

    def invoke(self, payload: bytes, mode: Mode
               ) -> Generator[Any, Any, bytes]:
        if mode == Mode.READ:
            self.reads_remote += 1
        else:
            self.writes_forwarded += 1
        result = yield from self._invoke_remote(self.server, payload, mode)
        return result

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        return {"type": "error", "reason": "pure client holds no state"}
        yield  # pragma: no cover


class ClientServerServer(ReplicationSubobject):
    """Executes every invocation against the single authoritative copy.

    Tracks a write-version so caches can revalidate cheaply (a ``pull``
    carrying the current version is answered ``fresh`` instead of with
    a full state transfer).
    """

    protocol = PROTOCOL
    role = "server"

    def __init__(self):
        super().__init__()
        self.version = 0

    def invoke(self, payload: bytes, mode: Mode
               ) -> Generator[Any, Any, bytes]:
        # Co-located callers (e.g. an HTTPD on the server host) execute
        # directly; this is the degenerate local case.
        if mode == Mode.READ:
            self.reads_local += 1
        else:
            self.writes_local += 1
            self.version += 1
        return self.control.execute(payload)
        yield  # pragma: no cover - no waits needed

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        kind = message.get("type")
        if kind == "invoke":
            mode = Mode(message.get("mode", "write"))
            if mode == Mode.READ:
                self.reads_local += 1
            else:
                self.writes_local += 1
                self.version += 1
            return {"type": "result",
                    "payload": self.control.execute(message["payload"])}
        if kind == "pull":
            if message.get("have_version", -1) >= self.version:
                return {"type": "fresh", "version": self.version}
            return {"type": "state", "version": self.version,
                    "state": self._snapshot()}
        return {"type": "error", "reason": "unsupported message %r" % kind}
        yield  # pragma: no cover


def _make_client(addresses, **_kwargs):
    return ClientServerClient(addresses)


def _make_server(**_kwargs):
    return ClientServerServer()


register_protocol(PROTOCOL, _make_client, {"server": _make_server})
