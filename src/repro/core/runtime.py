"""The per-address-space Globe run-time system and ``bind`` (§3.4).

Binding installs a local representative of a DSO in the caller's
address space:

1. the OID is resolved to contact addresses by the Globe Location
   Service (nearest replica first);
2. the implementation named by the chosen contact address is loaded
   from a nearby implementation repository;
3. a client-role (or cache-role) representative is composed and wired
   to the chosen replica.

The runtime accepts any location-service client exposing
``lookup(oid_hex) -> generator -> [contact-address wire dicts]`` — the
real :class:`repro.gls.service.GlsClient` in deployments, or a stub in
unit tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from ..sim.transport import Host
from .ids import ContactAddress, ObjectId
from .local_repr import LocalRepresentative
from .replication.base import PROTOCOLS
from .repository import ImplementationRepository

__all__ = ["Runtime", "BindError"]


class BindError(Exception):
    """Raised when an OID cannot be bound to a local representative."""


class Runtime:
    """Globe run-time system for one address space (one host)."""

    def __init__(self, world, host: Host, location_service,
                 repository: ImplementationRepository,
                 channel_wrapper: Optional[Callable] = None,
                 binding_ttl: Optional[float] = None,
                 lookup_cache=None):
        """``binding_ttl`` makes cached bindings soft state: a bind
        older than the TTL is refreshed with a new GLS lookup, so
        long-lived address spaces (HTTPDs) notice replicas that were
        added or moved after they first bound.

        ``lookup_cache`` is an optional
        :class:`~repro.gdn.cache.GlsLookupCache` (wrapping the same
        ``location_service``) consulted for the GLS lookup inside
        :meth:`bind` — TTL/negative/serve-stale caching plus
        singleflight coalescing of concurrent misses.  ``None`` keeps
        the direct lookup path byte-identical to the uncached
        reference."""
        self.world = world
        self.host = host
        self.location_service = location_service
        self.repository = repository
        self.channel_wrapper = channel_wrapper
        self.binding_ttl = binding_ttl
        self.lookup_cache = lookup_cache
        self.bound: Dict[ObjectId, LocalRepresentative] = {}
        self._bound_at: Dict[ObjectId, float] = {}
        self.binds_performed = 0

    def bind(self, oid: ObjectId, cache_ttl: Optional[float] = None,
             refresh: bool = False
             ) -> Generator[Any, Any, LocalRepresentative]:
        """Install (or reuse) a local representative for ``oid``.

        ``lr = yield from runtime.bind(oid)``

        ``cache_ttl`` selects a caching representative that holds a
        local state copy with the given freshness window; otherwise the
        protocol named in the nearest contact address decides the
        client subobject.  ``refresh=True`` forces a fresh GLS lookup
        (used after a replica crash made the cached binding stale).
        """
        if not refresh and oid in self.bound:
            age = self.world.now - self._bound_at.get(oid, 0.0)
            if self.binding_ttl is None or age <= self.binding_ttl:
                return self.bound[oid]
        cache = self.lookup_cache
        if cache is not None:
            # The per-object cache TTL (the HTTPD's cache policy) also
            # bounds how long the GLS answer may be reused.
            wires = yield from cache.lookup(oid.hex, ttl=cache_ttl,
                                            refresh=refresh)
        else:
            wires = yield from self.location_service.lookup(oid.hex)
        if not wires:
            raise BindError("no contact addresses for %r" % oid)
        addresses = [ContactAddress.from_wire(wire) for wire in wires]
        primary = addresses[0]
        implementation = yield from self.repository.load(
            self.host, primary.impl_id)
        if cache_ttl is not None:
            semantics = implementation.make_semantics()
            replication = PROTOCOLS["cache"]["client"](
                addresses, ttl=cache_ttl)
        else:
            if primary.protocol not in PROTOCOLS:
                raise BindError("unknown replication protocol %r"
                                % primary.protocol)
            semantics = None
            replication = PROTOCOLS[primary.protocol]["client"](addresses)
        representative = LocalRepresentative(
            self.host, self.world, oid, implementation.interface, semantics,
            replication, channel_wrapper=self.channel_wrapper)
        yield from representative.start()
        old = self.bound.get(oid)
        if old is not None:
            old.detach()
        self.bound[oid] = representative
        self._bound_at[oid] = self.world.now
        self.binds_performed += 1
        return representative

    def unbind(self, oid: ObjectId) -> None:
        representative = self.bound.pop(oid, None)
        self._bound_at.pop(oid, None)
        if representative is not None:
            representative.detach()

    def unbind_all(self) -> None:
        for oid in list(self.bound):
            self.unbind(oid)
