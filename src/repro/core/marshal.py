"""Opaque invocation marshalling (paper §3.3).

Replication and communication subobjects "operate only on opaque
invocation messages in which method identifiers and parameters have
been encoded".  This module is that encoding: a small, deterministic,
self-describing binary format (tag + length + value) covering the value
types DSO methods use.  Because payloads really are ``bytes``, the
simulator's traffic accounting of invocation messages is exact.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

__all__ = [
    "pack",
    "unpack",
    "marshal_invocation",
    "unmarshal_invocation",
    "marshal_result",
    "unmarshal_result",
    "MarshalError",
]


class MarshalError(Exception):
    """Raised on encoding/decoding failures."""


_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_TUPLE = b"U"
_TAG_DICT = b"M"


def pack(value: Any) -> bytes:
    """Encode ``value`` into the tagged binary format."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big",
                             signed=True)
        out += _TAG_INT + struct.pack(">I", len(raw)) + raw
    elif isinstance(value, float):
        out += _TAG_FLOAT + struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR + struct.pack(">I", len(raw)) + raw
    elif isinstance(value, bytes):
        out += _TAG_BYTES + struct.pack(">I", len(value)) + value
    elif isinstance(value, (list, tuple)):
        tag = _TAG_LIST if isinstance(value, list) else _TAG_TUPLE
        out += tag + struct.pack(">I", len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out += _TAG_DICT + struct.pack(">I", len(value))
        # Sort keys for a canonical encoding (keys must be strings).
        try:
            items = sorted(value.items())
        except TypeError as exc:
            raise MarshalError("dict keys must be sortable strings") from exc
        for key, item in items:
            if not isinstance(key, str):
                raise MarshalError("dict keys must be str, got %r" % (key,))
            _encode(key, out)
            _encode(item, out)
    else:
        raise MarshalError("cannot marshal %r" % type(value).__name__)


def unpack(data: bytes) -> Any:
    """Decode a value previously produced by :func:`pack`."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise MarshalError("trailing garbage after value")
    return value


def _decode(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise MarshalError("truncated message")
    tag = data[offset:offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack_from(">d", data, offset)
        return value, offset + 8
    if tag in (_TAG_INT, _TAG_STR, _TAG_BYTES):
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        raw = data[offset:offset + length]
        if len(raw) != length:
            raise MarshalError("truncated payload")
        offset += length
        if tag == _TAG_INT:
            return int.from_bytes(raw, "big", signed=True), offset
        if tag == _TAG_STR:
            return raw.decode("utf-8"), offset
        return raw, offset
    if tag in (_TAG_LIST, _TAG_TUPLE):
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), offset
    if tag == _TAG_DICT:
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        result = {}
        for _ in range(count):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    raise MarshalError("unknown tag %r at offset %d" % (tag, offset - 1))


def marshal_invocation(method: str, args: dict) -> bytes:
    """Encode a method invocation into an opaque message."""
    return pack({"m": method, "a": args})


def unmarshal_invocation(payload: bytes) -> Tuple[str, dict]:
    message = unpack(payload)
    try:
        return message["m"], message["a"]
    except (TypeError, KeyError) as exc:
        raise MarshalError("not an invocation message") from exc


def marshal_result(value: Any) -> bytes:
    """Encode a method result (or fault) into an opaque message."""
    return pack({"r": value})


def unmarshal_result(payload: bytes) -> Any:
    message = unpack(payload)
    try:
        return message["r"]
    except (TypeError, KeyError) as exc:
        raise MarshalError("not a result message") from exc
