"""Object identifiers and contact addresses (paper §3.4).

Every distributed shared object is identified by a *worldwide unique,
location-independent* object identifier (OID) that never changes during
the object's lifetime.  Where the object currently lives — and how to
talk to it — is described by *contact addresses* stored in the Globe
Location Service; the pair (OID, contact-address set) is the object's
replication scenario made concrete.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

__all__ = ["ObjectId", "ContactAddress", "IdError"]

_OID_BYTES = 20  # 160 bits, as in the paper's "long strings of bits"


class IdError(Exception):
    """Raised for malformed identifiers or addresses."""


class ObjectId:
    """A 160-bit location-independent object identifier.

    Immutable and hashable; renders as hex.  OIDs travel on the wire in
    their hex form (``oid.hex``) and are reconstructed with
    :meth:`from_hex`.
    """

    __slots__ = ("_data",)

    def __init__(self, data: bytes):
        if not isinstance(data, bytes) or len(data) != _OID_BYTES:
            raise IdError("an OID is exactly %d bytes" % _OID_BYTES)
        self._data = data

    @classmethod
    def generate(cls, rng: Optional[random.Random] = None) -> "ObjectId":
        """A fresh random OID (from ``rng`` for determinism)."""
        rng = rng or random
        return cls(bytes(rng.getrandbits(8) for _ in range(_OID_BYTES)))

    @classmethod
    def from_seed(cls, seed: str) -> "ObjectId":
        """A deterministic OID derived from a string (tests, fixtures)."""
        return cls(hashlib.sha1(seed.encode("utf-8")).digest())

    @classmethod
    def from_hex(cls, text: str) -> "ObjectId":
        try:
            data = bytes.fromhex(text)
        except ValueError as exc:
            raise IdError("bad OID hex: %r" % text) from exc
        return cls(data)

    @property
    def hex(self) -> str:
        return self._data.hex()

    @property
    def data(self) -> bytes:
        return self._data

    def shard(self, buckets: int) -> int:
        """Stable hash partition in ``range(buckets)``.

        Used by GLS directory-node partitioning (§3.5): subnodes divide
        the OID space "via a special hashing technique".
        """
        if buckets < 1:
            raise IdError("buckets must be >= 1")
        digest = hashlib.sha256(self._data).digest()
        return int.from_bytes(digest[:8], "big") % buckets

    def __eq__(self, other) -> bool:
        return isinstance(other, ObjectId) and self._data == other._data

    def __hash__(self) -> int:
        return hash(self._data)

    def __repr__(self) -> str:
        return "ObjectId(%s...)" % self.hex[:12]

    def wire_size(self) -> int:
        return _OID_BYTES


class ContactAddress:
    """Where and how a local representative can be contacted (§3.4).

    ``protocol`` names the replication protocol (so the binder knows
    which client subobjects to load from the implementation
    repository), ``role`` distinguishes e.g. master from slave replicas
    within that protocol, and ``impl_id`` names the implementation to
    load.
    """

    __slots__ = ("host_name", "port", "protocol", "role", "impl_id",
                 "site_path")

    def __init__(self, host_name: str, port: int, protocol: str,
                 role: str = "replica", impl_id: str = "",
                 site_path: str = ""):
        self.host_name = host_name
        self.port = int(port)
        self.protocol = protocol
        self.role = role
        self.impl_id = impl_id or ("%s/client" % protocol)
        self.site_path = site_path

    def to_wire(self) -> dict:
        return {
            "host": self.host_name,
            "port": self.port,
            "protocol": self.protocol,
            "role": self.role,
            "impl": self.impl_id,
            "site": self.site_path,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "ContactAddress":
        try:
            return cls(data["host"], data["port"], data["protocol"],
                       data.get("role", "replica"), data.get("impl", ""),
                       data.get("site", ""))
        except KeyError as exc:
            raise IdError("bad contact address: missing %s" % exc) from exc

    def key(self) -> tuple:
        """Identity for dedup/removal: one CA per (host, port, role)."""
        return (self.host_name, self.port, self.role)

    def __eq__(self, other) -> bool:
        return (isinstance(other, ContactAddress)
                and self.to_wire() == other.to_wire())

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return ("ContactAddress(%s:%d, %s/%s)"
                % (self.host_name, self.port, self.protocol, self.role))
