"""Local representatives: the per-address-space face of a DSO (§3.3).

A distributed shared object *is* the collection of its local
representatives (Figure 1a).  Each representative bundles the four
subobjects; its composition depends on its role:

* client proxies (role ``client``) carry no semantics state;
* caches (role ``cache``) carry a semantics copy refreshed on demand;
* replicas (roles ``server``/``master``/``slave``/``replica``) carry
  authoritative or synchronised state and live inside Globe Object
  Servers (or GDN-HTTPDs acting as replicas).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..sim.transport import Host
from .idl import Interface
from .ids import ContactAddress, ObjectId
from .subobjects import (CommunicationSubobject, ControlSubobject,
                         SemanticsSubobject)

__all__ = ["LocalRepresentative"]


class LocalRepresentative:
    """One address space's representative of a DSO."""

    def __init__(self, host: Host, world, oid: ObjectId,
                 interface: Interface,
                 semantics: Optional[SemanticsSubobject],
                 replication,
                 channel_wrapper: Optional[Callable] = None,
                 contact_address: Optional[ContactAddress] = None):
        self.host = host
        self.oid = oid
        #: The address registered for this representative in the GLS
        #: (replicas only; client proxies are not registered).
        self.contact_address = contact_address
        self.comm = CommunicationSubobject(host, world, channel_wrapper)
        self.control = ControlSubobject(semantics, interface)
        self.replication = replication
        self.control.replication = replication
        replication.attach(self)

    @property
    def role(self) -> str:
        return self.replication.role

    @property
    def semantics(self) -> Optional[SemanticsSubobject]:
        return self.control.semantics

    def start(self) -> Generator:
        """Run protocol start-up (replica join / state fetch)."""
        yield from self.replication.start()

    def invoke(self, method: str, args: Optional[dict] = None
               ) -> Generator[Any, Any, Any]:
        """Invoke a DSO method through the subobject stack.

        ``value = yield from lr.invoke("listContents")``
        """
        result = yield from self.control.invoke(method, args)
        return result

    def handle_message(self, message: dict, ctx
                       ) -> Generator[Any, Any, dict]:
        """Entry point for protocol messages from other representatives."""
        reply = yield from self.replication.handle_message(message, ctx)
        return reply

    def detach(self) -> None:
        """Remove this representative from the address space."""
        self.replication.stop()
        self.comm.close()

    def __repr__(self) -> str:
        return ("LocalRepresentative(%r, %s/%s @ %s)"
                % (self.oid, self.replication.protocol, self.role,
                   self.host.name))
