"""A small Globe IDL: textual interface definitions (paper §7).

"The application programmer starts by defining the interfaces of the
DSO in Globe's interface definition language (IDL).  Using our IDL
compiler these interfaces are translated into Java."  Our semantics
classes declare methods with decorators; this module provides the
other direction — parse an interface definition and *check* that a
semantics class implements it, which is what the IDL contract buys:

    PACKAGE_IDL = '''
    interface Package {
        readonly listContents();
        readonly getFileContents(path);
        mutating addFile(path, data);
    };
    '''
    interface = parse_idl(PACKAGE_IDL)
    check_implements(PackageSemantics, interface)

Globe objects may have multiple interfaces (the paper notes the COM
model); a definition file may contain several ``interface`` blocks.
"""

from __future__ import annotations

import inspect
import re
from typing import Dict, List

from .idl import Interface, MethodSpec, Mode

__all__ = ["parse_idl", "parse_idl_file", "check_implements", "IdlSyntaxError",
           "IdlComplianceError"]


class IdlSyntaxError(Exception):
    """The IDL text is malformed."""


class IdlComplianceError(Exception):
    """A semantics class does not implement a declared interface."""


_INTERFACE_RE = re.compile(
    r"interface\s+(?P<name>[A-Za-z_]\w*)\s*\{(?P<body>[^}]*)\}\s*;?",
    re.DOTALL)
_METHOD_RE = re.compile(
    r"^\s*(?P<mode>readonly|mutating)\s+(?P<name>[A-Za-z_]\w*)\s*"
    r"\((?P<params>[^)]*)\)\s*;\s*$")
_PARAM_RE = re.compile(r"^[A-Za-z_]\w*$")


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


class ParsedInterface(Interface):
    """An interface parsed from IDL text; remembers parameter names."""

    def __init__(self, name: str, methods: Dict[str, MethodSpec],
                 parameters: Dict[str, List[str]]):
        super().__init__(name, methods)
        self.parameters = parameters


def parse_idl(text: str) -> Dict[str, ParsedInterface]:
    """Parse IDL text into interfaces keyed by name."""
    text = _strip_comments(text)
    interfaces: Dict[str, ParsedInterface] = {}
    consumed = 0
    for match in _INTERFACE_RE.finditer(text):
        consumed += len(match.group(0))
        name = match.group("name")
        if name in interfaces:
            raise IdlSyntaxError("duplicate interface %r" % name)
        methods: Dict[str, MethodSpec] = {}
        parameters: Dict[str, List[str]] = {}
        for line in match.group("body").splitlines():
            if not line.strip():
                continue
            method_match = _METHOD_RE.match(line)
            if method_match is None:
                raise IdlSyntaxError("bad method declaration: %r"
                                     % line.strip())
            method_name = method_match.group("name")
            if method_name in methods:
                raise IdlSyntaxError("duplicate method %r in %s"
                                     % (method_name, name))
            mode = (Mode.READ if method_match.group("mode") == "readonly"
                    else Mode.WRITE)
            params = [p.strip() for p in
                      method_match.group("params").split(",") if p.strip()]
            for param in params:
                if not _PARAM_RE.match(param):
                    raise IdlSyntaxError("bad parameter name %r in %s.%s"
                                         % (param, name, method_name))
            methods[method_name] = MethodSpec(method_name, mode)
            parameters[method_name] = params
        interfaces[name] = ParsedInterface(name, methods, parameters)
    leftovers = _INTERFACE_RE.sub("", text).strip()
    if leftovers:
        raise IdlSyntaxError("unparsed IDL content: %r..."
                             % leftovers[:40])
    if not interfaces:
        raise IdlSyntaxError("no interface definitions found")
    return interfaces


def parse_idl_file(path: str) -> Dict[str, ParsedInterface]:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_idl(handle.read())


def check_implements(semantics_class: type,
                     interface: ParsedInterface) -> None:
    """Verify a semantics class against a parsed interface.

    Checks that every declared method exists with the declared
    read/write mode and accepts the declared parameter names.  Raises
    :class:`IdlComplianceError` on the first violation.
    """
    declared = getattr(semantics_class, "interface", None)
    if declared is None:
        raise IdlComplianceError(
            "%s is not a semantics class" % semantics_class.__name__)
    for method_name, spec in interface.methods.items():
        if method_name not in declared:
            raise IdlComplianceError(
                "%s does not implement %s.%s"
                % (semantics_class.__name__, interface.name, method_name))
        actual = declared.spec(method_name)
        if actual.mode != spec.mode:
            raise IdlComplianceError(
                "%s.%s is %s but the IDL declares %s"
                % (semantics_class.__name__, method_name,
                   actual.mode.value, spec.mode.value))
        function = getattr(semantics_class, method_name)
        signature = inspect.signature(function)
        accepted = [p for p in signature.parameters if p != "self"]
        for param in interface.parameters[method_name]:
            if param not in accepted:
                raise IdlComplianceError(
                    "%s.%s does not accept parameter %r declared in the"
                    " IDL" % (semantics_class.__name__, method_name, param))
