"""Globe object model: DSOs, subobjects, binding, replication.

This package is the paper's primary contribution (§3): distributed
shared objects composed of semantics / communication / replication /
control subobjects, with per-object replication scenarios, bound
through the location service and loaded from implementation
repositories.
"""

from . import replication  # noqa: F401 - registers built-in protocols
from .idl import Interface, Mode, mutating, read_only
from .ids import ContactAddress, IdError, ObjectId
from .local_repr import LocalRepresentative
from .marshal import (MarshalError, marshal_invocation, marshal_result,
                      pack, unmarshal_invocation, unmarshal_result, unpack)
from .repository import (Implementation, ImplementationRepository,
                         RepositoryError)
from .runtime import BindError, Runtime
from .subobjects import (CommunicationSubobject, ControlSubobject,
                         RemoteInvocationError, SemanticsSubobject)

__all__ = [
    "Interface", "Mode", "mutating", "read_only",
    "ContactAddress", "IdError", "ObjectId",
    "LocalRepresentative",
    "MarshalError", "marshal_invocation", "marshal_result", "pack",
    "unmarshal_invocation", "unmarshal_result", "unpack",
    "Implementation", "ImplementationRepository", "RepositoryError",
    "BindError", "Runtime",
    "CommunicationSubobject", "ControlSubobject", "RemoteInvocationError",
    "SemanticsSubobject", "replication",
]
