"""Hosts and transport: UDP-like datagrams and TCP-like connections.

A :class:`Host` is a named machine attached to a site domain.  It owns
sockets, listeners, connections and processes; crashing a host kills
all of them (and ``restart`` brings the machine back empty, so daemons
must explicitly recover — which is exactly what the paper requires of
Globe Object Servers, §4).

Two transports are provided, matching the paper's usage:

* **Datagrams** (:class:`UdpSocket`) — unreliable, unordered enough for
  our purposes, subject to configured loss.  The Globe Location Service
  runs over these (§6.3: "For efficiency reasons this is based on UDP").
* **Connections** (:class:`Connection`) — reliable, FIFO, with a
  one-RTT connection-establishment cost.  All other GDN traffic runs
  over these, optionally wrapped by the TLS layer
  (:mod:`repro.security.tls`).

Connections preserve FIFO ordering even though each message's transfer
delay depends on its size: a per-direction clock makes a later message
arrive no earlier than its predecessor, which also approximates
back-to-back pipelining of large transfers.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, Optional

from .deadlines import shared_pool
from .kernel import Event, Process, Simulator, Store
from .network import Network
from .serde import HEADER_OVERHEAD, encoded_size
from .topology import Domain

__all__ = [
    "Host",
    "UdpSocket",
    "TcpListener",
    "Connection",
    "Datagram",
    "TransportError",
    "ConnectionClosed",
    "ConnectRefused",
    "ConnectTimeout",
    "HostDown",
]

#: Handshake segment size (SYN / SYN-ACK / RST).
_HANDSHAKE_SIZE = HEADER_OVERHEAD
#: How long a connect attempt waits for a SYN-ACK before giving up.
CONNECT_TIMEOUT = 3.0


class TransportError(Exception):
    """Base class for transport failures."""


class ConnectionClosed(TransportError):
    """The peer closed the connection or its host went down."""


class ConnectRefused(TransportError):
    """No listener at the destination port."""


class ConnectTimeout(TransportError):
    """The destination did not answer the connection request."""


class HostDown(TransportError):
    """Operation attempted on or towards a crashed host."""


class Datagram:
    """An unreliable message as received by a :class:`UdpSocket`."""

    __slots__ = ("src_host", "src_port", "payload", "size")

    def __init__(self, src_host: "Host", src_port: int, payload: Any,
                 size: int):
        self.src_host = src_host
        self.src_port = src_port
        self.payload = payload
        self.size = size

    def __repr__(self) -> str:
        return ("Datagram(from=%s:%d, %d bytes)"
                % (self.src_host.name, self.src_port, self.size))


class Host:
    """A machine attached to a site, owning sockets and processes."""

    def __init__(self, network: Network, name: str, site: Domain):
        self.network = network
        self.sim: Simulator = network.sim
        self.name = name
        self.site = site
        self.up = True
        self._udp_ports: Dict[int, "UdpSocket"] = {}
        self._tcp_listeners: Dict[int, "TcpListener"] = {}
        self._connections: list["Connection"] = []
        self._processes: list[Process] = []
        self._ephemeral = itertools.count(49152)

    def __repr__(self) -> str:
        return "Host(%s @ %s)" % (self.name, self.site.path)

    # -- process management ---------------------------------------------

    def spawn(self, generator: Generator) -> Process:
        """Run ``generator`` as a process that dies if this host crashes."""
        if not self.up:
            raise HostDown("cannot spawn on crashed host %s" % self.name)
        process = self.sim.process(generator)
        self._processes.append(process)
        process.add_callback(
            lambda _event: self._processes.remove(process)
            if process in self._processes else None)
        return process

    # -- lifecycle --------------------------------------------------------

    def crash(self) -> None:
        """Hard-stop the machine: processes killed, endpoints destroyed."""
        if not self.up:
            return
        self.up = False
        self.network.set_host_down(self.name, True)
        for process in list(self._processes):
            process.kill()
        self._processes.clear()
        for connection in list(self._connections):
            connection._break()
        self._connections.clear()
        for socket in list(self._udp_ports.values()):
            socket.close()
        for listener in list(self._tcp_listeners.values()):
            listener.close()

    def restart(self) -> None:
        """Bring the machine back up, empty.  Daemons must be restarted."""
        if self.up:
            return
        self.up = True
        self.network.set_host_down(self.name, False)

    def _require_up(self) -> None:
        if not self.up:
            raise HostDown("host %s is down" % self.name)

    # -- UDP ---------------------------------------------------------------

    def udp_socket(self, port: Optional[int] = None) -> "UdpSocket":
        self._require_up()
        if port is None:
            port = next(self._ephemeral)
        if port in self._udp_ports:
            raise TransportError(
                "UDP port %d already bound on %s" % (port, self.name))
        socket = UdpSocket(self, port)
        self._udp_ports[port] = socket
        return socket

    # -- TCP ---------------------------------------------------------------

    def listen(self, port: int) -> "TcpListener":
        self._require_up()
        if port in self._tcp_listeners:
            raise TransportError(
                "TCP port %d already listening on %s" % (port, self.name))
        listener = TcpListener(self, port)
        self._tcp_listeners[port] = listener
        return listener

    def connect(self, dst: "Host", port: int,
                timeout: float = CONNECT_TIMEOUT
                ) -> Generator[Event, Any, "Connection"]:
        """Open a connection to ``dst:port`` (one-RTT handshake).

        A generator: use as ``conn = yield from host.connect(dst, 80)``.
        Raises :class:`ConnectRefused` if nothing listens there,
        :class:`ConnectTimeout` if the destination is unreachable.
        """
        self._require_up()
        reply: Event = self.sim.event()

        def on_syn_arrival(_event) -> None:
            listener = dst._tcp_listeners.get(port) if dst.up else None

            def deliver_reply(accept: bool) -> None:
                def on_reply(_event) -> None:
                    if reply.triggered:
                        return
                    if accept:
                        reply.succeed()
                    else:
                        reply.fail(ConnectRefused(
                            "%s:%d refused" % (dst.name, port)))
                self.network.deliver(dst.site, self.site, self.name,
                                     _HANDSHAKE_SIZE, on_reply,
                                     reliable=True)

            deliver_reply(accept=listener is not None)

        delivered = self.network.deliver(
            self.site, dst.site, dst.name, _HANDSHAKE_SIZE, on_syn_arrival,
            reliable=True)
        def expire() -> None:
            # Pre-defused: the connecting process may have died while
            # waiting (its host crashed); the expiry then passes
            # silently instead of crashing the simulation.
            if not reply.triggered:
                reply.defuse()
                reply.fail(ConnectTimeout(
                    "connect to %s:%d timed out%s"
                    % (dst.name, port,
                       "" if delivered else " (unreachable)")))

        # The guard joins the simulator-wide deadline pool instead of
        # arming its own kernel timer (one armed timer covers every
        # pending connect/call guard in the world).
        pool = shared_pool(self.sim)
        guard = pool.add(expire, timeout)
        try:
            yield reply  # raises ConnectRefused / ConnectTimeout
        finally:
            pool.cancel(guard)  # handshakes leave nothing pending behind
        listener = dst._tcp_listeners.get(port)
        if listener is None or not dst.up:
            raise ConnectRefused("%s:%d refused" % (dst.name, port))
        client_end = Connection(self, dst)
        server_end = Connection(dst, self)
        client_end._peer = server_end
        server_end._peer = client_end
        self._connections.append(client_end)
        dst._connections.append(server_end)
        listener._pending.put(server_end)
        return client_end


class UdpSocket:
    """An unreliable datagram endpoint bound to ``host:port``."""

    def __init__(self, host: Host, port: int):
        self.host = host
        self.port = port
        self._inbox: Store = host.sim.store()
        self.closed = False

    def send_to(self, dst: Host, dst_port: int, payload: Any,
                size: Optional[int] = None) -> None:
        """Fire-and-forget datagram; may be silently lost."""
        if self.closed:
            raise TransportError("socket is closed")
        if not self.host.up:  # inline _require_up (per-datagram path)
            raise HostDown("host %s is down" % self.host.name)
        wire = (size if size is not None else encoded_size(payload))
        wire += HEADER_OVERHEAD

        def deliver(_event) -> None:
            # Inline hand-off: the arrival timer's callback resumes a
            # parked recv() directly (Store.put_inline) — no run-queue
            # event per datagram.
            target = dst._udp_ports.get(dst_port)
            if target is not None and not target.closed and dst.up:
                target._inbox.put_inline(
                    Datagram(self.host, self.port, payload, wire))

        self.host.network.deliver(self.host.site, dst.site, dst.name,
                                  wire, deliver, reliable=False)

    def send_burst(self, dst: Host, dst_port: int, items) -> int:
        """Send many datagrams to one ``dst:dst_port`` as one burst.

        ``items`` is a sequence of ``(payload, size)`` pairs (``size``
        ``None`` ⇒ measured via ``encoded_size``), in send order.
        Behaviourally identical to calling :meth:`send_to` once per
        item — same metering, same loss draws, same arrival ordering —
        but the whole burst arms a single kernel timer
        (:meth:`~repro.sim.network.Network.deliver_burst`), which is
        the cheap path for same-pair fan-out like a multi-fragment
        download response.  Returns the number scheduled (not lost).
        """
        if self.closed:
            raise TransportError("socket is closed")
        if not self.host.up:  # inline _require_up (per-burst path)
            raise HostDown("host %s is down" % self.host.name)
        host = self.host
        port = self.port
        inbox_ok = dst._udp_ports
        messages = []
        for payload, size in items:
            wire = (size if size is not None else encoded_size(payload))
            wire += HEADER_OVERHEAD

            def deliver(_event, payload=payload, wire=wire) -> None:
                target = inbox_ok.get(dst_port)
                if target is not None and not target.closed and dst.up:
                    target._inbox.put_inline(
                        Datagram(host, port, payload, wire))

            messages.append((wire, deliver))
        return host.network.deliver_burst(host.site, dst.site, dst.name,
                                          messages, reliable=False)

    def recv(self) -> Event:
        """Event firing with the next :class:`Datagram`."""
        if self.closed:
            raise TransportError("socket is closed")
        return self._inbox.get()

    def close(self) -> None:
        self.closed = True
        self.host._udp_ports.pop(self.port, None)


class TcpListener:
    """Accepts incoming connections on ``host:port``."""

    def __init__(self, host: Host, port: int):
        self.host = host
        self.port = port
        self._pending: Store = host.sim.store()
        self.closed = False

    def accept(self) -> Event:
        """Event firing with the server-side :class:`Connection`."""
        if self.closed:
            raise TransportError("listener is closed")
        return self._pending.get()

    def close(self) -> None:
        self.closed = True
        self.host._tcp_listeners.pop(self.port, None)


_EOF = object()


class Connection:
    """One endpoint of a reliable, FIFO, bidirectional connection."""

    def __init__(self, local: Host, remote: Host):
        self.local = local
        self.remote = remote
        self.sim = local.sim
        self._inbox: Store = local.sim.store()
        self._peer: Optional["Connection"] = None
        self._next_arrival = 0.0
        self.closed = False
        self.broken = False
        self.bytes_sent = 0
        self.bytes_received = 0

    def __repr__(self) -> str:
        return "Connection(%s -> %s)" % (self.local.name, self.remote.name)

    # -- data transfer -----------------------------------------------------

    def send(self, payload: Any, size: Optional[int] = None) -> int:
        """Send a message; returns the wire size charged.

        Raises :class:`ConnectionClosed` if this end is closed/broken.
        Delivery is asynchronous; FIFO order is preserved.
        """
        if self.closed or self.broken:
            raise ConnectionClosed("send on closed connection %r" % self)
        if not self.local.up:  # inline _require_up (per-message path)
            raise HostDown("host %s is down" % self.local.name)
        wire = (size if size is not None else encoded_size(payload))
        wire += HEADER_OVERHEAD
        if self.local.network.host_is_down(self.remote.name):
            self._break()
            raise ConnectionClosed("peer host %s is down" % self.remote.name)
        self.bytes_sent += wire
        peer = self._peer

        def deliver(_event) -> None:
            if peer is not None and not peer.closed and peer.local.up:
                peer.bytes_received += wire
                peer._inbox.put(payload)

        network = self.local.network
        base_delay = network.transfer_delay(self.local.site,
                                            self.remote.site, wire)
        arrival = max(self.sim.now + base_delay, self._next_arrival)
        self._next_arrival = arrival
        # Deliver at exactly the pacing clock's timestamp: recomputing
        # the delay (a second jitter draw, or a float-rounding ULP)
        # could land an earlier message after a later one.
        delivered = network.deliver(self.local.site, self.remote.site,
                                    self.remote.name, wire, deliver,
                                    reliable=True, at=arrival)
        if not delivered:
            self._break()
            raise ConnectionClosed("connection to %s lost" % self.remote.name)
        return wire

    def recv(self) -> Event:
        """Event firing with the next message.

        Fails with :class:`ConnectionClosed` once the peer has closed
        (after all in-flight messages have been drained).
        """
        result = self.sim.event()
        # Teardown notifications must not crash the simulation when the
        # waiting process has itself been killed (e.g. its host crashed
        # between issuing recv() and the EOF arriving).
        result._defused = True
        if self.closed:
            result.fail(ConnectionClosed("recv on closed connection"))
            return result
        # Fast path: the inbox has a backlog, so no getter is parked
        # (Store keeps at most one side non-empty) and the head item is
        # ours — trigger the result directly instead of allocating a
        # wrapper Store event plus a relay callback per message.
        backlog = self._inbox._items
        if backlog:
            item = backlog[0]
            if item is _EOF:  # left in place: every later recv sees it
                result.fail(ConnectionClosed("peer closed %r" % self))
            else:
                backlog.popleft()
                result.succeed(item)
            return result
        inner = self._inbox.get()

        def on_item(event: Event) -> None:
            if result.triggered:
                return
            item = event._value
            if item is _EOF:
                # Subsequent recv() must see EOF too.  Hand it to the
                # next parked getter if one is waiting; otherwise
                # re-queue it at the *head* — the same place the fast
                # path leaves it — so an abrupt _break()'s EOF keeps
                # outranking any straggler delivered behind it (once
                # broken, every later recv fails; stragglers after a
                # crash are dropped, not resurrected).
                inbox = self._inbox
                if inbox._getters:
                    inbox.put(_EOF)
                else:
                    inbox._items.appendleft(_EOF)
                result.fail(ConnectionClosed("peer closed %r" % self))
            else:
                result.succeed(item)

        inner.add_callback(on_item)
        return result

    # -- teardown ---------------------------------------------------------

    def close(self) -> None:
        """Graceful close: the peer drains in-flight data, then sees EOF."""
        if self.closed:
            return
        self.closed = True
        peer = self._peer
        if peer is not None and not peer.closed:
            network = self.local.network
            base_delay = network.transfer_delay(
                self.local.site, self.remote.site, HEADER_OVERHEAD)
            arrival = max(self.sim.now + base_delay, self._next_arrival)
            network.deliver(self.local.site, self.remote.site,
                            self.remote.name, HEADER_OVERHEAD,
                            lambda _event: peer._inbox.put(_EOF)
                            if not peer.closed else None,
                            reliable=True, at=arrival)
        if self in self.local._connections:
            self.local._connections.remove(self)

    def _break(self) -> None:
        """Abrupt teardown (host crash): surviving ends see EOF."""
        for end in (self, self._peer):
            if end is None or end.closed:
                continue
            end.broken = True
            if end.local.up:
                end._inbox.put(_EOF)
            if end in end.local._connections:
                end.local._connections.remove(end)
