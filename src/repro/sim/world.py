"""The ``World``: one bundle of simulator + topology + network + hosts.

Every experiment builds exactly one :class:`World` and creates all of
its components (GLS nodes, DNS servers, object servers, HTTPDs,
clients) against it.  The world also hands out deterministic per-label
random streams so that adding a new randomised component never perturbs
the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Optional, Union

from ..analysis.telemetry import MetricsRegistry
from .deadlines import shared_pool
from .kernel import Process, Simulator
from .network import LinkParameters, Network
from .topology import Domain, Topology
from .transport import Host

__all__ = ["World"]


class World:
    """A self-contained simulated internet.

    The world also owns the telemetry registry (``world.metrics``):
    the kernel's event/timer counters and the network's per-level
    traffic ledgers are bound at construction, and every component
    added later (GLS nodes, object servers, HTTPDs, load stats) binds
    its own instruments, so one registry answers for the whole run —
    including phase windows (``world.metrics.phase(...)``).
    """

    def __init__(self, topology: Optional[Topology] = None,
                 params: Optional[LinkParameters] = None, seed: int = 0):
        self.seed = seed
        self.sim = Simulator()
        self.topology = topology or Topology.balanced()
        self.network = Network(self.sim, self.topology, params, seed=seed)
        self.hosts: Dict[str, Host] = {}
        self.metrics = MetricsRegistry()
        self.sim.bind_metrics(self.metrics)
        # The simulator-wide mixed-deadline pool (channel call
        # timeouts, connect guards) reports next to the kernel's own
        # timer counters.
        shared_pool(self.sim).bind_metrics(self.metrics,
                                           "kernel.deadline_pool")
        self.network.meter.bind_metrics(self.metrics)

    # -- host management --------------------------------------------------

    def host(self, name: str, site: Union[str, Domain]) -> Host:
        """Create a host attached to ``site`` (a Domain or site path)."""
        if name in self.hosts:
            raise ValueError("duplicate host name %r" % name)
        if isinstance(site, str):
            site = self.topology.site(site)
        host = Host(self.network, name, site)
        self.hosts[name] = host
        return host

    def get_host(self, name: str) -> Host:
        return self.hosts[name]

    # -- determinism helpers ----------------------------------------------

    def rng_for(self, label: str) -> random.Random:
        """A random stream seeded from ``(world seed, label)``.

        Stable across runs and independent of creation order.
        """
        digest = hashlib.sha256(
            ("%d/%s" % (self.seed, label)).encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    # -- execution ----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until)

    def run_until(self, process: Process, limit: float = float("inf")) -> Any:
        """Run until ``process`` completes; return its value."""
        return self.sim.run_until_complete(process, limit)
