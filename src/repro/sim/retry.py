"""Shared retry policies: backoff, deterministic jitter, retry budgets.

The paper's wide-area deployment assumes failures are routine (§1,
§6.1), and the original UDP-RPC recovery mechanism — a fixed-interval
retry loop — synchronizes recovery traffic into storms: every call
that enters a partition retries on the same fixed beat, so the heal
instant is met by a correlated wave of datagrams.  This module factors
the *retry discipline* out of the transports so every client shares
one vocabulary:

* :class:`RetryPolicy` — per-attempt timeout, a per-call attempt cap,
  a delay schedule before each retry, and an optional shared
  :class:`RetryBudget`.
* :class:`FixedRetry` — the legacy discipline (fixed timeout,
  immediate retries, no budget).  Byte-identical to the historical
  ``UdpRpcClient(timeout=..., retries=...)`` behaviour: it never
  draws randomness and never schedules a backoff timer, so replay
  fingerprints pinned before this module keep holding.
* :class:`ExponentialBackoff` — capped exponential backoff with
  *seeded, deterministic* jitter.  Jitter draws come from a
  ``random.Random`` seeded from a stable key (the client host's
  name), never from wall clock, so the same seed + fault schedule
  replays the same retry instants while different clients still
  desynchronize from each other.
* :class:`RetryBudget` — a token bucket shared across calls (and
  across clients, if desired) that rate-limits retries globally: a
  partition can cost at most ``burst`` immediate retries plus
  ``rate`` per second thereafter, instead of every in-flight call
  retrying on schedule forever.

Policies are plain configuration: they hold no per-call state, so one
instance can be shared by any number of clients (each client keeps
its own jitter RNG, keyed by its host name through
:meth:`RetryPolicy.make_rng`).
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Optional

__all__ = ["RetryPolicy", "FixedRetry", "ExponentialBackoff",
           "RetryBudget", "jitter_rng"]


def jitter_rng(key: str) -> random.Random:
    """A deterministic jitter RNG keyed by a stable string (a host
    name): reproducible across runs, distinct across clients."""
    return random.Random(zlib.crc32(key.encode("utf-8")))


class RetryBudget:
    """A token bucket rate-limiting retries across calls.

    ``burst`` tokens are available immediately; they replenish at
    ``rate`` tokens per second of simulated time, up to ``burst``.
    Each retry costs one token (:meth:`spend`); a denied spend means
    the caller should give up instead of retrying.  The bucket is
    refilled lazily from the caller-supplied clock value, so it costs
    no timers and stays deterministic.

    Shared freely: one budget across many clients caps the *system's*
    retry traffic during a partition, which is what prevents a
    coordinated storm.
    """

    def __init__(self, rate: float, burst: float):
        if rate < 0.0:
            raise ValueError("rate cannot be negative")
        if burst <= 0.0:
            raise ValueError("burst must be positive")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0
        # Plain-int accounting, bindable as function-backed instruments.
        self.granted = 0
        self.denied = 0

    def spend(self, now: float, amount: float = 1.0) -> bool:
        """Try to spend ``amount`` tokens at simulated time ``now``."""
        if now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last) * self.rate)
            self._last = now
        if self.tokens >= amount:
            self.tokens -= amount
            self.granted += 1
            return True
        self.denied += 1
        return False

    def bind_metrics(self, registry, prefix: str) -> None:
        registry.counter(prefix + ".granted", fn=lambda: self.granted)
        registry.counter(prefix + ".denied", fn=lambda: self.denied)
        registry.gauge(prefix + ".tokens", fn=lambda: self.tokens)

    def __repr__(self) -> str:
        return ("RetryBudget(rate=%g, burst=%g, tokens=%.2f)"
                % (self.rate, self.burst, self.tokens))


class RetryPolicy:
    """Base retry discipline: attempt cap, per-attempt timeout, delays.

    ``timeout`` guards each attempt; ``retries`` is the number of
    *extra* attempts after the first (so a call makes at most
    ``1 + retries`` attempts).  :meth:`retry_delay` returns how long
    to wait before retry number ``attempt`` (1-based); the base class
    retries immediately.  ``budget`` (optional) is consulted once per
    retry by the adopting client — a denied spend ends the call.

    ``rng_fn`` in :meth:`retry_delay` is a zero-argument callable
    returning a seeded ``random.Random``; policies that do not jitter
    must not call it, so deterministic legacy paths never pay for (or
    observe) RNG creation.
    """

    def __init__(self, timeout: float = 0.5, retries: int = 3,
                 budget: Optional[RetryBudget] = None):
        if timeout <= 0.0:
            raise ValueError("timeout must be positive")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        self.timeout = timeout
        self.retries = retries
        self.budget = budget

    @property
    def attempts(self) -> int:
        return 1 + self.retries

    def retry_delay(self, attempt: int,
                    rng_fn: Callable[[], random.Random]) -> float:
        """Delay before retry ``attempt`` (1-based); 0.0 = immediate."""
        return 0.0

    def make_rng(self, key: str) -> random.Random:
        """A deterministic jitter RNG for one client.

        Seeded from a stable string key (the client's host name) so
        replays are reproducible while distinct clients draw distinct
        jitter streams — the desynchronization that breaks retry
        storms.
        """
        return jitter_rng(key)

    def __repr__(self) -> str:
        return ("%s(timeout=%g, retries=%d)"
                % (type(self).__name__, self.timeout, self.retries))


class FixedRetry(RetryPolicy):
    """The legacy discipline: fixed timeout, immediate retries.

    Exactly what ``UdpRpcClient(timeout=..., retries=...)`` did before
    policies existed — and the constructor still builds one of these,
    so the historical call sites replay byte-identically: no backoff
    timer is ever scheduled, no randomness is ever drawn, no budget is
    consulted.
    """


class ExponentialBackoff(RetryPolicy):
    """Capped exponential backoff with seeded, deterministic jitter.

    Retry ``k`` (1-based) waits ``base * multiplier**(k-1)`` seconds,
    capped at ``max_delay``, then shrunk by up to ``jitter`` of itself
    with a draw from the client's seeded RNG (``full jitter`` keeps
    the delay in ``[(1-jitter)*d, d]`` — strictly positive, bounded
    above by the deterministic schedule).  Distinct clients get
    distinct RNG streams, so retries that would align under
    :class:`FixedRetry` spread out instead.
    """

    def __init__(self, timeout: float = 0.5, retries: int = 3,
                 base: float = 0.1, multiplier: float = 2.0,
                 max_delay: float = 5.0, jitter: float = 0.5,
                 budget: Optional[RetryBudget] = None):
        super().__init__(timeout=timeout, retries=retries, budget=budget)
        if base <= 0.0:
            raise ValueError("base delay must be positive")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if max_delay < base:
            raise ValueError("max_delay must be >= base")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.base = base
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter

    def retry_delay(self, attempt: int,
                    rng_fn: Callable[[], random.Random]) -> float:
        delay = min(self.max_delay,
                    self.base * self.multiplier ** (attempt - 1))
        if self.jitter:
            delay *= 1.0 - self.jitter * rng_fn().random()
        return delay
