"""Request/response messaging over both transports.

Two flavours, matching the paper's split:

* :class:`RpcServer` / :func:`call` / :class:`RpcChannel` — RPC over
  reliable connections, used by Globe Object Servers, HTTPDs, the GNS
  naming authority and moderator tools.  Channels can be wrapped by a
  security layer (see ``channel_factory`` / ``channel_wrapper``): the
  TLS module provides wrappers that perform an authenticated handshake
  and attach the peer's verified identity to every request.

* :class:`UdpRpcServer` / :class:`UdpRpcClient` — RPC over datagrams
  with timeout/retry, used by the Globe Location Service (§6.3 of the
  paper: "For efficiency reasons this is based on UDP").

Handlers are registered per method name and receive
``(context, args)``.  A handler may be a plain function or a generator
(simulation process), so servers can perform further simulated I/O
while serving a request.  Generator handlers are served in their own
process — servers are concurrent; plain-function handlers take an
inline fast path (no process spawn) since they cannot block.

Client-side deadlines are **pooled** (:mod:`repro.sim.deadlines`):
instead of arming one guard :class:`~repro.sim.kernel.Timeout` per
call, each client registers its deadline with a pool that keeps a
single kernel timer armed for the earliest pending deadline.
:class:`UdpRpcClient` uses one fixed ``timeout``, so its deadlines
expire in FIFO order and its pool is a deque — zero heap traffic per
call/retry; :meth:`RpcChannel.call` registers its mixed per-call
timeouts with the simulator-wide shared pool.  A pooled expiry fires
at exactly the ``(time, seq)`` position the per-call timer would have
occupied (each call reserves a sequence number where it used to arm a
timer), and a dead waiter's expiry passes silently — the observable
semantics of the per-call guards, which remain available as the
reference implementation (``UdpRpcClient(..., pooled=False)``, via
:func:`_arm_deadline`).

Envelope sizes are **memoised**: request and reply envelopes have a
fixed dict shape, so their wire size is a precomputed constant plus
one measurement of the variable payload (args / value / error),
computed once per envelope and carried to the transport as an
explicit ``size=`` — the nested dict is never re-walked at a charging
point, and UDP retries re-send a same-sized envelope without
re-measuring.

Telemetry: servers and clients keep plain-int counters on the hot path
(``requests_served``; ``calls``/``retries``/``timeouts``/``faults``)
and expose them to a :class:`~repro.analysis.telemetry
.MetricsRegistry` through ``bind_metrics`` as function-backed
instruments, so per-phase windows can report RPC activity without the
request path ever touching an instrument object.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, Optional

from .deadlines import FifoDeadlinePool, shared_pool
from .kernel import Event, Simulator
from .retry import FixedRetry, RetryPolicy, jitter_rng
from .serde import CONTAINER_ITEM_OVERHEAD, SCALAR_SIZE, encoded_size
from .transport import (Connection, ConnectionClosed, Host, TransportError,
                        UdpSocket)

__all__ = [
    "RpcError",
    "RpcTimeout",
    "RpcFault",
    "RpcContext",
    "RpcServer",
    "RpcChannel",
    "call",
    "UdpRpcServer",
    "UdpRpcClient",
]

_request_ids = itertools.count(1)

# -- size-memoised envelopes ------------------------------------------------
#
# Every RPC envelope is a flat dict whose key strings and scalar fields
# never vary, so their encoded size is a compile-time constant; only
# the variable fields (method, src, args / value / error) need
# measuring, and each is measured exactly once per envelope.  The
# resulting size is handed to the transport as an explicit ``size=``,
# so the nested request/reply dict is never re-walked at a charging
# point (and a UDP retry re-sends a same-sized envelope without
# re-measuring the args).  The constants must mirror
# :func:`repro.sim.serde.encoded_size` exactly — tests/sim/test_rpc.py
# pins them against a live walk of real envelopes.

_ITEM = CONTAINER_ITEM_OVERHEAD
#: {"id": <int>, "method": ..., "args": ..., "src": ...}
_REQUEST_BASE = (len("id") + len("method") + len("args") + len("src")
                 + SCALAR_SIZE + 4 * 2 * _ITEM)
#: {"id": <int>, "ok": <bool>, "value"/"error": ...} (bools encode as 1)
_REPLY_OK_BASE = (len("id") + len("ok") + len("value")
                  + SCALAR_SIZE + 1 + 3 * 2 * _ITEM)
_REPLY_ERR_BASE = (len("id") + len("ok") + len("error")
                   + SCALAR_SIZE + 1 + 3 * 2 * _ITEM)


def _request_size(method: str, src: str, args_size: int) -> int:
    """Encoded size of a request envelope, measuring only ``method``
    and ``src`` (``args`` was measured once by the caller)."""
    return (_REQUEST_BASE + encoded_size(method) + encoded_size(src)
            + args_size)


def _request_base(cache: Dict[str, int], method: str, src: str) -> int:
    """The fixed part of a request envelope's size for one
    (client, method) pair, measured once and memoised.

    A client's ``src`` never changes and its method-name vocabulary is
    tiny, so per-call envelope sizing reduces to one dict probe plus
    the walk of the variable ``args``.
    """
    base = cache.get(method)
    if base is None:
        base = _REQUEST_BASE + encoded_size(method) + encoded_size(src)
        cache[method] = base
    return base


def _reply_size(reply: dict) -> int:
    """Encoded size of a reply envelope, walking only the payload."""
    if type(reply.get("id")) is not int:
        # Malformed request: the echoed id may be None — fall back to
        # the honest full walk rather than special-casing rarities.
        return encoded_size(reply)
    if reply["ok"]:
        return _REPLY_OK_BASE + encoded_size(reply["value"])
    return _REPLY_ERR_BASE + encoded_size(reply["error"])


class RpcError(Exception):
    """Base class for RPC failures."""


class RpcTimeout(RpcError):
    """No reply arrived within the deadline (after retries, for UDP)."""


class RpcFault(RpcError):
    """The remote handler raised; carries the remote error description."""

    def __init__(self, kind: str, message: str):
        super().__init__("%s: %s" % (kind, message))
        self.kind = kind
        self.message = message


class _DeadlineExpired(Exception):
    """Internal: a call's guard timer fired before the reply arrived."""


def _expire_waiter(waiter: Event) -> None:
    """Fail a reply waiter whose deadline expired.

    The failure is pre-defused: if the waiter was already answered, or
    the waiting process died in the meantime (host crash), the expiry
    passes silently instead of crashing the simulation.  This is the
    expiry action for both the pooled and the per-call guard paths.
    """
    if not waiter.triggered:
        waiter.defuse()
        waiter.fail(_DeadlineExpired())


def _arm_deadline(sim: Simulator, waiter: Event, delay: float):
    """Arm a dedicated guard timer that fails ``waiter`` on expiry.

    The per-call-timer *reference implementation* of the guard
    discipline — one heap push per call, cancelled on reply.  The hot
    paths use deadline pools instead (:mod:`repro.sim.deadlines`);
    this stays as the behavioural baseline the pooled path is pinned
    byte-identical against (``UdpRpcClient(..., pooled=False)``).
    Returns the timer so the caller can :meth:`Timeout.cancel` it once
    the reply arrives.
    """
    deadline = sim.timeout(delay)

    def expire(_event: Event) -> None:
        _expire_waiter(waiter)

    deadline.add_callback(expire)
    return deadline


class RpcContext:
    """Per-request context handed to server handlers."""

    __slots__ = ("src_host", "peer_principal", "transport")

    def __init__(self, src_host: str, peer_principal: Optional[str] = None,
                 transport: str = "tcp"):
        self.src_host = src_host
        #: Authenticated identity of the caller, if the channel was
        #: wrapped by a security layer; ``None`` on plain channels.
        self.peer_principal = peer_principal
        self.transport = transport

    def __repr__(self) -> str:
        return ("RpcContext(src=%s, principal=%s)"
                % (self.src_host, self.peer_principal))


# ---------------------------------------------------------------------------
# Connection-oriented RPC
# ---------------------------------------------------------------------------


class RpcServer:
    """Serves named methods on a listening port.

    ``channel_factory`` (optional) post-processes each accepted
    connection — it is a function ``conn -> generator -> wrapped_conn``
    used by the TLS layer to run the server side of a handshake.  The
    wrapped connection must offer ``send/recv/close`` and may expose
    ``peer_principal``.
    """

    def __init__(self, host: Host, port: int,
                 channel_factory: Optional[Callable] = None,
                 concurrency: Optional[int] = None,
                 service_time: float = 0.0):
        """``concurrency`` bounds in-flight requests (a worker pool);
        ``service_time`` charges fixed CPU per request while holding a
        worker.  Together they make a server a finite resource, so
        offered load beyond ``concurrency / service_time`` requests/s
        queues — the saturation behaviour replication relieves."""
        self.host = host
        self.port = port
        self.channel_factory = channel_factory
        self.handlers: Dict[str, Callable] = {}
        self.requests_served = 0
        self.busy_time = 0.0
        self.service_time = service_time
        self._listener = None
        self._semaphore = (host.sim.resource(concurrency)
                           if concurrency else None)

    def register(self, method: str, handler: Callable) -> None:
        self.handlers[method] = handler

    def bind_metrics(self, registry, prefix: str) -> None:
        registry.counter(prefix + ".requests_served",
                         fn=lambda: self.requests_served)

    def start(self) -> None:
        self._listener = self.host.listen(self.port)
        self.host.spawn(self._accept_loop(self._listener))

    def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def _accept_loop(self, listener) -> Generator:
        while True:
            try:
                conn = yield listener.accept()
            except TransportError:
                return
            if listener.closed:
                # Closed between the accept firing and this resume:
                # the just-accepted connection would otherwise leak,
                # leaving its client end open forever.
                conn.close()
                return
            self.host.spawn(self._serve_connection(conn))

    def _serve_connection(self, conn: Connection) -> Generator:
        if self.channel_factory is not None:
            try:
                conn = yield from self.channel_factory(conn)
            except (TransportError, Exception) as exc:
                # Handshake failures (bad certs etc.) terminate service.
                if isinstance(exc, ConnectionClosed):
                    return
                try:
                    conn.close()
                except Exception:
                    pass
                return
        while True:
            try:
                request = yield conn.recv()
            except ConnectionClosed:
                return
            self.host.spawn(self._serve_request(conn, request))

    def _serve_request(self, conn, request: dict) -> Generator:
        if self._semaphore is not None:
            yield self._semaphore.acquire()
        try:
            if self.service_time > 0.0:
                self.busy_time += self.service_time
                yield self.host.sim.timeout(self.service_time)
            yield from self._dispatch(conn, request)
        finally:
            if self._semaphore is not None:
                self._semaphore.release()

    def _dispatch(self, conn, request: dict) -> Generator:
        request_id = request.get("id")
        method = request.get("method", "")
        handler = self.handlers.get(method)
        ctx = RpcContext(src_host=request.get("src", "?"),
                         peer_principal=getattr(conn, "peer_principal", None))
        if handler is None:
            reply = {"id": request_id, "ok": False,
                     "error": ("NoSuchMethod", method)}
        else:
            try:
                value = handler(ctx, request.get("args", {}))
                if hasattr(value, "send"):  # generator: simulate it
                    value = yield from value
                reply = {"id": request_id, "ok": True, "value": value}
            except Exception as exc:  # noqa: BLE001 - faults cross the wire
                reply = {"id": request_id, "ok": False,
                         "error": (type(exc).__name__, str(exc))}
        self.requests_served += 1
        try:
            conn.send(reply, size=_reply_size(reply))
        except ConnectionClosed:
            pass


class RpcChannel:
    """A client-side channel multiplexing many calls on one connection.

    Reusing one connection amortises connect (and TLS handshake) costs,
    which is how long-lived GDN components talk to each other.
    Out-of-order replies are matched to callers by request id.
    """

    def __init__(self, host: Host, conn):
        self.host = host
        self.conn = conn
        self.sim = host.sim
        self.calls = 0
        self.timeouts = 0
        self.faults = 0
        self.retries_sent = 0
        self._pending: Dict[int, Event] = {}
        self._size_cache: Dict[str, int] = {}  # method -> envelope base
        # Guarded calls register their mixed per-call timeouts with the
        # simulator-wide pool: one armed kernel timer for all of them.
        self._deadlines = shared_pool(host.sim)
        self._jitter_rng = None  # lazily seeded, policy-guarded calls only
        self._dispatcher = host.spawn(self._dispatch_loop())

    def bind_metrics(self, registry, prefix: str) -> None:
        """Expose this channel's call accounting (long-lived channels —
        replication links, moderator sessions — are worth watching;
        per-request channels need not bind)."""
        registry.counter(prefix + ".calls", fn=lambda: self.calls)
        registry.counter(prefix + ".timeouts", fn=lambda: self.timeouts)
        registry.counter(prefix + ".faults", fn=lambda: self.faults)
        registry.counter(prefix + ".retries",
                         fn=lambda: self.retries_sent)

    @classmethod
    def open(cls, host: Host, dst: Host, port: int,
             channel_wrapper: Optional[Callable] = None
             ) -> Generator[Event, Any, "RpcChannel"]:
        """``channel = yield from RpcChannel.open(host, dst, port)``."""
        conn = yield from host.connect(dst, port)
        if channel_wrapper is not None:
            conn = yield from channel_wrapper(conn)
        return cls(host, conn)

    def _dispatch_loop(self) -> Generator:
        while True:
            try:
                reply = yield self.conn.recv()
            except ConnectionClosed:
                for event in self._pending.values():
                    if not event.triggered:
                        event.fail(ConnectionClosed("channel closed"))
                self._pending.clear()
                return
            waiter = self._pending.pop(reply.get("id"), None)
            if waiter is None or waiter.triggered:
                continue
            if reply.get("ok"):
                waiter.succeed(reply.get("value"))
            else:
                kind, message = reply.get("error", ("RpcError", "?"))
                waiter.fail(RpcFault(kind, message))

    def call(self, method: str, args: Optional[dict] = None,
             size: Optional[int] = None, timeout: Optional[float] = None,
             policy: Optional[RetryPolicy] = None
             ) -> Generator[Event, Any, Any]:
        """``value = yield from channel.call("method", {...})``.

        With ``policy=`` the call is guarded per attempt by the
        policy's timeout and re-issued on :class:`RpcTimeout` under
        its backoff/budget discipline (an explicit ``timeout=``
        overrides the per-attempt guard).  Without a policy the
        single-shot behaviour is unchanged.
        """
        if policy is not None:
            value = yield from self._call_with_policy(method, args, size,
                                                      timeout, policy)
            return value
        request_id = next(_request_ids)
        args = args if args is not None else {}
        request = {"id": request_id, "method": method,
                   "args": args, "src": self.host.name}
        if size is None:
            size = (_request_base(self._size_cache, method, self.host.name)
                    + encoded_size(args))
        self.calls += 1
        waiter = self.sim.event()
        self._pending[request_id] = waiter
        try:
            self.conn.send(request, size=size)
        except Exception:
            # A synchronous send failure (closed or partitioned
            # connection) means no reply can ever match this waiter;
            # leaving it registered would make the dispatcher's
            # shutdown sweep fail an event nobody waits on, which the
            # kernel reports as an unhandled failure.
            self._pending.pop(request_id, None)
            raise
        if timeout is None:
            try:
                value = yield waiter
            except RpcFault:
                self.faults += 1
                raise
            return value
        guard = self._deadlines.add(lambda: _expire_waiter(waiter), timeout)
        try:
            value = yield waiter
        except _DeadlineExpired:
            self.timeouts += 1
            self._pending.pop(request_id, None)
            raise RpcTimeout("%s timed out after %gs"
                             % (method, timeout)) from None
        except RpcFault:
            self.faults += 1
            raise
        finally:
            self._deadlines.cancel(guard)  # nothing stranded on reply
        return value

    def _call_with_policy(self, method: str, args: Optional[dict],
                          size: Optional[int], timeout: Optional[float],
                          policy: RetryPolicy
                          ) -> Generator[Event, Any, Any]:
        """Guarded, retried call: each attempt is a fresh request id
        under the policy's per-attempt timeout; timed-out attempts are
        re-issued after the policy's backoff delay, budget permitting.
        Connection loss is not retried here — the channel is dead and
        the owner must reconnect."""
        per_attempt = timeout if timeout is not None else policy.timeout
        last_error: Optional[Exception] = None
        for attempt in range(policy.attempts):
            if attempt:
                budget = policy.budget
                if budget is not None and not budget.spend(self.sim.now):
                    break
                delay = policy.retry_delay(attempt, self._policy_jitter)
                if delay > 0.0:
                    yield self.sim.timeout(delay)
                self.retries_sent += 1
            try:
                value = yield from self.call(method, args, size=size,
                                             timeout=per_attempt)
                return value
            except RpcTimeout as exc:
                last_error = exc
        raise last_error

    def _policy_jitter(self):
        """Lazily-seeded jitter RNG (host-name keyed, deterministic)."""
        rng = self._jitter_rng
        if rng is None:
            rng = self._jitter_rng = jitter_rng(self.host.name)
        return rng

    def close(self) -> None:
        """Close the channel, failing any in-flight calls.

        Callers blocked in :meth:`call` without a timeout would
        otherwise wait forever once the dispatcher is gone; they
        receive :class:`ConnectionClosed` instead.  The failures are
        pre-defused so that calls whose waiting process has already
        died (host crash) pass silently.
        """
        self.conn.close()
        if self._dispatcher.alive:
            self._dispatcher.kill()
        pending, self._pending = self._pending, {}
        for waiter in pending.values():
            if not waiter.triggered:
                waiter.defuse()
                waiter.fail(ConnectionClosed("channel closed"))


def call(src: Host, dst: Host, port: int, method: str,
         args: Optional[dict] = None, size: Optional[int] = None,
         channel_wrapper: Optional[Callable] = None,
         timeout: Optional[float] = None) -> Generator[Event, Any, Any]:
    """One-shot RPC: connect, call, close.

    ``value = yield from rpc.call(me, server, 7000, "ping", {})``
    """
    channel = yield from RpcChannel.open(src, dst, port, channel_wrapper)
    try:
        value = yield from channel.call(method, args, size=size,
                                        timeout=timeout)
    finally:
        channel.close()
    return value


# ---------------------------------------------------------------------------
# Datagram RPC (used by the Globe Location Service)
# ---------------------------------------------------------------------------


class UdpRpcServer:
    """Serves named methods over datagrams.

    No connection state; each request datagram carries a request id and
    the reply is sent to the source socket.  Lost requests or replies
    are handled by client retry.
    """

    def __init__(self, host: Host, port: int):
        self.host = host
        self.port = port
        self.handlers: Dict[str, Callable] = {}
        self.requests_served = 0
        self._socket: Optional[UdpSocket] = None

    def register(self, method: str, handler: Callable) -> None:
        self.handlers[method] = handler

    def bind_metrics(self, registry, prefix: str) -> None:
        registry.counter(prefix + ".requests_served",
                         fn=lambda: self.requests_served)

    def start(self) -> None:
        self._socket = self.host.udp_socket(self.port)
        self.host.spawn(self._serve_loop())

    def stop(self) -> None:
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def _serve_loop(self) -> Generator:
        while True:
            try:
                datagram = yield self._socket.recv()
            except TransportError:
                return
            request = datagram.payload
            request_id = request.get("id")
            handler = self.handlers.get(request.get("method", ""))
            ctx = RpcContext(src_host=datagram.src_host.name, transport="udp")
            if handler is None:
                self._reply(datagram,
                            {"id": request_id, "ok": False,
                             "error": ("NoSuchMethod",
                                       request.get("method", ""))})
                continue
            # Fast path: a plain-function handler cannot block, so it
            # is answered inline — no process spawn per request.
            try:
                value = handler(ctx, request.get("args", {}))
            except Exception as exc:  # noqa: BLE001 - faults cross the wire
                self._reply(datagram,
                            {"id": request_id, "ok": False,
                             "error": (type(exc).__name__, str(exc))})
                continue
            if hasattr(value, "send"):  # generator: serve concurrently
                self.host.spawn(self._serve_async(datagram, request_id,
                                                  value))
            else:
                self._reply(datagram,
                            {"id": request_id, "ok": True, "value": value})

    def _serve_async(self, datagram, request_id, handler_gen) -> Generator:
        try:
            value = yield from handler_gen
            reply = {"id": request_id, "ok": True, "value": value}
        except Exception as exc:  # noqa: BLE001
            reply = {"id": request_id, "ok": False,
                     "error": (type(exc).__name__, str(exc))}
        self._reply(datagram, reply)

    def _reply(self, datagram, reply: dict) -> None:
        # Count only when the reply datagram actually goes out: if
        # stop() or a crash closed the socket while a generator handler
        # was still working, the request was *not* served — counting it
        # would drift served-vs-answered accounting in soak reports.
        socket = self._socket
        if socket is None or socket.closed:
            return
        socket.send_to(datagram.src_host, datagram.src_port, reply,
                       size=_reply_size(reply))
        self.requests_served += 1


class UdpRpcClient:
    """Datagram RPC client driven by a :class:`~repro.sim.retry
    .RetryPolicy`.

    ``timeout``/``retries`` build the legacy :class:`~repro.sim.retry
    .FixedRetry` policy (fixed timeout, immediate retries — pinned
    byte-identical against the pre-policy traces); pass ``policy=`` for
    backoff/jitter/budget disciplines such as :class:`~repro.sim.retry
    .ExponentialBackoff`.

    Every attempt is guarded by a deadline from the client's own
    :class:`~repro.sim.deadlines.FifoDeadlinePool` — the policy's one
    fixed per-attempt ``timeout`` means deadlines expire in FIFO
    order, so a guarded attempt costs a deque append and an O(1)
    cancel instead of any kernel heap traffic (backoff delays happen
    *between* attempts and never change the guard spacing).
    ``pooled=False`` falls back to a dedicated guard timer per attempt
    (:func:`_arm_deadline`): the reference implementation determinism
    tests pin the pool against.
    """

    def __init__(self, host: Host, timeout: float = 0.5, retries: int = 3,
                 pooled: bool = True, policy: Optional[RetryPolicy] = None):
        self.host = host
        self.sim = host.sim
        if policy is None:
            policy = FixedRetry(timeout, retries)
        self.policy = policy
        self.timeout = policy.timeout
        self.retries = policy.retries
        # Plain-int accounting (calls = logical calls, not datagrams;
        # retries = extra attempts actually sent; timeouts = calls that
        # exhausted the attempt cap; faults = remote handler errors;
        # budget_denied = retries refused by the policy's RetryBudget).
        self.calls = 0
        self.retries_sent = 0
        self.timeouts_hit = 0
        self.faults = 0
        self.budget_denied = 0
        #: Assign a list to record the simulation time of every retry
        #: actually sent (storm diagnosis); ``None`` keeps the hot
        #: path free of bookkeeping.
        self.retry_log: Optional[list] = None
        self.deadline_pool = (FifoDeadlinePool(host.sim, self.timeout,
                                               _expire_waiter)
                              if pooled else None)
        self._socket = host.udp_socket()
        self._pending: Dict[int, Event] = {}
        self._size_cache: Dict[str, int] = {}  # method -> envelope base
        self._jitter_rng = None  # lazily seeded from the host name
        host.spawn(self._dispatch_loop())

    def bind_metrics(self, registry, prefix: str) -> None:
        registry.counter(prefix + ".calls", fn=lambda: self.calls)
        registry.counter(prefix + ".retries", fn=lambda: self.retries_sent)
        registry.counter(prefix + ".timeouts", fn=lambda: self.timeouts_hit)
        registry.counter(prefix + ".faults", fn=lambda: self.faults)
        registry.counter(prefix + ".budget_denied",
                         fn=lambda: self.budget_denied)
        if self.deadline_pool is not None:
            self.deadline_pool.bind_metrics(registry, prefix + ".deadlines")

    def _jitter(self):
        """The policy's per-client jitter RNG, created on first use so
        jitter-free policies (FixedRetry) never pay for one."""
        rng = self._jitter_rng
        if rng is None:
            rng = self._jitter_rng = self.policy.make_rng(self.host.name)
        return rng

    def _ensure_open(self) -> None:
        """Re-open the socket after a host crash+restart destroyed it.

        Waiters parked on the old socket can never be answered (their
        request ids die with it), so they are failed immediately with
        :class:`ConnectionClosed` rather than left to stall until
        their retry timers expire.  Pre-defused: waiters whose caller
        process died with the host pass silently.
        """
        if self._socket.closed and self.host.up:
            self._socket = self.host.udp_socket()
            orphans, self._pending = self._pending, {}
            self.host.spawn(self._dispatch_loop())
            for waiter in orphans.values():
                if not waiter.triggered:
                    waiter.defuse()
                    waiter.fail(
                        ConnectionClosed("socket lost in host restart"))

    def _dispatch_loop(self) -> Generator:
        while True:
            try:
                datagram = yield self._socket.recv()
            except TransportError:
                return
            reply = datagram.payload
            waiter = self._pending.pop(reply.get("id"), None)
            if waiter is None or waiter.triggered:
                continue
            if reply.get("ok"):
                waiter.succeed(reply.get("value"))
            else:
                kind, message = reply.get("error", ("RpcError", "?"))
                waiter.fail(RpcFault(kind, message))

    def call(self, dst: Host, port: int, method: str,
             args: Optional[dict] = None
             ) -> Generator[Event, Any, Any]:
        """``value = yield from client.call(node_host, 5300, "lookup", ...)``

        Retries up to ``policy.retries`` times on timeout — pacing the
        retries by the policy's backoff schedule and charging its
        budget, if any — then raises :class:`RpcTimeout`.  Each retry
        is a fresh request id, so a late reply to an earlier attempt
        is ignored.
        """
        self._ensure_open()
        self.calls += 1
        args = args if args is not None else {}
        # Measured once (and the constant method/src part only on the
        # first call per method); every retry re-sends a same-sized
        # envelope (the fresh id is an int like the last one).
        size = (_request_base(self._size_cache, method, self.host.name)
                + encoded_size(args))
        pool = self.deadline_pool
        policy = self.policy
        last_error: Optional[Exception] = None
        for attempt in range(1 + self.retries):
            if attempt:
                budget = policy.budget
                if budget is not None and not budget.spend(self.sim.now):
                    self.budget_denied += 1
                    break
                delay = policy.retry_delay(attempt, self._jitter)
                if delay > 0.0:
                    yield self.sim.timeout(delay)
                # The socket may have died *during* this call (a crash
                # + restart while the previous attempt's deadline ran):
                # re-check per attempt, or send_to below raises against
                # a dead socket the client could have replaced.
                self._ensure_open()
            request_id = next(_request_ids)
            request = {"id": request_id, "method": method,
                       "args": args, "src": self.host.name}
            waiter = self.sim.event()
            self._pending[request_id] = waiter
            try:
                self._socket.send_to(dst, port, request, size=size)
            except Exception:
                # A synchronous send failure (socket closed by a crash
                # or HostDown) means no reply can ever match this
                # waiter; leaving it registered would strand it in
                # _pending until the next _ensure_open sweep fails an
                # event nobody waits on.
                self._pending.pop(request_id, None)
                raise
            if attempt:
                # Counted only once the datagram is actually away: a
                # dead socket used to be charged as a sent retry.
                self.retries_sent += 1
                if self.retry_log is not None:
                    self.retry_log.append(self.sim.now)
            if pool is not None:
                guard = pool.add(waiter)
            else:
                guard = _arm_deadline(self.sim, waiter, self.timeout)
            try:
                value = yield waiter
            except _DeadlineExpired:
                self._pending.pop(request_id, None)
                last_error = RpcTimeout(
                    "%s to %s:%d timed out" % (method, dst.name, port))
                continue
            except RpcFault:
                self.faults += 1
                raise
            finally:
                # A successful call leaves nothing pending behind.
                if pool is not None:
                    pool.cancel(guard)
                else:
                    guard.cancel()
            return value
        self.timeouts_hit += 1
        raise last_error

    def close(self) -> None:
        self._socket.close()
