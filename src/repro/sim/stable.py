"""Simulated stable storage (per-host disks that survive crashes).

Host crashes destroy every address space on the machine but not its
disk.  Daemons that must reconstruct state after a reboot — Globe
Object Servers (§4) and GLS directory nodes (§7: "persistent storage of
the state of a directory node") — write through a :class:`StableStore`
namespace on their host's :class:`DiskStore`.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

__all__ = ["DiskStore", "StableStore", "DISK_WRITE_LATENCY",
           "DISK_READ_LATENCY"]

#: Simulated latency of a stable write / read, seconds.
DISK_WRITE_LATENCY = 0.005
DISK_READ_LATENCY = 0.002


class DiskStore:
    """Stable storage shared by all hosts of a world, keyed per host."""

    def __init__(self):
        self._disks: Dict[str, Dict[str, dict]] = {}

    def disk(self, host_name: str) -> Dict[str, dict]:
        return self._disks.setdefault(host_name, {})

    def wipe(self, host_name: str) -> None:
        """Destroy a host's disk (models media loss, used in tests)."""
        self._disks.pop(host_name, None)


class StableStore:
    """One daemon's namespaced view of its host's disk."""

    def __init__(self, world, store: DiskStore, host_name: str,
                 namespace: str):
        self.world = world
        self.store = store
        self.host_name = host_name
        self.namespace = namespace
        self.writes = 0
        self.reads = 0

    def _key(self, key: str) -> str:
        return "%s/%s" % (self.namespace, key)

    def save(self, key: str, record: dict) -> Generator:
        """Write one record through to disk (simulated latency)."""
        yield self.world.sim.timeout(DISK_WRITE_LATENCY)
        self.store.disk(self.host_name)[self._key(key)] = dict(record)
        self.writes += 1

    def load(self, key: str) -> Generator[Any, Any, Optional[dict]]:
        yield self.world.sim.timeout(DISK_READ_LATENCY)
        self.reads += 1
        record = self.store.disk(self.host_name).get(self._key(key))
        return dict(record) if record is not None else None

    def load_all(self) -> Generator[Any, Any, Dict[str, dict]]:
        """All records in this namespace."""
        yield self.world.sim.timeout(DISK_READ_LATENCY)
        self.reads += 1
        prefix = "%s/" % self.namespace
        disk = self.store.disk(self.host_name)
        return {key[len(prefix):]: dict(value)
                for key, value in disk.items() if key.startswith(prefix)}

    def remove(self, key: str) -> Generator:
        yield self.world.sim.timeout(DISK_WRITE_LATENCY)
        self.store.disk(self.host_name).pop(self._key(key), None)
        self.writes += 1
