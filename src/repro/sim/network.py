"""Wide-area network model: latency, bandwidth, traffic accounting.

The network charges each message a delay of

    one_way_latency(separation) + size / bandwidth(separation) + jitter

where *separation* is the level of the lowest common ancestor of the
two endpoints' sites (:class:`repro.sim.topology.Level`).  This is the
store-and-forward abstraction: no packet-level congestion, but the
latency/bandwidth tiering reproduces the wide-area cost structure the
GDN paper's design arguments rest on (replicas near clients save both
time and wide-area bandwidth, §3.1).

Traffic is metered per separation level, so experiments can report
"wide-area traffic" (bytes whose path crossed a REGION or WORLD
boundary) exactly the way the paper's motivating study does.

Failures: hosts can be marked down (messages to them are lost),
domains can be partitioned (messages crossing the domain boundary are
lost), and lossy levels can drop a deterministic pseudo-random fraction
of datagrams.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from .kernel import BatchTimeout, Simulator, Timeout
from .topology import Domain, Level, Topology

__all__ = ["LinkParameters", "TrafficMeter", "Network", "NetworkError"]


class NetworkError(Exception):
    """Raised for malformed network operations."""


#: Default one-way latency per separation level, seconds.
DEFAULT_LATENCY = {
    Level.SITE: 0.0003,     # same campus LAN
    Level.CITY: 0.002,      # metro
    Level.COUNTRY: 0.010,   # national backbone
    Level.REGION: 0.040,    # continental
    Level.WORLD: 0.150,     # intercontinental
}

#: Default bottleneck bandwidth per separation level, bytes/second.
DEFAULT_BANDWIDTH = {
    Level.SITE: 100e6,
    Level.CITY: 50e6,
    Level.COUNTRY: 20e6,
    Level.REGION: 5e6,
    Level.WORLD: 1.5e6,
}


class LinkParameters:
    """Latency/bandwidth/loss per separation level.

    ``loss`` applies only to unreliable (datagram) traffic; reliable
    connections model retransmission as extra delay instead.
    """

    def __init__(self,
                 latency: Optional[Dict[Level, float]] = None,
                 bandwidth: Optional[Dict[Level, float]] = None,
                 loss: Optional[Dict[Level, float]] = None,
                 jitter_fraction: float = 0.0):
        self.latency = dict(DEFAULT_LATENCY)
        if latency:
            self.latency.update(latency)
        self.bandwidth = dict(DEFAULT_BANDWIDTH)
        if bandwidth:
            self.bandwidth.update(bandwidth)
        self.loss = {level: 0.0 for level in Level}
        if loss:
            self.loss.update(loss)
        if not 0.0 <= jitter_fraction < 1.0:
            raise NetworkError("jitter_fraction must be in [0, 1)")
        self.jitter_fraction = jitter_fraction


class TrafficMeter:
    """Counts bytes and messages by separation level.

    The hot ledgers stay plain dicts (``record`` runs once per
    message); :meth:`bind_metrics` additionally exposes them as
    function-backed per-:class:`Level` counters in a
    :class:`~repro.analysis.telemetry.MetricsRegistry`, which is what
    makes phase-scoped traffic windows possible
    (:meth:`wide_area_delta`).
    """

    def __init__(self):
        self.bytes_by_level: Dict[Level, int] = {lvl: 0 for lvl in Level}
        self.messages_by_level: Dict[Level, int] = {lvl: 0 for lvl in Level}
        self.dropped_messages = 0
        self._metrics_prefix: str = "net"

    def record(self, level: Level, size: int) -> None:
        self.bytes_by_level[level] += size
        self.messages_by_level[level] += 1

    def record_drop(self) -> None:
        self.dropped_messages += 1

    def bind_metrics(self, registry, prefix: str = "net") -> None:
        """Register per-level byte/message counters as a view over the
        ledgers — ``net.bytes.WORLD``, ``net.messages.SITE``, ... plus
        ``net.dropped``.  Zero cost on the delivery path."""
        self._metrics_prefix = prefix
        for level in Level:
            registry.counter(
                "%s.bytes.%s" % (prefix, level.name),
                fn=lambda ledger=self.bytes_by_level, key=level:
                    ledger[key])
            registry.counter(
                "%s.messages.%s" % (prefix, level.name),
                fn=lambda ledger=self.messages_by_level, key=level:
                    ledger[key])
        registry.counter(prefix + ".dropped",
                         fn=lambda: self.dropped_messages)

    def wide_area_delta(self, window, min_level: Level = Level.REGION) -> int:
        """Bytes this meter carried across ``min_level``-or-wider
        boundaries inside a :class:`PhaseWindow` (requires
        :meth:`bind_metrics` on the window's registry)."""
        return sum(window.delta("%s.bytes.%s"
                                % (self._metrics_prefix, level.name))
                   for level in Level if level >= min_level)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_level.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_level.values())

    def wide_area_bytes(self, min_level: Level = Level.REGION) -> int:
        """Bytes carried across ``min_level`` or wider boundaries."""
        return sum(size for level, size in self.bytes_by_level.items()
                   if level >= min_level)

    def reset(self) -> None:
        # In place: bound registry counters hold views of these dicts.
        for level in Level:
            self.bytes_by_level[level] = 0
            self.messages_by_level[level] = 0
        self.dropped_messages = 0

    def snapshot(self) -> Dict[str, int]:
        return {level.name: self.bytes_by_level[level] for level in Level}


class Network:
    """Delivers messages between hosts over the topology.

    The network does not know about ports or connections — that is the
    transport layer's job (:mod:`repro.sim.transport`).  It provides
    ``delay`` computation and a ``deliver`` primitive invoking a
    callback on the destination host after the computed delay, or never
    (drop) if a failure stands in the way.
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 params: Optional[LinkParameters] = None, seed: int = 0):
        self.sim = sim
        self.topology = topology
        self.params = params or LinkParameters()
        self.meter = TrafficMeter()
        self.rng = random.Random(seed)
        self._down_hosts: set = set()
        self._partitioned: set = set()
        # The domain tree is immutable once hosts start talking, and
        # every message needs the separation of its endpoint sites —
        # memoise the LCA walk per site pair (id-keyed: Domains are
        # unique objects owned by the topology).
        self._separation_cache: Dict[tuple, Level] = {}
        # Partition membership per site — which partitioned domains
        # contain it — is equally walk-derived and changes only when
        # the partition set does, so it is memoised per (site,
        # partition-set) and invalidated wholesale on partition/heal
        # (rare control-plane events; the per-message check must not
        # re-walk ancestors() for every partitioned domain).
        self._partition_cache: Dict[int, frozenset] = {}
        #: burst telemetry: deliver_burst calls / messages they carried.
        self.burst_calls = 0
        self.burst_messages = 0

    # -- failure state -------------------------------------------------

    def set_host_down(self, host_name: str, down: bool = True) -> None:
        if down:
            self._down_hosts.add(host_name)
        else:
            self._down_hosts.discard(host_name)

    def host_is_down(self, host_name: str) -> bool:
        return host_name in self._down_hosts

    def partition_domain(self, domain: Domain) -> None:
        """Isolate ``domain``: traffic crossing its boundary is lost."""
        self._partitioned.add(domain)
        self._partition_cache.clear()

    def heal_domain(self, domain: Domain) -> None:
        self._partitioned.discard(domain)
        self._partition_cache.clear()

    def _partition_membership(self, site: Domain) -> frozenset:
        """The partitioned domains containing ``site`` (cached)."""
        key = id(site)
        membership = self._partition_cache.get(key)
        if membership is None:
            ancestors = set(site.ancestors())
            membership = frozenset(domain for domain in self._partitioned
                                   if domain in ancestors)
            self._partition_cache[key] = membership
        return membership

    def _crosses_partition(self, site_a: Domain, site_b: Domain) -> bool:
        # A message crosses a partition boundary iff some partitioned
        # domain contains exactly one endpoint — i.e. the endpoints'
        # partition memberships differ.  One cached set compare per
        # message instead of one ancestor walk per partitioned domain.
        if site_a is site_b:
            return False
        return (self._partition_membership(site_a)
                != self._partition_membership(site_b))

    # -- cost model ----------------------------------------------------

    def separation(self, site_a: Domain, site_b: Domain) -> Level:
        key = (id(site_a), id(site_b))
        level = self._separation_cache.get(key)
        if level is None:
            level = Topology.separation(site_a, site_b)
            self._separation_cache[key] = level
        return level

    def latency(self, site_a: Domain, site_b: Domain) -> float:
        """One-way propagation latency between two sites."""
        return self.params.latency[self.separation(site_a, site_b)]

    def transfer_delay(self, site_a: Domain, site_b: Domain,
                       size: int) -> float:
        """One-way delay for a ``size``-byte message, incl. serialisation."""
        level = self.separation(site_a, site_b)
        delay = self.params.latency[level] + size / self.params.bandwidth[level]
        if self.params.jitter_fraction:
            delay *= 1.0 + self.rng.uniform(0, self.params.jitter_fraction)
        return delay

    def rtt(self, site_a: Domain, site_b: Domain) -> float:
        return 2.0 * self.latency(site_a, site_b)

    # -- delivery ------------------------------------------------------

    def deliver(self, src_site: Domain, dst_site: Domain, dst_host: str,
                size: int, deliver_fn: Callable,
                reliable: bool = False,
                extra_delay: float = 0.0,
                at: Optional[float] = None) -> bool:
        """Schedule ``deliver_fn`` after the computed delay.

        ``deliver_fn`` is installed directly as the arrival timer's
        callback, so it is invoked with one argument — the fired timer
        event, which callers ignore.  (Wrapping a zero-argument
        callable in a lambda here would cost an allocation and an
        extra call per message on the hottest path in the repo.)

        Returns ``True`` if the message was scheduled, ``False`` if it
        was dropped (destination down, partition, or random loss).
        Bytes are metered when the message is *sent*, matching how a
        real sender consumes upstream bandwidth even for lost traffic.

        ``at`` lets a caller that already computed the absolute
        arrival instant (via :meth:`transfer_delay` + FIFO pacing on a
        connection) schedule delivery at exactly that timestamp;
        otherwise an independent delay computation here — a second
        jitter draw, or even one float-rounding ULP — could reorder
        messages the caller carefully sequenced.
        """
        # Inline separation(): one dict probe per message in the common
        # (warm-cache) case.
        key = (id(src_site), id(dst_site))
        level = self._separation_cache.get(key)
        if level is None:
            level = Topology.separation(src_site, dst_site)
            self._separation_cache[key] = level
        self.meter.record(level, size)
        if dst_host in self._down_hosts:
            self.meter.record_drop()
            return False
        if self._partitioned and self._crosses_partition(src_site, dst_site):
            self.meter.record_drop()
            return False
        params = self.params
        loss = params.loss[level]
        if not reliable and loss > 0.0 and self.rng.random() < loss:
            self.meter.record_drop()
            return False
        if at is not None:
            timer = Timeout(self.sim, 0.0, at=at)
        else:
            # Inline transfer_delay: the level is already in hand.
            delay = params.latency[level] + size / params.bandwidth[level]
            if params.jitter_fraction:
                delay *= 1.0 + self.rng.uniform(0, params.jitter_fraction)
            timer = Timeout(self.sim, delay + extra_delay)
        timer.add_callback(deliver_fn)
        return True

    def deliver_burst(self, src_site: Domain, dst_site: Domain,
                      dst_host: str, messages,
                      reliable: bool = False,
                      extra_delay: float = 0.0) -> int:
        """Schedule a same-site-pair burst of datagrams under **one**
        kernel timer.

        ``messages`` is a sequence of ``(size, deliver_fn)`` pairs, in
        send order.  Semantically this is exactly ``n`` calls to
        :meth:`deliver`: every message is metered, checked against
        down-host / partition / loss individually, draws its loss and
        jitter randomness in the same order a scalar loop would, and
        arrives at the same ``(time, seq)`` position — the sequence
        numbers are reserved per surviving message in send order, so a
        pinning test comparing the two paths sees byte-identical
        arrival ordering.  The only difference is cost: the burst
        occupies one timer-heap slot (a :class:`BatchTimeout`) instead
        of n, and same-instant arrivals are consumed inline by one
        kernel event.

        Returns the number of messages scheduled (not dropped).
        """
        key = (id(src_site), id(dst_site))
        level = self._separation_cache.get(key)
        if level is None:
            level = Topology.separation(src_site, dst_site)
            self._separation_cache[key] = level
        meter = self.meter
        params = self.params
        rng = self.rng
        sim = self.sim
        loss = params.loss[level]
        latency = params.latency[level]
        bandwidth = params.bandwidth[level]
        jitter = params.jitter_fraction
        unreliable = not reliable and loss > 0.0
        blocked = (dst_host in self._down_hosts
                   or (self._partitioned
                       and self._crosses_partition(src_site, dst_site)))
        now = sim.now
        entries = []
        for size, deliver_fn in messages:
            meter.record(level, size)
            if blocked:
                meter.record_drop()
                continue
            if unreliable and rng.random() < loss:
                meter.record_drop()
                continue
            delay = latency + size / bandwidth
            if jitter:
                delay *= 1.0 + rng.uniform(0, jitter)
            # `delay + extra_delay` first, then `now +`: the float
            # rounding a scalar `deliver` gets from Timeout(delay +
            # extra_delay), reproduced exactly.
            entries.append([now + (delay + extra_delay),
                            sim.reserve_seq(), deliver_fn])
        self.burst_calls += 1
        self.burst_messages += len(entries)
        if not entries:
            return 0
        scheduled = len(entries)
        # Varied sizes (or jitter) make arrival order differ from send
        # order; BatchTimeout wants (at, seq) order.  Seqs are unique,
        # so plain list comparison never reaches the callbacks.
        entries.sort()
        BatchTimeout(sim, entries)
        return scheduled
