"""Pooled guard deadlines: many pending deadlines, one armed timer.

Every guarded operation in the repo — a UDP RPC attempt, a channel
call with a timeout, a TCP connect — used to arm its own kernel
:class:`~repro.sim.kernel.Timeout` and cancel it the moment the
guarded operation completed.  That is one heap push plus lazy-cancel
churn per call, per retry, per connect, on paths where the deadline
almost never fires.  This module replaces the per-call timers with
**deadline pools**: a pool tracks any number of pending deadlines but
keeps at most *one* timer armed in the kernel heap — re-armed only
when the earliest pending deadline changes.

Two pool shapes, matching the structure of the clients:

* :class:`FifoDeadlinePool` — for clients whose every deadline uses
  one **fixed delay** (:class:`~repro.sim.rpc.UdpRpcClient`: a single
  retry ``timeout`` per client).  Since simulation time is monotonic,
  such deadlines expire in FIFO order, so the pool is a plain
  :class:`collections.deque`: O(1) add, O(1) cancel, zero heap
  traffic per call/retry.
* :class:`OrderedDeadlinePool` — for **mixed** delays
  (:meth:`RpcChannel.call(timeout=...) <repro.sim.rpc.RpcChannel
  .call>` and :meth:`Host.connect <repro.sim.transport.Host.connect>`
  guards).  A small internal heap orders the pool's own entries; the
  kernel still sees one timer.  One shared pool per simulator
  (:func:`shared_pool`) serves all mixed-deadline guards.

**Pooling is invisible to event ordering.**  Each ``add`` reserves a
global sequence number (:meth:`~repro.sim.kernel.Simulator
.reserve_seq`) at exactly the program point where the old code
created its per-call ``Timeout`` — so every other event in the run
draws exactly the sequence numbers it always did — and the pool arms
its kernel timer with ``timeout_at(when, seq=reserved)``, so an
expiry fires at exactly the ``(time, seq)`` position the dedicated
per-call timer would have occupied.  When several deadlines share one
instant, the pool expires exactly *one* entry per timer firing and
re-arms at the next entry's reserved ``(time, seq)``, preserving even
same-instant interleavings with unrelated events.  Trace-replay tests
pin byte-identical ``LoadStats`` against the per-call-timer
implementation (``tests/sim/test_deadlines.py``).

**Cancellation is lazy, like the kernel's.**  ``cancel`` marks the
entry dead in O(1); dead entries are discarded when they surface at
the head of the pool.  A timer armed for a since-cancelled deadline
is left to fire (firing is cheap and consumes no sequence numbers);
its firing discards the dead prefix and re-arms for the earliest live
deadline, so in the steady state of a fast RPC client the kernel arms
roughly one timer per *timeout interval*, not one per call.  Expiry
of a dead or already-answered waiter passes silently — the pre-defuse
discipline of the old per-call guards is preserved by the expiry
callbacks themselves (see :func:`repro.sim.rpc._expire_waiter`).

Telemetry follows the repo's pull-only discipline: plain-int counters
on the hot path, exposed as function-backed instruments via
``bind_metrics`` (pool depth, entries armed/cancelled/expired, and
kernel re-arm counts — the ``timer_arms``/``armed`` ratio is the
pooling win).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

from .kernel import SimulationError, Simulator, Timeout

__all__ = [
    "FifoDeadlinePool",
    "OrderedDeadlinePool",
    "shared_pool",
]


def _invoke(callback: Callable[[], None]) -> None:
    """Default expiry action: the payload is a zero-arg callback."""
    callback()


# A pending deadline is a plain 4-slot list — ``[when, seq, payload,
# dead]`` — mirroring the kernel's own heap-entry idiom: on the hot
# guarded-call path a list literal beats a class instantiation (no
# ``__init__`` frame), and callers only ever treat the entry as an
# opaque handle to pass back to :meth:`_DeadlinePool.cancel`.
_WHEN, _SEQ, _PAYLOAD, _DEAD = range(4)


class _DeadlinePool:
    """Shared machinery: the single armed kernel timer + accounting.

    Subclasses own the entry container and implement ``add`` plus the
    head management in :meth:`_on_fire`.
    """

    __slots__ = ("sim", "_expire", "_reserve", "_timer", "_armed_when",
                 "_armed_seq", "_live", "armed_total", "cancelled_total",
                 "expired_total", "timer_arms", "timer_shelved")

    def __init__(self, sim: Simulator,
                 expire: Optional[Callable[[Any], None]] = None):
        self.sim = sim
        #: called with the entry payload when a live deadline expires.
        self._expire = expire if expire is not None else _invoke
        self._reserve = sim.reserve_seq  # bound once: one call per add
        self._timer: Optional[Timeout] = None
        self._armed_when = 0.0
        self._armed_seq = -1
        self._live = 0
        self.armed_total = 0       # entries ever added
        self.cancelled_total = 0   # entries withdrawn before expiry
        self.expired_total = 0     # entries that fired
        self.timer_arms = 0        # kernel timers (re-)armed
        self.timer_shelved = 0     # armed timers superseded by an
        #                            earlier deadline (ordered pool)

    # -- accounting ----------------------------------------------------

    @property
    def live(self) -> int:
        """Deadlines currently pending (armed and not yet resolved)."""
        return self._live

    def bind_metrics(self, registry, prefix: str) -> None:
        """Expose the pool's plain-int accounting as function-backed
        instruments (the add/cancel hot path never touches one)."""
        registry.counter(prefix + ".armed", fn=lambda: self.armed_total)
        registry.counter(prefix + ".cancelled",
                         fn=lambda: self.cancelled_total)
        registry.counter(prefix + ".expired", fn=lambda: self.expired_total)
        registry.counter(prefix + ".timer_arms", fn=lambda: self.timer_arms)
        registry.counter(prefix + ".timer_shelved",
                         fn=lambda: self.timer_shelved)
        registry.gauge(prefix + ".depth", fn=lambda: self._live)

    # -- the client-facing O(1) cancel --------------------------------

    def cancel(self, entry: list) -> bool:
        """Withdraw a pending deadline; True if it was still pending.

        O(1): the entry is only marked; the container discards it when
        it surfaces.  Cancelling an expired (or already cancelled)
        entry is a harmless no-op, mirroring :meth:`Timeout.cancel`.
        """
        if entry[_DEAD]:
            return False
        entry[_DEAD] = True
        self._live -= 1
        self.cancelled_total += 1
        return True

    # -- kernel timer management ---------------------------------------

    def _arm(self, entry: list) -> None:
        """Arm the kernel timer at the entry's reserved (time, seq)."""
        self.timer_arms += 1
        self._armed_when = entry[_WHEN]
        self._armed_seq = entry[_SEQ]
        timer = self.sim.timeout_at(entry[_WHEN], seq=entry[_SEQ])
        timer.add_callback(self._on_fire)
        self._timer = timer

    def _expire_head(self, entry: list) -> None:
        entry[_DEAD] = True
        self._live -= 1
        self.expired_total += 1
        self._expire(entry[_PAYLOAD])

    def _on_fire(self, _event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class FifoDeadlinePool(_DeadlinePool):
    """Deadline pool for one fixed delay: a deque, no heap anywhere.

    All entries share ``delay``, so with monotonic simulation time
    they expire in the order they were added — the pool is a FIFO
    queue and the earliest pending deadline is always the head.  This
    is the shape of :class:`~repro.sim.rpc.UdpRpcClient`: one retry
    timeout per client, one guard per attempt.
    """

    __slots__ = ("delay", "_entries")

    def __init__(self, sim: Simulator, delay: float,
                 expire: Optional[Callable[[Any], None]] = None):
        if delay < 0:
            # Zero is degenerate but legal (guards expiring at the
            # instant they are armed — FIFO still holds); negative
            # mirrors sim.timeout(delay).
            raise SimulationError("negative delay: %r" % (delay,))
        super().__init__(sim, expire)
        self.delay = delay
        self._entries: deque = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, payload: Any) -> list:
        """Register a deadline ``delay`` from now; returns the handle
        to :meth:`cancel` when the guarded operation completes."""
        entry = [self.sim.now + self.delay, self._reserve(), payload, False]
        self._entries.append(entry)
        self._live += 1
        self.armed_total += 1
        if self._timer is None:
            self._arm(entry)
        return entry

    def _on_fire(self, _event) -> None:
        self._timer = None
        entries = self._entries
        while entries and entries[0][_DEAD]:
            entries.popleft()
        if not entries:
            return
        head = entries[0]
        if head[_SEQ] == self._armed_seq:
            # The timer fired for the current live head: expire exactly
            # this one entry, then re-arm for the next — possibly at
            # the same instant, where the reserved seq slots the next
            # expiry into the run order exactly where its own timer
            # would have been.
            entries.popleft()
            self._expire_head(head)
            while entries and entries[0][_DEAD]:
                entries.popleft()
        if entries:
            self._arm(entries[0])


class OrderedDeadlinePool(_DeadlinePool):
    """Deadline pool for mixed delays: a small internal heap.

    Entries carry arbitrary delays, so the pool orders them in its own
    ``(when, seq)`` heap; the kernel sees one *active* timer for the
    earliest deadline.  When a new deadline undercuts the active one,
    the superseded timer is not cancelled but **shelved** — left
    pending in the kernel heap at its reserved ``(time, seq)`` — and
    reclaimed verbatim if its deadline becomes the earliest again
    (cancelling would blank its heap slot in place, and a later
    re-arm at the same reserved position would collide with the
    blanked entry).  An orphaned shelved timer fires as a no-op.
    Mixed-deadline guards are rare next to the UDP fast path (channel
    calls with explicit timeouts, TCP connects), so both the pool
    heap and the shelf stay small.
    """

    __slots__ = ("_heap", "_shelf")

    def __init__(self, sim: Simulator,
                 expire: Optional[Callable[[Any], None]] = None):
        super().__init__(sim, expire)
        self._heap: List[list] = []
        self._shelf: dict = {}  # reserved seq -> superseded armed Timeout

    def __len__(self) -> int:
        return len(self._heap)

    def add(self, payload: Any, delay: float) -> list:
        """Register a deadline ``delay`` from now; returns the handle
        to :meth:`cancel`.  For the default pool-level expiry action,
        ``payload`` is a zero-arg callback."""
        if delay < 0:
            # Reject before touching any state: a stranded past-dated
            # entry would poison the (simulator-wide) pool and crash
            # the next firing.  Same surface as sim.timeout(delay).
            raise SimulationError("negative delay: %r" % (delay,))
        when = self.sim.now + delay
        entry = [when, self._reserve(), payload, False]
        heappush(self._heap, entry)
        self._live += 1
        self.armed_total += 1
        timer = self._timer
        if timer is None:
            self._arm(entry)
        elif when < self._armed_when:
            # The new deadline undercuts the armed one (a tie keeps
            # the armed timer: the new entry's reserved seq is
            # larger): shelve the superseded timer and arm the new
            # earliest — the only case where an add touches the
            # kernel heap.
            self._shelf[self._armed_seq] = timer
            self.timer_shelved += 1
            self._arm(entry)
        return entry

    def _arm(self, entry: list) -> None:
        # Reclaim a shelved timer when it is armed for exactly the
        # deadline it was originally created for.
        timer = self._shelf.pop(entry[_SEQ], None)
        if timer is not None:
            self._armed_when = entry[_WHEN]
            self._armed_seq = entry[_SEQ]
            self._timer = timer
            return
        _DeadlinePool._arm(self, entry)

    def _on_fire(self, event) -> None:
        if event is not self._timer:
            # An orphaned shelved timer (its deadline passed while a
            # shorter one was armed and its pool entry died): drop it
            # from the shelf and ignore the firing.
            for seq, timer in self._shelf.items():
                if timer is event:
                    del self._shelf[seq]
                    break
            return
        self._timer = None
        heap = self._heap
        while heap and heap[0][_DEAD]:
            heappop(heap)
        if not heap:
            return
        head = heap[0]
        if head[_SEQ] == self._armed_seq:
            heappop(heap)
            self._expire_head(head)
            while heap and heap[0][_DEAD]:
                heappop(heap)
        if heap:
            self._arm(heap[0])


def shared_pool(sim: Simulator) -> OrderedDeadlinePool:
    """The simulator-wide mixed-deadline pool, created on first use.

    All mixed-delay guards in a world (channel call timeouts, connect
    guards) share one :class:`OrderedDeadlinePool`, so the whole
    simulator keeps a single armed guard timer for them.  The pool is
    stashed on the simulator instance; :class:`~repro.sim.world.World`
    binds its metrics as ``kernel.deadline_pool.*``.
    """
    pool = getattr(sim, "_shared_deadline_pool", None)
    if pool is None:
        pool = OrderedDeadlinePool(sim)
        sim._shared_deadline_pool = pool
    return pool
