"""Discrete-event simulation kernel.

Everything in this reproduction runs on top of this kernel: hosts,
protocol daemons, replication subobjects, DNS servers, and clients are
all *processes* — Python generators that ``yield`` :class:`Event`
instances and are resumed when those events fire.

The design follows the classic process-interaction style (as in SimPy),
but is deliberately small and fully deterministic:

* Events fire in ``(time, sequence-number)`` order; two events scheduled
  for the same instant fire in the order they were scheduled.
* No wall-clock time or OS randomness is consulted anywhere.  All
  stochastic behaviour in higher layers draws from seeded
  ``random.Random`` instances owned by the simulation world.

Because every RPC, retry and lease in the reproduction runs through
this loop, the kernel is the hottest code in the repo and is tuned
accordingly:

* The scheduler is **two queues**: a FIFO *run queue*
  (:class:`collections.deque`) for events that fire at the current
  instant — every ``Event.succeed``/``fail``, ``Store`` hand-off and
  RPC completion — and a timer *heap* for events with a real delay.
  A zero-delay cascade costs an O(1) append/popleft per event instead
  of an O(log n) ``heappush``+``heappop`` against the timer heap.
  The two queues are merged by the global sequence number when a
  timer ties the current instant, so the documented ``(time, seq)``
  semantics are preserved exactly (see :class:`Simulator`).
* ``Event``/``Timeout``/``Process`` (and the ``Store``/``Resource``
  primitives) declare ``__slots__`` — no per-instance ``__dict__`` on
  the millions of short-lived objects a large run creates.
* ``Store`` and ``Resource`` keep their FIFO queues in
  :class:`collections.deque`, so serving a waiter is O(1) instead of
  the O(n) ``list.pop(0)``; a ``put`` with a parked getter hands the
  item straight to it (no queue round-trip).
* Telemetry is pull-only: the kernel keeps plain ``int`` counters
  (events processed, timers scheduled/cancelled) and
  :meth:`Simulator.bind_metrics` exposes them as function-backed
  instruments in a :class:`~repro.analysis.telemetry.MetricsRegistry`
  — the hot loop never touches an instrument object.
* Timers are **cancellable**: :meth:`Timeout.cancel` withdraws a
  pending timer using lazy heap invalidation — the heap entry is
  blanked in place (O(1)) and discarded when it surfaces, and the heap
  is compacted whenever blanked entries outnumber live ones.  Without
  this, every RPC that *succeeds* would strand its guard timer in the
  heap until its deadline passes, bloating ``heapq`` operations and
  forcing ``run()`` to grind through dead timers at the end of a run.
* Guard deadlines are **pooled** on top of this
  (:mod:`repro.sim.deadlines`): the RPC/transport layers track many
  pending deadlines under a single armed kernel timer, reserving a
  sequence number per logical deadline (:meth:`Simulator.reserve_seq`)
  so a pooled expiry fires at exactly the ``(time, seq)`` position a
  dedicated per-call :class:`Timeout` would have occupied.  The hot
  guarded-call path then costs no heap traffic at all.

Typical use::

    sim = Simulator()

    def ping(sim):
        yield sim.timeout(1.0)
        return "pong"

    proc = sim.process(ping(sim))
    sim.run()
    assert proc.value == "pong"
    assert sim.now == 1.0
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "BatchTimeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Store",
    "Resource",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; at some point it is *triggered* either
    successfully (``succeed``) with a value, or with a failure
    (``fail``) carrying an exception.  Triggering schedules all
    registered callbacks to run at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # A failure that nobody waits on should not pass silently; the
        # simulator surfaces unhandled failures when it processes them.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (even if not yet processed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        if not self._ok:
            raise self._value
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:  # inline `triggered` (hot path)
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if self._value is not _PENDING:  # inline `triggered` (hot path)
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs at the
        current simulation time (via a zero-delay bridge event), which
        keeps `yield already_fired_event` well-defined.
        """
        if self.callbacks is not None:
            self.callbacks.append(callback)
        else:
            bridge = Event(self.sim)
            bridge.add_callback(lambda _e: callback(self))
            if self._ok:
                bridge.succeed(self._value)
            else:
                self._defused = True
                bridge._defused = True
                bridge.fail(self._value)

    def defuse(self) -> None:
        """Mark a failure as handled so the simulator will not re-raise."""
        self._defused = True


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Unlike manually triggered events, a timeout stays *untriggered*
    until the simulator processes it (so composites like ``AnyOf`` see
    pending timers as pending); the stored value is attached when it
    fires.

    A pending timeout can be withdrawn with :meth:`cancel` — the idiom
    for guard timers (RPC deadlines, connect timeouts) that are no
    longer needed once the guarded operation completes.  A cancelled
    timeout never fires and never runs its callbacks.
    """

    __slots__ = ("delay", "_auto_value", "_entry")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 at: Optional[float] = None, seq: Optional[int] = None):
        """Fire ``delay`` from now — or, if ``at`` is given, at exactly
        that absolute instant (use :meth:`Simulator.timeout_at`).

        The ``at`` form exists for schedulers that must hit a
        previously computed timestamp *bit-for-bit*: re-deriving it as
        ``now + delay`` can land one float ULP away and invert the
        (time, sequence) order against another event at the "same"
        instant.

        ``seq`` (see :meth:`Simulator.reserve_seq`) lets a scheduler
        that pools many logical deadlines under few kernel timers fire
        this timer at a previously *reserved* position in the global
        ``(time, seq)`` order, as if it had been armed when the
        sequence number was drawn.
        """
        if at is None:
            if delay < 0:
                raise SimulationError("negative delay: %r" % (delay,))
            at = sim.now + delay
        else:
            delay = at - sim.now
            if delay < 0:
                raise SimulationError(
                    "cannot schedule at %r, before now" % (at,))
        super().__init__(sim)
        self.delay = delay
        self._auto_value = value
        self._entry = sim._enqueue_abs(self, at, seq)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    @property
    def cancelled(self) -> bool:
        return self._entry is None and not self.triggered

    def cancel(self) -> bool:
        """Withdraw a pending timer; returns True if it was withdrawn.

        Cancelling a timeout that already fired (or was already
        cancelled) is a harmless no-op returning False.
        """
        entry = self._entry
        if entry is None or self.triggered:
            return False
        self._entry = None
        self.sim._invalidate(entry)
        return True


class BatchTimeout:
    """One armed kernel timer delivering a whole batch of callbacks.

    The batch form of the deadline-pool idiom: a caller that must
    schedule *n* callbacks — a same-site-pair burst of datagram
    arrivals, typically — reserves one sequence number per callback
    (:meth:`Simulator.reserve_seq`, in scheduling order), sorts the
    ``[at, seq, callback]`` entries by ``(at, seq)``, and hands the
    whole batch here.  Only the head entry occupies the timer heap at
    any moment; each firing consumes every entry that shares the
    fired instant *inline* and re-arms once for the next instant.  A
    burst of n same-instant arrivals therefore costs one heap entry
    and one kernel event instead of n of each.

    Exactness contract: the reserved sequence numbers must form a
    **contiguous block** (no other sequence number may be drawn
    between the first and last reservation).  Then no foreign event
    can occupy a ``(time, seq)`` position strictly between two batch
    entries at the same instant, so consuming them inline back-to-back
    fires every callback at exactly the position a dedicated per-entry
    :class:`Timeout` would have given it.  Entries at later instants
    re-arm through :meth:`Simulator.timeout_at` with their reserved
    sequence number, which preserves their positions exactly.

    A head entry whose instant is *now* is admitted straight to the
    run queue (:meth:`Simulator._enqueue_reserved`) — the same-instant
    vector never touches the heap at all.

    Batch entries are not individually cancellable (network arrivals
    never are); cancel nothing or build per-entry :class:`Timeout`\\ s.
    """

    __slots__ = ("sim", "_entries", "_index")

    def __init__(self, sim: "Simulator", entries: list):
        """``entries``: a list of ``[at, seq, callback]`` lists sorted
        by ``(at, seq)``, with ``seq`` values reserved via
        :meth:`Simulator.reserve_seq` as one contiguous block and every
        ``at`` >= ``sim.now``."""
        self.sim = sim
        self._entries = entries
        self._index = 0
        if entries:
            self._arm()

    @property
    def pending(self) -> int:
        """Entries not yet fired."""
        return len(self._entries) - self._index

    def _arm(self) -> None:
        at, seq, _callback = self._entries[self._index]
        sim = self.sim
        if at <= sim.now:
            # Same-instant head: run-queue admission at the reserved
            # position — no heap traffic for an immediate batch.
            event = Event(sim)
            event._ok = True
            event._value = None
            event.add_callback(self._fire)
            sim._enqueue_reserved(seq, event)
        else:
            timer = Timeout(sim, 0.0, at=at, seq=seq)
            timer.add_callback(self._fire)

    def _fire(self, event: Event) -> None:
        # Consume the head entry, then every later entry sharing the
        # current instant (exact: the reserved block is contiguous, so
        # nothing can be scheduled between them), then re-arm once.
        entries = self._entries
        index = self._index
        now = self.sim.now
        count = len(entries)
        while index < count and entries[index][0] <= now:
            callback = entries[index][2]
            index += 1
            self._index = index
            callback(event)
        if index < count:
            self._arm()


class Process(Event):
    """A running generator; also an event that fires when it finishes.

    The generator must yield :class:`Event` instances.  When a yielded
    event succeeds, the process resumes with the event's value; when it
    fails, the exception is thrown into the generator.  The process
    event itself succeeds with the generator's return value, or fails
    with its uncaught exception.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off at the current instant.
        start = Event(sim)
        start.add_callback(self._resume)
        start.succeed()

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process twice before it handles the first interrupt is allowed
        (both are delivered in order).
        """
        if not self.alive:
            raise SimulationError("cannot interrupt a finished process")
        bridge = Event(self.sim)
        bridge._defused = True
        bridge.add_callback(self._deliver_interrupt)
        bridge.fail(Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process immediately without resuming it.

        Used by failure injection (host crashes): the generator is
        closed, pending waits are abandoned, and the process event
        succeeds with ``None`` so waiters are released.
        """
        if not self.alive:
            return
        self._abandon_wait()
        self._generator.close()
        self.succeed(None)

    def _abandon_wait(self) -> None:
        """Stop watching the awaited event; reap a now-orphaned timer."""
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
            # A timer nobody watches any more (the common case when a
            # host crash kills a sleeping daemon) would sit in the heap
            # until its deadline; withdraw it instead.
            if not waiting.callbacks and type(waiting) is Timeout:
                waiting.cancel()
        self._waiting_on = None

    def _deliver_interrupt(self, bridge: Event) -> None:
        if not self.alive:
            return
        self._abandon_wait()
        self._step(bridge)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event)

    def _step(self, event: Event) -> None:
        if self._value is not _PENDING:  # inline `triggered` (hot path)
            return
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                "process yielded %r, expected an Event" % (target,))
            self._generator.close()
            self.fail(error)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._fired = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("events belong to different simulators")
            event.add_callback(self._on_fire)
        if not self._events:
            self.succeed({})

    def _done(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        self._fired += 1
        if not event._ok:
            # A child failure that was already defused (e.g. a teardown
            # notification to a possibly-dead waiter) stays defused
            # through the composite, so orphaned composites don't crash
            # the simulator; live waiters still receive the exception.
            already_handled = event._defused
            event._defused = True
            self.fail(event._value)
            if already_handled:
                self._defused = True
            return
        if self._done():
            results = {
                ev: ev._value for ev in self._events
                if ev.triggered and ev._ok
            }
            self.succeed(results)


class AnyOf(_Condition):
    """Fires when the first of ``events`` fires."""

    __slots__ = ()

    def _done(self) -> bool:
        return self._fired >= 1


class AllOf(_Condition):
    """Fires when all of ``events`` have fired."""

    __slots__ = ()

    def _done(self) -> bool:
        return self._fired >= len(self._events)


class Store:
    """An unbounded FIFO queue connecting producer and consumer processes.

    ``put`` never blocks; ``get`` returns an event that fires when an
    item is available.  Items are delivered in FIFO order to getters in
    FIFO order, which keeps message channels deterministic.  Both
    queues are deques, so a put/get pair is O(1) however deep the
    backlog grows, and the hand-off is direct: a ``put`` with a parked
    getter succeeds that getter immediately (no re-dispatch loop), a
    ``get`` against a backlog takes the head item straight away.  At
    most one queue is non-empty at any time.
    """

    __slots__ = ("sim", "_items", "_getters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._items: deque = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter._value is _PENDING:  # inline `triggered` (hot)
                getter.succeed(item)
                return
        self._items.append(item)

    def put_inline(self, item: Any) -> None:
        """Hand ``item`` to a parked getter with **no kernel event**.

        Same FIFO semantics as :meth:`put`, but when a getter is
        parked its callbacks run immediately inside the caller's frame
        instead of through a run-queue event.  This is the pooled
        per-datagram hand-off for paths where the producer is *already*
        a kernel callback (a network-arrival timer delivering into a
        socket inbox): the old ``put`` path charged one extra run-queue
        event per datagram only to resume the waiter at the very next
        scheduler step; firing it during the arrival callback keeps the
        observable resume instant (and the waiter's own downstream
        sends, and therefore every send-time RNG draw) at the same
        simulated time while dropping the event entirely.

        Only for producers that tolerate the consumer's continuation
        running re-entrantly under them — the transport delivery
        closures do; general producer processes should keep ``put``.
        A get against the backlog, and a ``put_inline`` with no parked
        getter, behave exactly like :meth:`put`/:meth:`get`.
        """
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter._value is _PENDING:
                # The kernel's processing body, minus the enqueue (and
                # minus the event count: nothing was scheduled).
                getter._ok = True
                getter._value = item
                callbacks = getter.callbacks
                getter.callbacks = None
                for callback in callbacks:
                    callback(getter)
                return
        self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Resource:
    """A counting semaphore for modelling limited server concurrency.

    ``acquire`` returns an event that fires when a slot is free;
    ``release`` frees a slot.  Waiters are served FIFO (from a deque,
    so deep queues — a saturated server — stay O(1) per hand-off).
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters")

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> Event:
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without acquire()")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue
            waiter.succeed()
            return
        self._in_use -= 1


class Simulator:
    """The event loop: a run queue of same-instant events + a timer heap.

    **Two queues, one ordering.**  Triggered events (``succeed`` /
    ``fail`` — everything that fires *now*) go to a FIFO run queue of
    ``(seq, event)`` tuples; :class:`Timeout`\\ s go to a heap of
    ``[time, seq, event]`` entries.  Both draw sequence numbers from
    one global counter, and the scheduler always fires the event with
    the smallest ``(time, seq)`` pair across both queues: run-queue
    entries carry the instant they were enqueued at (which is always
    the current ``now`` — the clock cannot advance past a pending
    run-queue event), so a timer that ties the current instant is
    merged in by comparing sequence numbers.  Two events scheduled for
    the same instant therefore fire in the order they were scheduled,
    exactly as with the previous single-heap scheduler — but a
    zero-delay cascade costs O(1) per event instead of O(log n).

    Heap entries are mutable lists so that a cancelled timer can be
    invalidated *in place* (the event slot is blanked to ``None``)
    without the O(n) cost of removing it from the middle of the heap.
    Blanked entries are discarded when they reach the top; when they
    outnumber live entries the whole heap is compacted in one O(n)
    pass, keeping the amortised cost of a cancellation O(1).  Run-queue
    entries are never cancelled (only pending timers are), so the run
    queue needs no invalidation machinery.  Compaction replaces the
    heap list, so the execution loops re-read ``self._heap`` every
    iteration; the run queue is only ever mutated in place.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._ready: deque = deque()
        self._sequence = itertools.count()
        self._event_count = 0
        self._stale = 0
        self._timers_scheduled = 0
        self._timers_cancelled = 0
        self.peak_heap_size = 0
        self.peak_ready_size = 0

    # -- scheduling ---------------------------------------------------

    def _enqueue(self, event: Event) -> None:
        # The zero-delay fast path: every succeed()/fail() lands here.
        ready = self._ready
        ready.append((next(self._sequence), event))
        if len(ready) > self.peak_ready_size:
            self.peak_ready_size = len(ready)

    def _enqueue_abs(self, event: Event, when: float,
                     seq: Optional[int] = None) -> list:
        # All Timeouts come through here; triggered events via _enqueue.
        self._timers_scheduled += 1
        entry = [when, next(self._sequence) if seq is None else seq, event]
        heappush(self._heap, entry)
        if len(self._heap) > self.peak_heap_size:
            self.peak_heap_size = len(self._heap)
        return entry

    def _enqueue_reserved(self, seq: int, event: Event) -> None:
        """Admit a pre-triggered event to the run queue at a *reserved*
        sequence position (:meth:`reserve_seq`).

        The run queue is kept in ascending sequence order by
        construction (every ``_enqueue`` draws a fresh, larger
        number), so a reserved admission is only legal while the
        reserved number is still newer than everything queued — i.e.
        immediately after reserving, before any other event is
        enqueued.  :class:`BatchTimeout` uses this to land a
        same-instant batch head in the run queue without touching the
        timer heap.  ``event`` must already carry its outcome
        (``_ok``/``_value`` set); it is processed like any triggered
        event.
        """
        ready = self._ready
        if ready and ready[-1][0] >= seq:
            raise SimulationError(
                "reserved seq %d is older than the run-queue tail" % seq)
        ready.append((seq, event))
        if len(ready) > self.peak_ready_size:
            self.peak_ready_size = len(ready)

    def reserve_seq(self) -> int:
        """Draw the next global sequence number without scheduling.

        For deadline-pooling schedulers (:mod:`repro.sim.deadlines`):
        a pool reserves a sequence number per logical deadline at the
        instant the deadline is created, then arms *one* kernel timer
        at a time via ``timeout_at(when, seq=reserved)``.  Each pooled
        expiry therefore fires at exactly the ``(time, seq)`` position
        a dedicated per-deadline :class:`Timeout` would have occupied,
        so pooling is invisible to event ordering.  A reserved number
        must be used at most once, and only for an instant that has
        not already been passed in ``(time, seq)`` order.
        """
        return next(self._sequence)

    def _invalidate(self, entry: list) -> None:
        """Lazy removal: blank the entry; compact when mostly garbage."""
        entry[2] = None
        self._timers_cancelled += 1
        self._stale += 1
        if self._stale * 2 >= len(self._heap):
            self._heap = [e for e in self._heap if e[2] is not None]
            heapify(self._heap)
            self._stale = 0

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None,
                   seq: Optional[int] = None) -> Timeout:
        """An event firing at the absolute instant ``when`` (>= now).

        Unlike ``timeout(when - now)``, the heap entry carries ``when``
        verbatim, so two schedulers that agree on a timestamp are
        ordered purely by scheduling sequence — no float-rounding
        inversions.  ``seq`` optionally fires the timer at a reserved
        position in the global order (:meth:`reserve_seq`).
        """
        return Timeout(self, 0.0, value, at=when, seq=seq)

    def event(self) -> Event:
        """A fresh untriggered event (trigger it manually)."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator)

    def store(self) -> Store:
        return Store(self)

    def resource(self, capacity: int = 1) -> Resource:
        return Resource(self, capacity)

    # -- telemetry ----------------------------------------------------

    def bind_metrics(self, registry, prefix: str = "kernel") -> None:
        """Expose the kernel's plain-int counters as registry
        instruments (function-backed: the event loop itself pays
        nothing; the registry reads these only at snapshot time).
        ``registry`` is a :class:`~repro.analysis.telemetry
        .MetricsRegistry`; duck-typed so the kernel stays import-free.
        """
        registry.counter(prefix + ".events_processed",
                         fn=lambda: self._event_count)
        registry.counter(prefix + ".timers_scheduled",
                         fn=lambda: self._timers_scheduled)
        registry.counter(prefix + ".timers_cancelled",
                         fn=lambda: self._timers_cancelled)
        registry.gauge(prefix + ".heap_size", fn=lambda: self.heap_size)
        registry.gauge(prefix + ".stale_timers", fn=lambda: self._stale)
        registry.gauge(prefix + ".peak_heap_size",
                       fn=lambda: self.peak_heap_size)
        registry.gauge(prefix + ".ready_size", fn=lambda: self.ready_size)
        registry.gauge(prefix + ".peak_ready_size",
                       fn=lambda: self.peak_ready_size)

    # -- execution ----------------------------------------------------

    @property
    def events_processed(self) -> int:
        return self._event_count

    @property
    def timers_scheduled(self) -> int:
        """Timeouts ever armed (the timer-churn numerator)."""
        return self._timers_scheduled

    @property
    def timers_cancelled(self) -> int:
        """Timeouts withdrawn before firing (guard-timer churn)."""
        return self._timers_cancelled

    @property
    def stale_timer_count(self) -> int:
        """Cancelled-but-not-yet-discarded entries still in the heap."""
        return self._stale

    @property
    def heap_size(self) -> int:
        """Live (non-cancelled) entries currently in the timer heap."""
        return len(self._heap) - self._stale

    @property
    def ready_size(self) -> int:
        """Same-instant events currently waiting in the run queue."""
        return len(self._ready)

    def _discard_stale_head(self) -> None:
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
            self._stale -= 1

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none are scheduled."""
        if self._ready:
            # Run-queue events always fire at the current instant.
            return self.now
        self._discard_stale_head()
        return self._heap[0][0] if self._heap else float("inf")

    # The event-processing body is deliberately duplicated inline in
    # step() / run() / run_until_complete(): this is the hottest code
    # in the repo and a shared helper would cost a Python call per
    # event.  Keep the three copies textually identical.

    def step(self) -> None:
        """Process exactly one event (skipping cancelled timers).

        Raises ``IndexError`` when nothing is scheduled at all, as the
        single-heap scheduler did.
        """
        ready = self._ready
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
            self._stale -= 1
        if ready:
            head = heap[0] if heap else None
            # A timer that ties the current instant fires first only
            # if it was scheduled first (smaller sequence number).
            if head is not None and head[0] <= self.now \
                    and head[1] < ready[0][0]:
                heappop(heap)
                event = head[2]
            else:
                event = ready.popleft()[1]
        else:
            when, _seq, event = heappop(heap)
            self.now = when
        if event._value is _PENDING:  # self-triggering event (Timeout)
            event._ok = True
            event._value = event._auto_value
            event._entry = None
        callbacks = event.callbacks
        event.callbacks = None
        self._event_count += 1
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues are empty or ``sim.now`` would pass
        ``until``.

        When stopped by ``until`` the clock is advanced exactly to it,
        so follow-up ``run`` calls observe a consistent timeline.
        """
        if until is not None and until < self.now:
            raise SimulationError("cannot run backwards in time")
        ready = self._ready
        # Re-read self._heap each iteration: cancellation may compact
        # it (replacing the list) from inside an event callback.  The
        # run queue is mutated in place only, so the local is safe.
        while True:
            heap = self._heap
            head = heap[0] if heap else None
            if head is not None and head[2] is None:
                heappop(heap)
                self._stale -= 1
                continue
            if ready:
                if head is not None and head[0] <= self.now \
                        and head[1] < ready[0][0]:
                    heappop(heap)
                    event = head[2]
                else:
                    event = ready.popleft()[1]
            elif head is not None:
                if until is not None and head[0] > until:
                    self.now = until
                    return
                heappop(heap)
                self.now = head[0]
                event = head[2]
            else:
                break
            if event._value is _PENDING:  # self-triggering (Timeout)
                event._ok = True
                event._value = event._auto_value
                event._entry = None
            callbacks = event.callbacks
            event.callbacks = None
            self._event_count += 1
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        if until is not None:
            self.now = until

    def run_until_complete(self, process: Process,
                           limit: float = float("inf")) -> Any:
        """Run until ``process`` finishes and return its value.

        ``limit`` guards against deadlocked protocols in tests: if the
        event queues drain or time passes ``limit`` first, a
        :class:`SimulationError` is raised.
        """
        ready = self._ready
        # `process._value is _PENDING` inlines `not process.triggered`:
        # this check runs once per processed event.
        while process._value is _PENDING:
            heap = self._heap
            head = heap[0] if heap else None
            if head is not None and head[2] is None:
                heappop(heap)
                self._stale -= 1
                continue
            if ready and self.now <= limit:
                if head is not None and head[0] <= self.now \
                        and head[1] < ready[0][0]:
                    heappop(heap)
                    event = head[2]
                else:
                    event = ready.popleft()[1]
            elif head is not None and head[0] <= limit:
                heappop(heap)
                self.now = head[0]
                event = head[2]
            else:
                raise SimulationError(
                    "process did not complete (deadlock or time limit)")
            if event._value is _PENDING:  # self-triggering (Timeout)
                event._ok = True
                event._value = event._auto_value
                event._entry = None
            callbacks = event.callbacks
            event.callbacks = None
            self._event_count += 1
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        return process.value
