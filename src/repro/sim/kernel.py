"""Discrete-event simulation kernel.

Everything in this reproduction runs on top of this kernel: hosts,
protocol daemons, replication subobjects, DNS servers, and clients are
all *processes* — Python generators that ``yield`` :class:`Event`
instances and are resumed when those events fire.

The design follows the classic process-interaction style (as in SimPy),
but is deliberately small and fully deterministic:

* Events fire in ``(time, sequence-number)`` order; two events scheduled
  for the same instant fire in the order they were scheduled.
* No wall-clock time or OS randomness is consulted anywhere.  All
  stochastic behaviour in higher layers draws from seeded
  ``random.Random`` instances owned by the simulation world.

Typical use::

    sim = Simulator()

    def ping(sim):
        yield sim.timeout(1.0)
        return "pong"

    proc = sim.process(ping(sim))
    sim.run()
    assert proc.value == "pong"
    assert sim.now == 1.0
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Store",
    "Resource",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; at some point it is *triggered* either
    successfully (``succeed``) with a value, or with a failure
    (``fail``) carrying an exception.  Triggering schedules all
    registered callbacks to run at the current simulation time.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # A failure that nobody waits on should not pass silently; the
        # simulator surfaces unhandled failures when it processes them.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (even if not yet processed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        if not self._ok:
            raise self._value
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs at the
        current simulation time (via a zero-delay bridge event), which
        keeps `yield already_fired_event` well-defined.
        """
        if self.callbacks is not None:
            self.callbacks.append(callback)
        else:
            bridge = Event(self.sim)
            bridge.add_callback(lambda _e: callback(self))
            if self._ok:
                bridge.succeed(self._value)
            else:
                self._defused = True
                bridge._defused = True
                bridge.fail(self._value)

    def defuse(self) -> None:
        """Mark a failure as handled so the simulator will not re-raise."""
        self._defused = True


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Unlike manually triggered events, a timeout stays *untriggered*
    until the simulator processes it (so composites like ``AnyOf`` see
    pending timers as pending); the stored value is attached when it
    fires.
    """

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError("negative delay: %r" % (delay,))
        super().__init__(sim)
        self.delay = delay
        self._auto_value = value
        sim._enqueue(self, delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")


class Process(Event):
    """A running generator; also an event that fires when it finishes.

    The generator must yield :class:`Event` instances.  When a yielded
    event succeeds, the process resumes with the event's value; when it
    fails, the exception is thrown into the generator.  The process
    event itself succeeds with the generator's return value, or fails
    with its uncaught exception.
    """

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off at the current instant.
        start = Event(sim)
        start.add_callback(self._resume)
        start.succeed()

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process twice before it handles the first interrupt is allowed
        (both are delivered in order).
        """
        if not self.alive:
            raise SimulationError("cannot interrupt a finished process")
        bridge = Event(self.sim)
        bridge._defused = True
        bridge.add_callback(self._deliver_interrupt)
        bridge.fail(Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process immediately without resuming it.

        Used by failure injection (host crashes): the generator is
        closed, pending waits are abandoned, and the process event
        succeeds with ``None`` so waiters are released.
        """
        if not self.alive:
            return
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._generator.close()
        self.succeed(None)

    def _deliver_interrupt(self, bridge: Event) -> None:
        if not self.alive:
            return
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._step(bridge)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event)

    def _step(self, event: Event) -> None:
        if self.triggered:
            return
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                "process yielded %r, expected an Event" % (target,))
            self._generator.close()
            self.fail(error)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._fired = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("events belong to different simulators")
            event.add_callback(self._on_fire)
        if not self._events:
            self.succeed({})

    def _done(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        self._fired += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if self._done():
            results = {
                ev: ev._value for ev in self._events
                if ev.triggered and ev._ok
            }
            self.succeed(results)


class AnyOf(_Condition):
    """Fires when the first of ``events`` fires."""

    def _done(self) -> bool:
        return self._fired >= 1


class AllOf(_Condition):
    """Fires when all of ``events`` have fired."""

    def _done(self) -> bool:
        return self._fired >= len(self._events)


class Store:
    """An unbounded FIFO queue connecting producer and consumer processes.

    ``put`` never blocks; ``get`` returns an event that fires when an
    item is available.  Items are delivered in FIFO order to getters in
    FIFO order, which keeps message channels deterministic.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._items: list = []
        self._getters: list[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self._items.append(item)
        self._dispatch()

    def get(self) -> Event:
        event = Event(self.sim)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        while self._items and self._getters:
            getter = self._getters.pop(0)
            if getter.triggered:
                continue
            getter.succeed(self._items.pop(0))


class Resource:
    """A counting semaphore for modelling limited server concurrency.

    ``acquire`` returns an event that fires when a slot is free;
    ``release`` frees a slot.  Waiters are served FIFO.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: list[Event] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> Event:
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without acquire()")
        while self._waiters:
            waiter = self._waiters.pop(0)
            if waiter.triggered:
                continue
            waiter.succeed()
            return
        self._in_use -= 1


class Simulator:
    """The event loop: a priority queue of triggered events."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._sequence = itertools.count()
        self._event_count = 0

    # -- scheduling ---------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(
            self._heap, (self.now + delay, next(self._sequence), event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event (trigger it manually)."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator)

    def store(self) -> Store:
        return Store(self)

    def resource(self, capacity: int = 1) -> Resource:
        return Resource(self, capacity)

    # -- execution ----------------------------------------------------

    @property
    def events_processed(self) -> int:
        return self._event_count

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none are scheduled."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        if event._value is _PENDING:  # self-triggering event (Timeout)
            event._ok = True
            event._value = getattr(event, "_auto_value", None)
        callbacks = event.callbacks
        event.callbacks = None
        self._event_count += 1
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or ``sim.now`` would pass ``until``.

        When stopped by ``until`` the clock is advanced exactly to it,
        so follow-up ``run`` calls observe a consistent timeline.
        """
        if until is not None and until < self.now:
            raise SimulationError("cannot run backwards in time")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until

    def run_until_complete(self, process: Process,
                           limit: float = float("inf")) -> Any:
        """Run until ``process`` finishes and return its value.

        ``limit`` guards against deadlocked protocols in tests: if the
        event queue drains or time passes ``limit`` first, a
        :class:`SimulationError` is raised.
        """
        while not process.triggered:
            if not self._heap or self.peek() > limit:
                raise SimulationError(
                    "process did not complete (deadlock or time limit)")
            self.step()
        return process.value
