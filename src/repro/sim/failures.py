"""Failure injection: crashes, restarts, partitions, datagram loss.

The GDN paper lists host and network failures among the nonfunctional
aspects the middleware must absorb (§1, §6.1).  This module schedules
such failures on the simulation timeline so tests and benchmarks can
measure recovery behaviour (experiment E8) deterministically.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from .topology import Domain, Level
from .transport import Host
from .world import World

__all__ = ["FailureInjector"]


class FailureInjector:
    """Schedules failures against a :class:`~repro.sim.world.World`."""

    def __init__(self, world: World):
        self.world = world
        self.log: list[tuple[float, str, str]] = []

    def _note(self, kind: str, target: str) -> None:
        self.log.append((self.world.now, kind, target))

    # -- host failures ------------------------------------------------------

    def crash_host_at(self, host: Host, when: float) -> None:
        """Hard-crash ``host`` at absolute simulation time ``when``."""
        def fire() -> Generator:
            delay = when - self.world.now
            if delay > 0:
                yield self.world.sim.timeout(delay)
            self._note("crash", host.name)
            host.crash()
        self.world.sim.process(fire())

    def restart_host_at(self, host: Host, when: float,
                        recover: Optional[Callable[[], None]] = None) -> None:
        """Restart ``host`` at ``when``; then run ``recover()``.

        ``recover`` is where a component re-creates its daemons — e.g.
        ``gos.restart()`` reloads replica state from the persistence
        substrate, reproducing §4's reboot-reconstruction requirement.
        """
        def fire() -> Generator:
            delay = when - self.world.now
            if delay > 0:
                yield self.world.sim.timeout(delay)
            self._note("restart", host.name)
            host.restart()
            if recover is not None:
                recover()
        self.world.sim.process(fire())

    def crash_restart(self, host: Host, crash_at: float, restart_at: float,
                      recover: Optional[Callable[[], None]] = None) -> None:
        if restart_at <= crash_at:
            raise ValueError("restart must come after crash")
        self.crash_host_at(host, crash_at)
        self.restart_host_at(host, restart_at, recover)

    # -- network failures ---------------------------------------------------

    def partition_domain(self, domain: Domain, start: float,
                         duration: float) -> None:
        """Cut ``domain`` off from the rest of the world for ``duration``."""
        def fire() -> Generator:
            delay = start - self.world.now
            if delay > 0:
                yield self.world.sim.timeout(delay)
            self._note("partition", domain.path)
            self.world.network.partition_domain(domain)
            yield self.world.sim.timeout(duration)
            self._note("heal", domain.path)
            self.world.network.heal_domain(domain)
        self.world.sim.process(fire())

    def set_loss(self, level: Level, probability: float) -> None:
        """Make datagrams crossing ``level`` boundaries lossy."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.world.network.params.loss[level] = probability
        self._note("loss=%g" % probability, level.name)

    def loss_window(self, level: Level, probability: float,
                    start: float, end: float) -> None:
        """Make ``level`` crossings lossy for ``[start, end)`` only.

        Unlike :meth:`set_loss`, the prior loss rate is captured when
        the window opens and restored when it closes, so soaks can
        script *transient* link degradation — a flaky transit window a
        chunked transfer must ride out — without permanently altering
        the topology's link parameters.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if end <= start:
            raise ValueError("window end must come after start")

        def fire() -> Generator:
            delay = start - self.world.now
            if delay > 0:
                yield self.world.sim.timeout(delay)
            loss = self.world.network.params.loss
            prior = loss[level]
            loss[level] = probability
            self._note("loss=%g" % probability, level.name)
            yield self.world.sim.timeout(end - self.world.now)
            loss[level] = prior
            self._note("loss=%g" % prior, level.name)
        self.world.sim.process(fire())
