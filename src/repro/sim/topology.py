"""Hierarchical wide-area topology.

The paper's systems (GLS domains, GDN host placement, "replicas close to
clients") are all phrased in terms of a hierarchy of network domains:
campus networks combine into cities, cities into countries, countries
into world regions, regions into the whole Internet (GDN paper §3.5,
Figure 2).  This module provides that geometry: a tree of
:class:`Domain` objects with five levels.

Distance between two attachment points (sites) is characterised by the
*level of their lowest common ancestor*: two hosts on the same campus
are at ``Level.SITE`` distance, two hosts in different world regions at
``Level.WORLD`` distance.  The network layer maps these levels to
latency and bandwidth figures.

The topology is pure geometry — no simulator state — so it can be built
and inspected eagerly in tests.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, Iterator, List, Optional

__all__ = ["Level", "Domain", "Topology", "TopologyError"]


class TopologyError(Exception):
    """Raised for malformed topology construction or lookups."""


class Level(IntEnum):
    """Domain levels, ordered from most local to most global."""

    SITE = 0
    CITY = 1
    COUNTRY = 2
    REGION = 3
    WORLD = 4


class Domain:
    """A node in the domain hierarchy.

    Leaf domains (``Level.SITE``) are the attachment points for hosts;
    every non-leaf domain groups its children (GDN paper, Figure 2).
    """

    def __init__(self, name: str, level: Level,
                 parent: Optional["Domain"] = None):
        if parent is not None and parent.level != level + 1:
            raise TopologyError(
                "domain %r (level %s) cannot be a child of %r (level %s)"
                % (name, level.name, parent.name, parent.level.name))
        self.name = name
        self.level = level
        self.parent = parent
        self.children: Dict[str, "Domain"] = {}
        # A domain's ancestry is fixed at construction (parents are
        # never re-assigned), so the root-to-self chain and the path
        # string can be computed once here instead of walking the tree
        # per query — lca/separation and Request construction sit on
        # hot per-message paths at thousand-site scale.
        if parent is None:
            self._lineage: tuple = (self,)
            self._path = ""
        else:
            self._lineage = parent._lineage + (self,)
            self._path = (name if parent.parent is None
                          else parent._path + "/" + name)
        self._region: Optional["Domain"] = None
        if parent is not None:
            if name in parent.children:
                raise TopologyError(
                    "duplicate child domain %r under %r" % (name, parent.name))
            parent.children[name] = self

    @property
    def path(self) -> str:
        """Slash-separated path from the world root, e.g. ``eu/nl/ams/vu``."""
        return self._path

    def ancestors(self) -> Iterator["Domain"]:
        """This domain, then its parent, up to and including the root."""
        node: Optional[Domain] = self
        while node is not None:
            yield node
            node = node.parent

    def region(self) -> "Domain":
        """The ``Level.REGION`` ancestor, derived defensively.

        On a full five-level hierarchy this is the world-root's child
        above this domain.  Shallower trees (hand-built domains without
        the full chain) fall back to the topmost ancestor below the
        root, or to ``self`` when the domain stands alone — callers get
        a usable grouping key instead of an IndexError.

        The result is memoised on first call: ancestry is immutable,
        and ``Request.__init__`` resolves a region per request on the
        hot workload path.
        """
        region = self._region
        if region is None:
            region = self._resolve_region()
            self._region = region
        return region

    def _resolve_region(self) -> "Domain":
        candidate = self
        for node in self.ancestors():
            if node.level == Level.REGION:
                return node
            if node.parent is not None:
                candidate = node
        return candidate

    def sites(self) -> Iterator["Domain"]:
        """All leaf (site) domains under this domain, in insertion order."""
        if self.level == Level.SITE:
            yield self
            return
        for child in self.children.values():
            yield from child.sites()

    def subtree(self) -> Iterator["Domain"]:
        """This domain and all descendants, pre-order."""
        yield self
        for child in self.children.values():
            yield from child.subtree()

    def __repr__(self) -> str:
        return "Domain(%r, %s)" % (self.path or "<world>", self.level.name)


class Topology:
    """A five-level domain tree with helpers for building and queries."""

    def __init__(self, name: str = "internet"):
        self.name = name
        self.world = Domain("world", Level.WORLD)
        self._sites: Dict[str, Domain] = {}

    # -- construction ---------------------------------------------------

    def add_region(self, name: str) -> Domain:
        return Domain(name, Level.REGION, self.world)

    def add_country(self, region: Domain, name: str) -> Domain:
        return Domain(name, Level.COUNTRY, region)

    def add_city(self, country: Domain, name: str) -> Domain:
        return Domain(name, Level.CITY, country)

    def add_site(self, city: Domain, name: str) -> Domain:
        site = Domain(name, Level.SITE, city)
        self._sites[site.path] = site
        return site

    @classmethod
    def balanced(cls, regions: int = 2, countries: int = 2, cities: int = 2,
                 sites: int = 2, name: str = "internet") -> "Topology":
        """A symmetric topology: handy default for experiments.

        Domain names are systematic (``r0``, ``r0/c1``, ...), so tests
        can address sites by path.
        """
        topo = cls(name)
        for r in range(regions):
            region = topo.add_region("r%d" % r)
            for c in range(countries):
                country = topo.add_country(region, "c%d" % c)
                for m in range(cities):
                    city = topo.add_city(country, "m%d" % m)
                    for s in range(sites):
                        topo.add_site(city, "s%d" % s)
        return topo

    @classmethod
    def from_spec(cls, spec: dict, name: str = "internet") -> "Topology":
        """Build from a nested dict, e.g.::

            {"eu": {"nl": {"ams": ["vu", "uva"]}},
             "na": {"us": {"nyc": ["nyu"]}}}
        """
        topo = cls(name)
        for region_name, countries in spec.items():
            region = topo.add_region(region_name)
            for country_name, cities in countries.items():
                country = topo.add_country(region, country_name)
                for city_name, sites in cities.items():
                    city = topo.add_city(country, city_name)
                    for site_name in sites:
                        topo.add_site(city, site_name)
        return topo

    # -- queries ----------------------------------------------------------

    @property
    def sites(self) -> List[Domain]:
        return list(self._sites.values())

    def site(self, path: str) -> Domain:
        """Look a site up by its full path (``region/country/city/site``)."""
        try:
            return self._sites[path]
        except KeyError:
            raise TopologyError("unknown site %r" % path) from None

    def domain(self, path: str) -> Domain:
        """Look up any domain by path; empty path is the world root."""
        node = self.world
        if not path:
            return node
        for part in path.split("/"):
            try:
                node = node.children[part]
            except KeyError:
                raise TopologyError("unknown domain %r" % path) from None
        return node

    @staticmethod
    def lca(a: Domain, b: Domain) -> Domain:
        """Lowest common ancestor of two domains.

        Each domain carries its root-to-self chain precomputed
        (``_lineage``), so this is an allocation-free O(depth) prefix
        compare instead of building an ancestor set per query — the
        difference between thousand-site topologies warming a
        separation cache in milliseconds versus seconds.
        """
        lineage_a = a._lineage
        lineage_b = b._lineage
        if lineage_a[0] is not lineage_b[0]:
            raise TopologyError(
                "domains %r and %r share no ancestor" % (a, b))
        node = lineage_a[0]
        for ancestor_a, ancestor_b in zip(lineage_a, lineage_b):
            if ancestor_a is not ancestor_b:
                break
            node = ancestor_a
        return node

    @classmethod
    def separation(cls, a: Domain, b: Domain) -> Level:
        """The level of the LCA: how 'far apart' two sites are.

        ``Level.SITE`` means the same campus; ``Level.WORLD`` means the
        two sites are in different world regions.
        """
        return cls.lca(a, b).level
