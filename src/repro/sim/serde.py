"""Deterministic message-size estimation.

The simulator charges transfer time and traffic bytes per message.  To
keep accounting honest without actually serialising every payload, this
module estimates the encoded size of plain Python values the way a
simple binary codec would: fixed cost for scalars, length for
strings/bytes, recursive sum plus per-item overhead for containers.

Components that know better (e.g. file transfers) pass an explicit size
to the transport instead.
"""

from __future__ import annotations

from typing import Any

__all__ = ["encoded_size", "HEADER_OVERHEAD", "SCALAR_SIZE",
           "CONTAINER_ITEM_OVERHEAD"]

#: Fixed per-message framing overhead (addresses, ports, type tags),
#: roughly an IP+TCP/UDP header plus a small record header.
HEADER_OVERHEAD = 64

#: Cost of an int/float scalar.  Public so callers with fixed-shape
#: envelopes (the RPC layer) can precompute the constant part of a
#: message's size instead of re-walking the nested dict per message.
SCALAR_SIZE = 8
#: Per-item overhead inside containers (dict entries pay it twice:
#: once for the key, once for the value).
CONTAINER_ITEM_OVERHEAD = 4

_SCALAR_SIZE = SCALAR_SIZE
_CONTAINER_ITEM_OVERHEAD = CONTAINER_ITEM_OVERHEAD


def encoded_size(value: Any) -> int:
    """Estimated on-the-wire size of ``value`` in bytes (sans framing).

    Deterministic, order-independent for dicts, and total: unknown
    object types are charged a flat record cost based on their repr
    length, so simulations never crash on exotic payloads.

    This runs for every message the simulator carries, so the common
    shapes (str / int / dict / list of those) take exact-type fast
    paths before falling back to the general ``isinstance`` ladder.
    """
    kind = type(value)
    if kind is str:
        # ASCII (the overwhelmingly common case for protocol fields)
        # needs no encode round-trip to know its UTF-8 length.
        return len(value) if value.isascii() else len(value.encode("utf-8"))
    if kind is int or kind is float:
        return _SCALAR_SIZE
    if kind is dict:
        total = 0
        for key, val in value.items():
            total += (encoded_size(key) + encoded_size(val)
                      + 2 * _CONTAINER_ITEM_OVERHEAD)
        return total
    if kind is list or kind is tuple:
        total = 0
        for item in value:
            total += encoded_size(item) + _CONTAINER_ITEM_OVERHEAD
        return total
    if kind is bytes:
        return len(value)
    # General (and rare) cases: None, bools, subclasses, sets, objects.
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return _SCALAR_SIZE
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(encoded_size(item) + _CONTAINER_ITEM_OVERHEAD
                   for item in value)
    if isinstance(value, dict):
        return sum(encoded_size(key) + encoded_size(val)
                   + 2 * _CONTAINER_ITEM_OVERHEAD
                   for key, val in value.items())
    # Objects may advertise their own wire size.
    wire_size = getattr(value, "wire_size", None)
    if wire_size is not None:
        return int(wire_size() if callable(wire_size) else wire_size)
    return len(repr(value).encode("utf-8"))
