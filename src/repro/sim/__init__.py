"""Simulation substrate: kernel, topology, network, transport, RPC.

This package replaces the real Internet that the GDN paper deployed on
with a deterministic discrete-event model (see DESIGN.md §4 for the
substitution rationale).
"""

from .deadlines import FifoDeadlinePool, OrderedDeadlinePool, shared_pool
from .failures import FailureInjector
from .kernel import (AllOf, AnyOf, Event, Interrupt, Process, Resource,
                     SimulationError, Simulator, Store, Timeout)
from .network import LinkParameters, Network, NetworkError, TrafficMeter
from .rpc import (RpcChannel, RpcContext, RpcError, RpcFault, RpcServer,
                  RpcTimeout, UdpRpcClient, UdpRpcServer, call)
from .serde import HEADER_OVERHEAD, encoded_size
from .topology import Domain, Level, Topology, TopologyError
from .transport import (Connection, ConnectionClosed, ConnectRefused,
                        ConnectTimeout, Datagram, Host, HostDown,
                        TcpListener, TransportError, UdpSocket)
from .world import World

__all__ = [
    "AllOf", "AnyOf", "Event", "Interrupt", "Process", "Resource",
    "SimulationError", "Simulator", "Store", "Timeout",
    "FifoDeadlinePool", "OrderedDeadlinePool", "shared_pool",
    "LinkParameters", "Network", "NetworkError", "TrafficMeter",
    "RpcChannel", "RpcContext", "RpcError", "RpcFault", "RpcServer",
    "RpcTimeout", "UdpRpcClient", "UdpRpcServer", "call",
    "HEADER_OVERHEAD", "encoded_size",
    "Domain", "Level", "Topology", "TopologyError",
    "Connection", "ConnectionClosed", "ConnectRefused", "ConnectTimeout",
    "Datagram", "Host", "HostDown", "TcpListener", "TransportError",
    "UdpSocket", "World", "FailureInjector",
]
