"""Stable storage binding for Globe Object Servers (paper §4).

"Globe Object Servers allow replicas to save their state during a
reboot and reconstruct themselves afterwards."  This module binds the
generic simulated disk (:mod:`repro.sim.stable`) under the ``gos``
namespace.
"""

from __future__ import annotations

from ..sim.stable import (DISK_READ_LATENCY, DISK_WRITE_LATENCY, DiskStore,
                          StableStore)
from ..sim.world import World

__all__ = ["DiskStore", "GosPersistence", "DISK_WRITE_LATENCY",
           "DISK_READ_LATENCY"]


class GosPersistence(StableStore):
    """One object server's view of its host's disk."""

    def __init__(self, world: World, store: DiskStore, host_name: str,
                 namespace: str = "gos"):
        super().__init__(world, store, host_name, namespace)
