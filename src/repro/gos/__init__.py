"""Globe Object Servers: application-independent replica hosting (§4)."""

from .persistence import DiskStore, GosPersistence
from .server import (DEFAULT_GOS_PORT, GlobeObjectServer, GosError,
                     NotAuthorized, OP_CONTROL, OP_MODIFY)

__all__ = [
    "DiskStore", "GosPersistence", "DEFAULT_GOS_PORT",
    "GlobeObjectServer", "GosError", "NotAuthorized",
    "OP_CONTROL", "OP_MODIFY",
]
