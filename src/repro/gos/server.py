"""The Globe Object Server (paper §4).

"A Globe Object Server is an application-independent daemon for hosting
replicas of any kind of distributed shared object."  It exposes two
kinds of RPC methods on one port:

* ``dso_message`` — routes Globe Replication Protocol messages to the
  addressed replica's local representative (the Figure 3 "GRP" arrows);
* control commands (``create_object``, ``create_replica``,
  ``remove_replica``, ``list_replicas``, ``checkpoint``, ``ping``) —
  used by moderator tools to realise replication scenarios (§6.1's
  "create first replica" / "bind to DSO, create replica" commands).

Security (§6.1 requirements 1 and the "Modifying Packages" clause): an
``authorizer`` callback decides, per authenticated peer principal,
whether control commands and state-modifying messages are accepted.
The GDN layer wires this to TLS-authenticated channels; unit tests can
leave it open.

Persistence (§4): replica state is checkpointed to simulated stable
storage; :meth:`GlobeObjectServer.recover` reconstructs all replicas
after a host reboot — slaves additionally re-join their master to catch
up on writes missed while down.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from ..core.ids import ContactAddress, ObjectId
from ..core.local_repr import LocalRepresentative
from ..core.marshal import pack, unpack
from ..core.replication.base import PROTOCOLS, ReplicationError
from ..core.repository import ImplementationRepository
from ..sim.rpc import RpcContext, RpcServer
from ..sim.transport import Host
from ..sim.world import World
from .persistence import DiskStore, GosPersistence

__all__ = ["GlobeObjectServer", "GosError", "NotAuthorized"]

DEFAULT_GOS_PORT = 7100

#: Authorizer operations.
OP_CONTROL = "control"   # create/remove replicas, checkpointing
OP_MODIFY = "modify"     # state-modifying invocations and state updates

_WRITE_MESSAGE_TYPES = {"state_push", "op_push"}


class GosError(Exception):
    """Raised for object-server failures."""


class NotAuthorized(GosError):
    """The peer principal may not perform this operation."""


class GlobeObjectServer:
    """An application-independent replica-hosting daemon."""

    _instances = itertools.count(1)

    def __init__(self, world: World, host: Host,
                 repository: ImplementationRepository,
                 location_service,
                 port: int = DEFAULT_GOS_PORT,
                 channel_factory: Optional[Callable] = None,
                 channel_wrapper: Optional[Callable] = None,
                 authorizer: Optional[Callable[[RpcContext, str], bool]] = None,
                 disk: Optional[DiskStore] = None,
                 checkpoint_interval: Optional[float] = None,
                 checkpoint_on_write: bool = False):
        self.world = world
        self.host = host
        self.repository = repository
        self.location_service = location_service
        self.port = port
        #: Server-side security wrapper for incoming channels.
        self.channel_factory = channel_factory
        #: Client-side wrapper replicas use to talk to their peers.
        self.channel_wrapper = channel_wrapper
        self.authorizer = authorizer
        self.persistence = GosPersistence(
            world, disk if disk is not None else DiskStore(), host.name)
        self.replicas: Dict[str, LocalRepresentative] = {}
        self._records: Dict[str, dict] = {}
        self._server: Optional[RpcServer] = None
        #: Periodic checkpointing bounds state lost to a crash to one
        #: interval (None = checkpoint only on create/command).
        self.checkpoint_interval = checkpoint_interval
        #: Write-through durability: checkpoint a replica right after
        #: each state-modifying message it handled, so a master never
        #: rolls back behind its slaves on reboot.
        self.checkpoint_on_write = checkpoint_on_write
        self._checkpointer = None
        self.name = "gos-%d" % next(self._instances)
        #: Requests served across server incarnations (survives the
        #: restart that replaces ``self._server`` after a crash).
        self._requests_baseline = 0

    @property
    def requests_served(self) -> int:
        return self._requests_baseline + (
            self._server.requests_served if self._server is not None else 0)

    def bind_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Per-server request/replica instruments in the world registry
        (named ``gos.<host>.*`` unless a prefix is supplied)."""
        base = prefix if prefix is not None else "gos.%s" % self.host.name
        registry.counter(base + ".requests_served",
                         fn=lambda: self.requests_served)
        registry.gauge(base + ".replicas", fn=lambda: len(self.replicas))
        binder = getattr(self.location_service, "bind_metrics", None)
        if binder is not None:
            # The location service may be a GLS-lookup cache wrapper;
            # no-op if the shared per-host cache is already bound.
            binder(registry, base + ".gls_cache")

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Start serving (host must be up)."""
        if self._server is not None:
            # Crash recovery replaces the server without a stop();
            # keep the cumulative request count monotone.
            self._requests_baseline += self._server.requests_served
        server = RpcServer(self.host, self.port,
                           channel_factory=self.channel_factory)
        server.register("dso_message", self._handle_dso_message)
        server.register("create_object", self._handle_create_object)
        server.register("create_replica", self._handle_create_replica)
        server.register("remove_replica", self._handle_remove_replica)
        server.register("list_replicas", self._handle_list_replicas)
        server.register("checkpoint", self._handle_checkpoint)
        server.register("get_manifest", self._handle_get_manifest)
        server.register("get_chunk", self._handle_get_chunk)
        server.register("ping", lambda ctx, args: "pong")
        server.start()
        self._server = server
        if self.checkpoint_interval is not None:
            self._checkpointer = self.host.spawn(self._checkpoint_loop())

    def _checkpoint_loop(self) -> Generator:
        while True:
            yield self.world.sim.timeout(self.checkpoint_interval)
            yield from self._checkpoint_all()

    def stop(self) -> None:
        if self._server is not None:
            self._requests_baseline += self._server.requests_served
            self._server.stop()
            self._server = None
        if self._checkpointer is not None and self._checkpointer.alive:
            self._checkpointer.kill()
            self._checkpointer = None

    def shutdown(self) -> Generator:
        """Graceful shutdown: checkpoint every replica, stop serving."""
        yield from self._checkpoint_all()
        for replica in self.replicas.values():
            replica.detach()
        self.replicas.clear()
        self.stop()

    def recover(self) -> Generator:
        """Reconstruct replicas from stable storage after a reboot.

        The paper: object servers "allow replicas to save their state
        during a reboot and reconstruct themselves afterwards".  Slaves
        re-join their master, so state missed while down is recovered
        even from a stale checkpoint.
        """
        self.replicas.clear()
        self.start()
        records = yield from self.persistence.load_all()
        self._records = records
        for oid_hex, record in records.items():
            yield from self._reconstruct(oid_hex, record)

    # -- replica construction ---------------------------------------------

    def _make_contact_address(self, protocol: str, role: str,
                              impl_id: str) -> ContactAddress:
        return ContactAddress(self.host.name, self.port, protocol,
                              role=role, impl_id=impl_id,
                              site_path=self.host.site.path)

    def _compose_replica(self, oid: ObjectId, impl_id: str, protocol: str,
                         role: str, master_wire: Optional[dict],
                         protocol_options: Optional[dict] = None
                         ) -> Generator[Any, Any, LocalRepresentative]:
        implementation = yield from self.repository.load(self.host, impl_id)
        protocol_spec = PROTOCOLS.get(protocol)
        if protocol_spec is None or role not in protocol_spec["roles"]:
            raise GosError("no implementation for %s/%s" % (protocol, role))
        factory = protocol_spec["roles"][role]
        master = (ContactAddress.from_wire(master_wire)
                  if master_wire else None)
        replication = factory(master=master, **(protocol_options or {}))
        address = self._make_contact_address(protocol, role, impl_id)
        representative = LocalRepresentative(
            self.host, self.world, oid, implementation.interface,
            implementation.make_semantics(), replication,
            channel_wrapper=self.channel_wrapper, contact_address=address)
        return representative

    def create_local_replica(self, oid: Optional[ObjectId], impl_id: str,
                             protocol: str, role: str,
                             master: Optional[ContactAddress] = None,
                             register: bool = True,
                             protocol_options: Optional[dict] = None
                             ) -> Generator[Any, Any, LocalRepresentative]:
        """Create and start a replica on this server (in-process API).

        Returns the new local representative; its contact address has
        been registered in the location service (which allocates the
        OID when ``oid`` is None — paper §6.1: "As part of the
        registration, an object identifier is allocated for the DSO by
        the GLS").
        """
        master_wire = master.to_wire() if master else None
        if oid is None:
            oid_hex = yield from self.location_service.register(
                None, self._make_contact_address(
                    protocol, role, impl_id).to_wire())
            oid = ObjectId.from_hex(oid_hex)
            registered = True
        else:
            registered = False
        representative = yield from self._compose_replica(
            oid, impl_id, protocol, role, master_wire, protocol_options)
        if register and not registered:
            yield from self.location_service.register(
                oid.hex, representative.contact_address.to_wire())
        yield from representative.start()
        self.replicas[oid.hex] = representative
        self._records[oid.hex] = {
            "impl_id": impl_id, "protocol": protocol, "role": role,
            "master": master_wire, "registered": bool(register),
            "options": dict(protocol_options or {}),
        }
        yield from self._checkpoint_one(oid.hex)
        return representative

    def _reconstruct(self, oid_hex: str, record: dict) -> Generator:
        oid = ObjectId.from_hex(oid_hex)
        representative = yield from self._compose_replica(
            oid, record["impl_id"], record["protocol"], record["role"],
            record.get("master"), record.get("options"))
        state = record.get("state")
        if state is not None:
            representative.semantics.restore_state(unpack(state))
        representative.replication.restore_protocol_state(
            record.get("protocol_state", {}))
        if record["role"] in ("slave", "replica"):
            # Re-join the master to catch up on missed updates.
            try:
                yield from representative.start()
            except (ReplicationError, Exception):  # noqa: BLE001
                pass  # master may be down; checkpointed state stands
        self.replicas[oid_hex] = representative
        if record.get("registered"):
            yield from self.location_service.register(
                oid_hex, representative.contact_address.to_wire())

    # -- checkpointing -----------------------------------------------------

    def _checkpoint_one(self, oid_hex: str) -> Generator:
        representative = self.replicas.get(oid_hex)
        if representative is None:  # removed while checkpoint queued
            return
        record = dict(self._records[oid_hex])
        record["state"] = pack(representative.semantics.snapshot_state())
        record["protocol_state"] = \
            representative.replication.protocol_state()
        yield from self.persistence.save(oid_hex, record)

    def _checkpoint_all(self) -> Generator:
        for oid_hex in list(self.replicas):
            yield from self._checkpoint_one(oid_hex)

    # -- authorization -------------------------------------------------------

    def _authorize(self, ctx: RpcContext, operation: str,
                   oid_hex: Optional[str] = None) -> None:
        """The authorizer callback gets the addressed OID so policies
        can express per-package rights (the §2 maintainer role)."""
        if self.authorizer is None:
            return
        if not self.authorizer(ctx, operation, oid_hex):
            raise NotAuthorized(
                "%s refused %r for principal %r"
                % (self.host.name, operation, ctx.peer_principal))

    # -- RPC handlers ----------------------------------------------------------

    def _handle_dso_message(self, ctx: RpcContext, args: dict) -> Generator:
        oid_hex = args.get("oid", "")
        message = args.get("msg", {})
        kind = message.get("type")
        if kind in _WRITE_MESSAGE_TYPES or (
                kind == "invoke" and message.get("mode") == "write"):
            self._authorize(ctx, OP_MODIFY, oid_hex)
        representative = self.replicas.get(oid_hex)
        if representative is None:
            return {"type": "error", "reason": "no replica for %s here"
                    % oid_hex[:12]}
        reply = yield from representative.handle_message(message, ctx)
        if self.checkpoint_on_write and (
                kind in _WRITE_MESSAGE_TYPES
                or kind in ("join", "leave")  # durable peer lists
                or (kind == "invoke" and message.get("mode") == "write")):
            self.host.spawn(self._checkpoint_one(oid_hex))
        return reply

    def _handle_get_manifest(self, ctx: RpcContext, args: dict) -> Generator:
        """Chunk manifest for one file of a locally hosted replica.

        Reads carry no authorization (like read-mode ``dso_message``):
        §6.1 makes retrieval open to all GDN users.
        """
        representative = self.replicas.get(args.get("oid", ""))
        if representative is None:
            raise GosError("no replica for %s here"
                           % args.get("oid", "")[:12])
        kwargs = {"path": args["path"]}
        if args.get("chunk_size") is not None:
            kwargs["chunk_size"] = args["chunk_size"]
        manifest = yield from representative.invoke(
            "getFileManifest", kwargs)
        return manifest

    def _handle_get_chunk(self, ctx: RpcContext, args: dict) -> Generator:
        """One chunk of one file of a locally hosted replica."""
        representative = self.replicas.get(args.get("oid", ""))
        if representative is None:
            raise GosError("no replica for %s here"
                           % args.get("oid", "")[:12])
        kwargs = {"path": args["path"], "index": args["index"]}
        if args.get("chunk_size") is not None:
            kwargs["chunk_size"] = args["chunk_size"]
        chunk = yield from representative.invoke("getFileChunk", kwargs)
        return chunk

    def _handle_create_object(self, ctx: RpcContext, args: dict) -> Generator:
        """Create the *first* replica; the GLS allocates the OID."""
        self._authorize(ctx, OP_CONTROL)
        representative = yield from self.create_local_replica(
            None, args["impl_id"], args["protocol"], args["role"],
            protocol_options=args.get("options"))
        return {"oid": representative.oid.hex,
                "ca": representative.contact_address.to_wire()}

    def _handle_create_replica(self, ctx: RpcContext, args: dict) -> Generator:
        """Bind to an existing DSO and host an additional replica."""
        self._authorize(ctx, OP_CONTROL)
        master = (ContactAddress.from_wire(args["master"])
                  if args.get("master") else None)
        representative = yield from self.create_local_replica(
            ObjectId.from_hex(args["oid"]), args["impl_id"],
            args["protocol"], args["role"], master=master,
            protocol_options=args.get("options"))
        return {"oid": representative.oid.hex,
                "ca": representative.contact_address.to_wire()}

    def _handle_remove_replica(self, ctx: RpcContext, args: dict) -> Generator:
        self._authorize(ctx, OP_CONTROL)
        oid_hex = args["oid"]
        representative = self.replicas.pop(oid_hex, None)
        if representative is None:
            raise GosError("no replica for %s here" % oid_hex[:12])
        self._records.pop(oid_hex, None)
        if representative.contact_address is not None:
            yield from self.location_service.unregister(
                oid_hex, representative.contact_address.to_wire())
        representative.detach()
        yield from self.persistence.remove(oid_hex)
        return {"removed": oid_hex}

    def _handle_list_replicas(self, ctx: RpcContext, args: dict):
        self._authorize(ctx, OP_CONTROL)
        return {"replicas": [
            {"oid": oid_hex, "role": lr.role,
             "protocol": lr.replication.protocol}
            for oid_hex, lr in sorted(self.replicas.items())]}

    def _handle_checkpoint(self, ctx: RpcContext, args: dict) -> Generator:
        self._authorize(ctx, OP_CONTROL)
        yield from self._checkpoint_all()
        return {"checkpointed": len(self.replicas)}
