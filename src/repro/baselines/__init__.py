"""Baseline systems the GDN is evaluated against (§1, §3.1)."""

from .mirror import MirrorNetwork, MirrorServer
from .uniform import (UNIFORM_STRATEGIES, uniform_cache_only,
                      uniform_replicate_everywhere, uniform_single_server)
from .www import WwwClient, WwwServer

__all__ = [
    "MirrorNetwork", "MirrorServer",
    "UNIFORM_STRATEGIES", "uniform_cache_only",
    "uniform_replicate_everywhere", "uniform_single_server",
    "WwwClient", "WwwServer",
]
