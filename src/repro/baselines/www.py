"""Baseline: a classic single-server web site (paper §1, §3.1).

The paper positions the GDN against "the Web's limited and inflexible
support for replication".  This baseline is that counterfactual: one
HTTP daemon on one host serving every request itself, with no
replication and no awareness of where clients are.  Experiment E3
measures it against the GDN under identical workloads.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..sim.rpc import RpcChannel, RpcContext, RpcServer
from ..sim.transport import Host
from ..sim.world import World

__all__ = ["WwwServer", "WwwClient"]

WWW_PORT = 80


class WwwServer:
    """One origin server hosting a set of documents."""

    def __init__(self, world: World, host: Host, port: int = WWW_PORT):
        self.world = world
        self.host = host
        self.port = port
        self.documents: Dict[str, bytes] = {}
        self._server: Optional[RpcServer] = None
        self.requests_served = 0
        self.bytes_served = 0

    def publish(self, path: str, data: bytes) -> None:
        self.documents[path] = data

    def remove(self, path: str) -> bool:
        return self.documents.pop(path, None) is not None

    def start(self) -> None:
        server = RpcServer(self.host, self.port)
        server.register("http", self._handle_http)
        server.start()
        self._server = server

    def stop(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None

    def _handle_http(self, ctx: RpcContext, args: dict) -> dict:
        self.requests_served += 1
        path = args.get("path", "")
        data = self.documents.get(path)
        if data is None:
            return {"status": 404, "body": "no such document"}
        self.bytes_served += len(data)
        return {"status": 200, "body": data}


class WwwClient:
    """A browser pointed straight at the origin server."""

    def __init__(self, world: World, host: Host, server: WwwServer):
        self.world = world
        self.host = host
        self.server = server
        self._channel: Optional[RpcChannel] = None
        self.requests_made = 0

    def get(self, path: str) -> Generator[object, object, tuple]:
        """``status, body, elapsed = yield from client.get("/doc")``"""
        start = self.world.now
        if self._channel is None or self._channel.conn.closed:
            self._channel = yield from RpcChannel.open(
                self.host, self.server.host, self.server.port)
        reply = yield from self._channel.call("http", {"path": path})
        self.requests_made += 1
        return reply.get("status"), reply.get("body"), self.world.now - start

    def close(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
