"""Baseline: one-size-fits-all replication scenarios (paper §3.1).

The paper's motivating study compares "situations in which a single
replication scenario is used for the whole site" against per-object
assignment.  These factories produce that single scenario for every
object, to plug into the same deployment machinery the adaptive
advisor uses (experiment E5).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..gdn.scenario import ObjectUsage, ReplicationScenario

__all__ = ["uniform_single_server", "uniform_replicate_everywhere",
           "uniform_cache_only", "UNIFORM_STRATEGIES"]


def uniform_single_server(home_gos: str
                          ) -> Callable[[str, ObjectUsage],
                                        ReplicationScenario]:
    """Every object lives on one server; no caching (the NoRepl case)."""

    def assign(_name: str, _usage: ObjectUsage) -> ReplicationScenario:
        return ReplicationScenario.single_server(home_gos, cache_ttl=None)

    return assign


def uniform_replicate_everywhere(home_gos: str, all_gos: List[str],
                                 cache_ttl: float = 600.0
                                 ) -> Callable[[str, ObjectUsage],
                                               ReplicationScenario]:
    """Every object gets a replica on every server (mirror-like)."""
    slaves = [gos for gos in all_gos if gos != home_gos]

    def assign(_name: str, _usage: ObjectUsage) -> ReplicationScenario:
        return ReplicationScenario.master_slave(home_gos, list(slaves),
                                                cache_ttl=cache_ttl)

    return assign


def uniform_cache_only(home_gos: str, cache_ttl: float = 60.0
                       ) -> Callable[[str, ObjectUsage],
                                     ReplicationScenario]:
    """One authoritative copy; HTTPDs cache with a fixed TTL."""

    def assign(_name: str, _usage: ObjectUsage) -> ReplicationScenario:
        return ReplicationScenario.single_server(home_gos,
                                                 cache_ttl=cache_ttl)

    return assign


def UNIFORM_STRATEGIES(home_gos: str, all_gos: List[str]
                       ) -> Dict[str, Callable]:
    """The named uniform strategies compared in experiment E5."""
    return {
        "NoRepl": uniform_single_server(home_gos),
        "CacheTTL": uniform_cache_only(home_gos),
        "ReplAll": uniform_replicate_everywhere(home_gos, all_gos),
    }
