"""Baseline: FTP-style full mirroring (paper §1, §3.1).

"Most countries probably have their own replicas of the complete
collection of freely redistributable software packages" — the world the
GDN wants to improve on.  A mirror network copies *everything* to
*every* mirror on a fixed schedule, regardless of per-package demand:

* reads are always local to the nearest mirror (fast),
* but synchronisation traffic and disk grow with the full corpus, and
* updates are only visible after the next synchronisation round.

Experiment E3 contrasts this with the GDN's selective, per-object
replication.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..sim.rpc import RpcChannel, RpcContext, RpcServer
from ..sim.topology import Topology
from ..sim.transport import Host
from ..sim.world import World

__all__ = ["MirrorServer", "MirrorNetwork"]

MIRROR_PORT = 21


class MirrorServer:
    """One mirror: a full copy of the corpus as of its last sync."""

    def __init__(self, world: World, host: Host, port: int = MIRROR_PORT):
        self.world = world
        self.host = host
        self.port = port
        self.documents: Dict[str, bytes] = {}
        self.versions: Dict[str, int] = {}
        self._server: Optional[RpcServer] = None
        self.requests_served = 0
        self.bytes_served = 0

    def start(self) -> None:
        server = RpcServer(self.host, self.port)
        server.register("fetch", self._handle_fetch)
        server.register("manifest", self._handle_manifest)
        server.start()
        self._server = server

    def _handle_fetch(self, ctx: RpcContext, args: dict) -> dict:
        self.requests_served += 1
        path = args.get("path", "")
        data = self.documents.get(path)
        if data is None:
            return {"status": 404}
        self.bytes_served += len(data)
        return {"status": 200, "body": data,
                "version": self.versions.get(path, 0)}

    def _handle_manifest(self, ctx: RpcContext, args: dict) -> dict:
        return {"versions": dict(self.versions)}

    def store(self, path: str, data: bytes, version: int) -> None:
        self.documents[path] = data
        self.versions[path] = version

    def total_bytes(self) -> int:
        return sum(len(data) for data in self.documents.values())


class MirrorNetwork:
    """An origin plus mirrors synchronised on a fixed period."""

    def __init__(self, world: World, origin_host: Host,
                 sync_period: float = 3600.0):
        self.world = world
        self.origin = MirrorServer(world, origin_host)
        self.origin.start()
        self.mirrors: List[MirrorServer] = [self.origin]
        self.sync_period = sync_period
        self.syncs_completed = 0
        self._version_counter = 0

    def add_mirror(self, host: Host) -> MirrorServer:
        mirror = MirrorServer(self.world, host)
        mirror.start()
        self.mirrors.append(mirror)
        host.spawn(self._sync_loop(mirror))
        return mirror

    def publish(self, path: str, data: bytes) -> None:
        """Store (or update) a document at the origin."""
        self._version_counter += 1
        self.origin.store(path, data, self._version_counter)

    # -- synchronisation -------------------------------------------------------

    def _sync_loop(self, mirror: MirrorServer) -> Generator:
        while True:
            yield self.world.sim.timeout(self.sync_period)
            yield from self.sync_mirror(mirror)

    def sync_mirror(self, mirror: MirrorServer) -> Generator:
        """One synchronisation round: fetch every changed document."""
        channel = yield from RpcChannel.open(
            mirror.host, self.origin.host, self.origin.port)
        try:
            manifest = yield from channel.call("manifest", {})
            for path, version in sorted(manifest["versions"].items()):
                if mirror.versions.get(path, -1) >= version:
                    continue
                reply = yield from channel.call("fetch", {"path": path})
                if reply.get("status") == 200:
                    mirror.store(path, reply["body"], reply["version"])
        finally:
            channel.close()
        self.syncs_completed += 1

    def sync_all(self) -> Generator:
        """Force an immediate full sync of every mirror (tests)."""
        for mirror in self.mirrors[1:]:
            yield from self.sync_mirror(mirror)

    # -- client side -----------------------------------------------------------

    def nearest_mirror(self, host: Host) -> MirrorServer:
        return min(self.mirrors,
                   key=lambda mirror: (int(Topology.separation(
                       host.site, mirror.host.site)), mirror.host.name))

    def fetch(self, client: Host, path: str
              ) -> Generator[object, object, Tuple[int, object, float]]:
        """Fetch from the nearest mirror; returns (status, body, time)."""
        start = self.world.now
        mirror = self.nearest_mirror(client)
        channel = yield from RpcChannel.open(client, mirror.host,
                                             mirror.port)
        try:
            reply = yield from channel.call("fetch", {"path": path})
        finally:
            channel.close()
        return (reply.get("status"), reply.get("body"),
                self.world.now - start)
