"""Reproduction of "The Globe Distribution Network" (USENIX 2000).

Subpackages:

* :mod:`repro.sim` — discrete-event wide-area network substrate;
* :mod:`repro.core` — the Globe object model (DSOs, subobjects,
  replication protocols, binding);
* :mod:`repro.gls` — the Globe Location Service;
* :mod:`repro.gns` — DNS substrate + the Globe Name Service;
* :mod:`repro.security` — crypto, certificates, TLS channels, roles;
* :mod:`repro.gos` — Globe Object Servers;
* :mod:`repro.gdn` — the GDN application (packages, moderator tools,
  HTTPDs, proxies, browsers, whole-network deployments);
* :mod:`repro.baselines` — single-server WWW, FTP mirroring, uniform
  replication scenarios;
* :mod:`repro.workloads` — Zipf popularity, package corpora, client
  populations, the synthetic departmental web trace;
* :mod:`repro.analysis` — metrics and table rendering.
"""

__version__ = "1.0.0"
