"""Plain-text table/series rendering for experiment output.

Benchmarks print the rows and series the paper's figures imply; these
helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["Table", "format_bytes", "format_rate", "format_seconds"]


def format_bytes(count: float) -> str:
    """Human-readable byte count (binary units)."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            if unit == "B":
                return "%d %s" % (int(value), unit)
            return "%.1f %s" % (value, unit)
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable duration."""
    if seconds < 1e-3:
        return "%.0f µs" % (seconds * 1e6)
    if seconds < 1.0:
        return "%.1f ms" % (seconds * 1e3)
    return "%.2f s" % seconds


def format_rate(per_second: float) -> str:
    """Human-readable request rate (phase-table throughput column)."""
    if per_second >= 100.0:
        return "%.0f/s" % per_second
    return "%.1f/s" % per_second


class Table:
    """A fixed-column text table."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError("expected %d cells, got %d"
                             % (len(self.headers), len(cells)))
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells):
            return "  ".join(cell.ljust(width)
                             for cell, width in zip(cells, widths)).rstrip()

        parts = []
        if self.title:
            parts.append(self.title)
        parts.append(line(self.headers))
        parts.append(line(["-" * width for width in widths]))
        for row in self.rows:
            parts.append(line(row))
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
