"""Measurement helpers shared by experiments and benchmarks.

:func:`percentile` and :class:`Series` are the *exact*, keep-every-
sample tools for small experiment series (a handful of points per
table row).  High-volume load paths use the O(1) streaming
:class:`~repro.analysis.telemetry.Histogram` instead; tests use
``percentile`` as the ground truth histograms are checked against.

This module deliberately imports nothing from :mod:`repro.sim` at
module scope: the sim layer binds itself to
:class:`~repro.analysis.telemetry.MetricsRegistry`, so the analysis
package must be importable first.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

__all__ = ["Series", "TrafficDelta", "percentile"]


def percentile(values: Iterable[float], p: float) -> float:
    """The p-th percentile (0..100) with linear interpolation."""
    data = sorted(values)
    if not data:
        raise ValueError("no samples")
    if not 0 <= p <= 100:
        raise ValueError("percentile out of range")
    if len(data) == 1:
        return data[0]
    rank = (p / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return data[low]
    fraction = rank - low
    value = data[low] * (1 - fraction) + data[high] * fraction
    # Clamp: interpolation may drift past the extremes by one ULP.
    return min(max(value, data[0]), data[-1])


class Series:
    """A named sample collection with summary statistics."""

    def __init__(self, name: str):
        self.name = name
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        self.samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self.samples.extend(values)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples in %r" % self.name)
        return sum(self.samples) / len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def p(self, q: float) -> float:
        return percentile(self.samples, q)

    @property
    def median(self) -> float:
        return self.p(50)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    def summary(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean,
                "median": self.median, "p95": self.p(95),
                "max": self.maximum}


class TrafficDelta:
    """Traffic accounted between two points in simulated time.

    A thin convenience over a
    :class:`~repro.sim.network.TrafficMeter`'s level-keyed ledgers;
    for phase-scoped traffic use the meter's registry counters through
    :meth:`TrafficMeter.wide_area_delta` instead.
    """

    def __init__(self, meter):
        self.meter = meter
        self._start_bytes: Dict = {}
        self._start_messages: Dict = {}
        self.restart()

    def restart(self) -> None:
        self._start_bytes = dict(self.meter.bytes_by_level)
        self._start_messages = dict(self.meter.messages_by_level)

    def bytes_by_level(self) -> Dict:
        return {level: self.meter.bytes_by_level[level]
                - self._start_bytes[level] for level in self._start_bytes}

    def total_bytes(self) -> int:
        return sum(self.bytes_by_level().values())

    def wide_area_bytes(self, min_level=None) -> int:
        if min_level is None:
            from ..sim.topology import Level
            min_level = Level.REGION
        return sum(count for level, count in self.bytes_by_level().items()
                   if level >= min_level)

    def messages(self) -> int:
        return sum(self.meter.messages_by_level[level]
                   - self._start_messages[level]
                   for level in self._start_messages)
