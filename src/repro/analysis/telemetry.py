"""Unified telemetry: one registry of instruments, phase-scoped windows.

The paper's scalability claims rest on *measurements* — per-layer
request counts, lookup latency, traffic broken down by tree level.
Before this module every producer counted its own way (ad-hoc ints on
servers, sample lists in workloads, a byte-ledger in the network); a
question like "what was p95 latency *during* the partition, versus
after it healed?" required re-plumbing whichever counters happened to
be involved.  Now all of it goes through one :class:`MetricsRegistry`:

* **Instruments** — :class:`Counter` (monotone totals), :class:`Gauge`
  (point-in-time readings) and :class:`Histogram` (streaming
  log-bucketed distributions).  Counters and gauges can be *function
  backed*: a hot producer keeps its plain ``int`` field and registers
  ``fn=lambda: self._events`` — the registry reads it only when a
  snapshot is taken, so instrumentation costs the hot path nothing.
* **Histograms** are DDSketch-style: a value is recorded by bumping
  one bucket whose geometric bounds guarantee a bounded *relative*
  error on every quantile (default 1%).  Recording is O(1), memory is
  O(log(max/min)), histograms merge and subtract exactly — which is
  what makes phase windows work — and ``count``/``mean``/``sum`` stay
  exact.  This replaces sorting the full sample list per percentile
  call (O(n log n) each, unbounded memory) in every load run.
* **Phase windows** — ``registry.window("during-fault")`` snapshots
  every instrument; closing it yields per-instrument *deltas* (counter
  differences, histogram bucket differences, final gauge readings).
  ``registry.phase(label)`` chains consecutive non-overlapping windows
  so a soak can report throughput/latency/error-rate for warmup, fault
  and recovery separately; consecutive phase deltas sum exactly to the
  run totals.

The module is dependency-free (stdlib only) so every layer — the
simulation kernel included — can be bound to a registry without
import cycles.

Conventions: instrument names are dotted paths (``kernel.events``,
``net.bytes.WORLD``, ``load.latency``); producers expose a
``bind_metrics(registry, prefix=...)`` method registering their
instruments, and :class:`~repro.sim.world.World` owns the registry
(``world.metrics``) that a deployment's components bind to.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "PhaseWindow",
    "TelemetryError",
]


class TelemetryError(Exception):
    """Raised for misuse of the telemetry registry."""


class Instrument:
    """Base class: a named, snapshottable measurement source."""

    kind = "instrument"

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    # Snapshots are opaque per-kind states consumed by PhaseWindow.
    def _state(self) -> Any:
        raise NotImplementedError

    def _zero_state(self) -> Any:
        raise NotImplementedError

    def _delta(self, start: Any, end: Any) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self.name)


class Counter(Instrument):
    """A monotonically increasing total.

    Either push-style (``counter.inc()``) or function-backed
    (``fn=lambda: producer.plain_int``) for hot paths that must not
    pay an attribute+method call per event.  A window delta is the
    difference between the end and start readings.
    """

    kind = "counter"

    __slots__ = ("_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        super().__init__(name)
        self._value = 0
        self._fn = fn

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def inc(self, amount: float = 1) -> None:
        if self._fn is not None:
            raise TelemetryError(
                "%r is function-backed; increment the source" % self.name)
        self._value += amount

    def _state(self) -> float:
        return self.value

    def _zero_state(self) -> float:
        return 0

    def _delta(self, start: float, end: float) -> float:
        return end - start


class Gauge(Instrument):
    """A point-in-time reading (queue depth, heap size, replica count).

    Push-style (``gauge.set(v)``) or function-backed.  A window
    "delta" is the reading at window close — gauges are not rates.
    """

    kind = "gauge"

    __slots__ = ("_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        super().__init__(name)
        self._value = 0
        self._fn = fn

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise TelemetryError(
                "%r is function-backed; set the source" % self.name)
        self._value = value

    def _state(self) -> float:
        return self.value

    def _zero_state(self) -> float:
        return 0

    def _delta(self, start: float, end: float) -> float:
        return end


class Histogram(Instrument):
    """A streaming log-bucketed histogram with bounded-error quantiles.

    Values are assigned to geometric buckets ``(gamma**(i-1),
    gamma**i]`` with ``gamma`` chosen so any quantile read off the
    bucket midpoints is within ``max_error`` *relative* error of the
    true sample quantile (DDSketch's guarantee).  Recording is a log
    and a dict bump — O(1), no sample list — while ``count``, ``sum``,
    ``mean``, ``min`` and ``max`` stay exact.  Two histograms with the
    same accuracy merge (and subtract, for phase windows) bucket-wise.

    Non-positive values land in a dedicated zero bucket (a latency of
    exactly 0.0 is representable; negatives are clamped but tracked by
    ``minimum``).
    """

    kind = "histogram"

    __slots__ = ("max_error", "_gamma", "_log_gamma", "_rep_factor",
                 "_buckets", "_zero_count", "count", "sum", "_min", "_max")

    def __init__(self, name: str = "", max_error: float = 0.01):
        super().__init__(name)
        if not 0.0 < max_error < 1.0:
            raise TelemetryError("max_error must be in (0, 1)")
        self.max_error = max_error
        self._gamma = (1.0 + max_error) / (1.0 - max_error)
        self._log_gamma = math.log(self._gamma)
        # Bucket representative = gamma**i / sqrt(gamma), the geometric
        # midpoint of (gamma**(i-1), gamma**i]: at most max_error off
        # any value in the bucket.
        self._rep_factor = 1.0 / math.sqrt(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording -----------------------------------------------------

    def record(self, value: float) -> None:
        """O(1): bump the bucket covering ``value``."""
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self._zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    #: Series-compatible alias so histograms drop into old call sites.
    add = record

    def extend(self, values) -> None:
        for value in values:
            self.record(value)

    # -- exact summary statistics --------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def total(self) -> float:
        return self.sum

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    # -- quantiles ------------------------------------------------------

    def p(self, q: float) -> float:
        """The q-th percentile (0..100), within ``max_error`` relative
        error of the true sample percentile.  0.0 when empty."""
        if not 0 <= q <= 100:
            raise ValueError("percentile out of range")
        if self.count == 0:
            return 0.0
        if q == 0:
            return self.minimum    # tracked exactly
        if q == 100:
            return self.maximum    # tracked exactly
        need = max(1, math.ceil((q / 100.0) * self.count - 1e-9))
        cumulative = self._zero_count
        if cumulative >= need:
            value = 0.0
        else:
            value = self._max
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if cumulative >= need:
                    value = (self._gamma ** index) * self._rep_factor
                    break
        # Clamp: the extreme buckets cannot out-range the exact extremes.
        return min(max(value, self.minimum), self.maximum)

    def quantile(self, fraction: float) -> float:
        return self.p(fraction * 100.0)

    @property
    def median(self) -> float:
        return self.p(50)

    def summary(self) -> Dict[str, float]:
        """Flat summary; all-zero (never raising) when empty."""
        return {"count": self.count, "mean": self.mean,
                "p50": self.p(50), "p95": self.p(95),
                "max": self.maximum}

    # -- merge / delta --------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (same accuracy required)."""
        if abs(other.max_error - self.max_error) > 1e-12:
            raise TelemetryError("cannot merge histograms with "
                                 "different accuracies")
        for index, bump in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + bump
        self._zero_count += other._zero_count
        self.count += other.count
        self.sum += other.sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def state(self) -> Tuple:
        """Canonical, comparable state — the determinism fingerprint
        (same recorded multiset of values ⇒ equal state)."""
        return (self.count, self.sum, self._min, self._max,
                self._zero_count, tuple(sorted(self._buckets.items())))

    def _state(self) -> Tuple:
        return self.state()

    def _zero_state(self) -> Tuple:
        return (0, 0.0, math.inf, -math.inf, 0, ())

    def _delta(self, start: Tuple, end: Tuple) -> "Histogram":
        """The histogram of values recorded between two snapshots.

        Exact for counts/sum/buckets (recording only adds).  The
        window's min/max are not recoverable exactly — they are
        approximated from the populated delta buckets, which is within
        the same ``max_error`` bound.
        """
        delta = Histogram(self.name, self.max_error)
        start_buckets = dict(start[5])
        for index, total in end[5]:
            bump = total - start_buckets.get(index, 0)
            if bump:
                delta._buckets[index] = bump
        delta._zero_count = end[4] - start[4]
        delta.count = end[0] - start[0]
        delta.sum = end[1] - start[1]
        if delta.count:
            if delta._zero_count:
                delta._min = min(0.0, end[2])
            elif delta._buckets:
                low = min(delta._buckets)
                delta._min = (self._gamma ** low) * self._rep_factor
            if delta._buckets:
                high = max(delta._buckets)
                delta._max = (self._gamma ** high) * self._rep_factor
            else:
                delta._max = 0.0
        return delta


class PhaseWindow:
    """Deltas of every registry instrument between two instants.

    Opened with a snapshot of all instruments; :meth:`close` takes the
    end snapshot.  :meth:`delta` then answers "how much happened in
    this window": counter differences, the histogram of values
    recorded inside the window, or the gauge reading at close.
    Instruments created mid-window count from zero.
    """

    def __init__(self, registry: "MetricsRegistry", label: str,
                 now: Optional[float] = None):
        self.registry = registry
        self.label = label
        self.started_at = now
        self.ended_at: Optional[float] = None
        self._start = registry._snapshot_states()
        self._end: Optional[Dict[str, Any]] = None

    @property
    def closed(self) -> bool:
        return self._end is not None

    def close(self, now: Optional[float] = None) -> "PhaseWindow":
        if self._end is None:
            self.ended_at = now
            self._end = self.registry._snapshot_states()
        return self

    @property
    def duration(self) -> Optional[float]:
        """Seconds covered, when the caller supplied timestamps."""
        if self.started_at is None or self.ended_at is None:
            return None
        return self.ended_at - self.started_at

    def delta(self, name: str) -> Any:
        instrument = self.registry.get(name)
        end_states = (self._end if self._end is not None
                      else self.registry._snapshot_states())
        start = self._start.get(name, instrument._zero_state())
        end = end_states.get(name, instrument._zero_state())
        return instrument._delta(start, end)

    def summary(self) -> Dict[str, Any]:
        """Per-instrument deltas (histograms as their summary dicts)."""
        out: Dict[str, Any] = {}
        for name in self.registry.names():
            value = self.delta(name)
            out[name] = (value.summary() if isinstance(value, Histogram)
                         else value)
        return out

    def __repr__(self) -> str:
        span = ("%.3f..%s" % (self.started_at,
                              "open" if self.ended_at is None
                              else "%.3f" % self.ended_at)
                if self.started_at is not None else "untimed")
        return "PhaseWindow(%r, %s)" % (self.label, span)


class MetricsRegistry:
    """All instruments of one simulated world, plus its phase timeline.

    ``counter``/``gauge``/``histogram`` get-or-create by name (a name
    permanently keeps its first kind).  Phase windows come in two
    forms: free-standing :meth:`window` (may overlap anything) and the
    exclusive :meth:`phase` chain, where opening a phase closes the
    previous one — consecutive phases tile the run, so their deltas
    sum to the totals.
    """

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}
        self._prefixes: Dict[str, int] = {}
        #: Closed phase windows, in order.
        self.phases: List[PhaseWindow] = []
        self.current_phase: Optional[PhaseWindow] = None

    # -- instrument registration ---------------------------------------

    def _register(self, name: str, kind: type, **kwargs) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not kind or kwargs.get("fn") is not None:
                raise TelemetryError(
                    "instrument %r already registered as %s"
                    % (name, existing.kind))
            return existing
        instrument = kind(name, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str,
                fn: Optional[Callable[[], float]] = None) -> Counter:
        return self._register(name, Counter, fn=fn)

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._register(name, Gauge, fn=fn)

    def histogram(self, name: str, max_error: float = 0.01) -> Histogram:
        return self._register(name, Histogram, max_error=max_error)

    def get(self, name: str) -> Instrument:
        try:
            return self._instruments[name]
        except KeyError:
            raise TelemetryError("no instrument named %r" % name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return list(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def unique_prefix(self, base: str) -> str:
        """A prefix no other caller was handed (``load``, ``load#2``,
        ...) so several stats bundles can share one registry."""
        serial = self._prefixes.get(base, 0) + 1
        self._prefixes[base] = serial
        return base if serial == 1 else "%s#%d" % (base, serial)

    # -- snapshots ------------------------------------------------------

    def _snapshot_states(self) -> Dict[str, Any]:
        return {name: instrument._state()
                for name, instrument in self._instruments.items()}

    def snapshot(self) -> Dict[str, Any]:
        """Current values (histograms as summary dicts) — the flat
        record shape benchmarks persist."""
        out: Dict[str, Any] = {}
        for name, instrument in self._instruments.items():
            out[name] = (instrument.summary()
                         if isinstance(instrument, Histogram)
                         else instrument.value)
        return out

    # -- windows and phases ---------------------------------------------

    def window(self, label: str, now: Optional[float] = None) -> PhaseWindow:
        """A free-standing delta window (caller closes it)."""
        return PhaseWindow(self, label, now)

    def phase(self, label: str, now: Optional[float] = None) -> PhaseWindow:
        """Close the current phase (if any) and open the next one."""
        self.end_phase(now)
        self.current_phase = PhaseWindow(self, label, now)
        return self.current_phase

    def end_phase(self, now: Optional[float] = None) -> Optional[PhaseWindow]:
        """Close the open phase, appending it to :attr:`phases`."""
        closed = self.current_phase
        if closed is not None:
            closed.close(now)
            self.phases.append(closed)
            self.current_phase = None
        return closed
