"""Measurement and reporting helpers for experiments."""

from .metrics import Series, TrafficDelta, percentile
from .tables import Table, format_bytes, format_seconds

__all__ = ["Series", "TrafficDelta", "percentile", "Table",
           "format_bytes", "format_seconds"]
