"""Measurement and reporting helpers for experiments.

The telemetry model (see :mod:`.telemetry`): producers register
instruments in one :class:`MetricsRegistry` per world, histograms
stream log-bucketed samples in O(1), and phase windows slice any run
into before/during/after deltas.
"""

from .metrics import Series, TrafficDelta, percentile
from .tables import Table, format_bytes, format_rate, format_seconds
from .telemetry import (Counter, Gauge, Histogram, MetricsRegistry,
                        PhaseWindow, TelemetryError)

__all__ = ["Series", "TrafficDelta", "percentile", "Table",
           "format_bytes", "format_rate", "format_seconds",
           "Counter", "Gauge", "Histogram", "MetricsRegistry",
           "PhaseWindow", "TelemetryError"]
