"""The Globe Location Service (paper §3.5): OID -> contact addresses."""

from .auth import sign_mutation, verify_mutation
from .node import (GLS_PORT, DirectoryNode, GlsNodeError, NodeHandle)
from .records import NodeRecord
from .service import GlsClient, GlsError
from .tree import GlsTree

__all__ = [
    "sign_mutation", "verify_mutation",
    "GLS_PORT", "DirectoryNode", "GlsNodeError", "NodeHandle",
    "NodeRecord", "GlsClient", "GlsError", "GlsTree",
]
