"""Record types stored by GLS directory nodes (paper §3.5).

"For each DSO that has local representatives in the node's domain, a
directory node stores either the actual contact address … or a set of
forwarding pointers.  A forwarding pointer points to a child directory
node and indicates that a contact address can be found somewhere in the
subtree rooted at that child node."
"""

from __future__ import annotations

from typing import Dict, List, Set

__all__ = ["NodeRecord"]


class NodeRecord:
    """Per-OID state at one directory (sub)node.

    A record can simultaneously hold contact addresses (stored at this
    node's level) and forwarding pointers (replicas registered deeper
    in other child domains); lookups prefer local contact addresses.
    """

    __slots__ = ("contact_addresses", "forwarding_pointers")

    def __init__(self):
        self.contact_addresses: List[dict] = []
        self.forwarding_pointers: Set[str] = set()

    @property
    def empty(self) -> bool:
        return not self.contact_addresses and not self.forwarding_pointers

    def add_address(self, ca_wire: dict) -> bool:
        """Idempotent insert; returns True if the address was new."""
        if ca_wire in self.contact_addresses:
            return False
        self.contact_addresses.append(ca_wire)
        return True

    def remove_address(self, ca_wire: dict) -> bool:
        if ca_wire in self.contact_addresses:
            self.contact_addresses.remove(ca_wire)
            return True
        return False

    def add_pointer(self, child_path: str) -> bool:
        """Idempotent insert; returns True if the pointer was new."""
        if child_path in self.forwarding_pointers:
            return False
        self.forwarding_pointers.add(child_path)
        return True

    def remove_pointer(self, child_path: str) -> bool:
        if child_path in self.forwarding_pointers:
            self.forwarding_pointers.remove(child_path)
            return True
        return False

    def to_wire(self) -> dict:
        return {"cas": list(self.contact_addresses),
                "ptrs": sorted(self.forwarding_pointers)}

    @classmethod
    def from_wire(cls, data: dict) -> "NodeRecord":
        record = cls()
        record.contact_addresses = list(data.get("cas", []))
        record.forwarding_pointers = set(data.get("ptrs", []))
        return record

    def __repr__(self) -> str:
        return ("NodeRecord(%d addresses, %d pointers)"
                % (len(self.contact_addresses),
                   len(self.forwarding_pointers)))
