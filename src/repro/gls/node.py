"""GLS directory nodes (paper §3.5, Figure 2).

Each domain in the hierarchy has a logical directory node; a logical
node may be *partitioned* into several subnodes, each responsible for a
hash-slice of the OID space and running on its own machine ("Exploiting
Location Awareness…", cited as the solution to root-node load).

The wire protocol between client ↔ node and node ↔ node is datagram RPC
(§6.3: the GLS "is based on UDP" for efficiency):

* ``lookup``       — walk-up phase: answer, follow a pointer down, or
                     forward to the parent;
* ``lookup_down``  — walk-down phase: follow pointers only;
* ``insert``       — store a contact address at this node (or forward
                     towards the configured storage level), then link
                     the path of forwarding pointers upward;
* ``insert_pointer`` / ``delete_pointer`` — upward path maintenance;
* ``delete``       — remove a contact address, unlinking empty paths.

Invariant maintained throughout: **a node holds a record for an OID if
and only if its parent (transitively up to the root) holds a forwarding
pointer leading to it.**  Pointer propagation therefore stops as soon
as it meets a node that already had a record — the paper's "tree of
forwarding pointers from the root node" with shared suffixes.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..core.ids import ObjectId
from ..sim.rpc import RpcContext, UdpRpcClient, UdpRpcServer
from ..sim.stable import DiskStore, StableStore
from ..sim.topology import Domain, Level
from ..sim.transport import Host
from ..sim.world import World
from .auth import verify_mutation
from .records import NodeRecord

__all__ = ["NodeHandle", "DirectoryNode", "GLS_PORT", "GlsNodeError"]

GLS_PORT = 5300

#: Node-to-node datagram RPC must out-wait a whole recursive resolution
#: below it, so the per-hop timeout is generous.
_NODE_RPC_TIMEOUT = 5.0
_NODE_RPC_RETRIES = 2


class GlsNodeError(Exception):
    """Raised for protocol violations between directory nodes."""


class NodeHandle:
    """Addressing for a logical directory node (its subnode endpoints)."""

    def __init__(self, domain_path: str, endpoints: List[Tuple[str, int]]):
        if not endpoints:
            raise GlsNodeError("a node handle needs at least one endpoint")
        self.domain_path = domain_path
        self.endpoints = list(endpoints)

    def pick(self, oid_hex: str) -> Tuple[str, int]:
        """The subnode responsible for ``oid_hex`` (hash partitioning)."""
        if len(self.endpoints) == 1:
            return self.endpoints[0]
        index = ObjectId.from_hex(oid_hex).shard(len(self.endpoints))
        return self.endpoints[index]

    def to_wire(self) -> dict:
        return {"path": self.domain_path,
                "endpoints": [list(e) for e in self.endpoints]}

    @classmethod
    def from_wire(cls, data: dict) -> "NodeHandle":
        return cls(data["path"],
                   [tuple(e) for e in data["endpoints"]])

    def __repr__(self) -> str:
        return ("NodeHandle(%r, %d subnode(s))"
                % (self.domain_path or "<root>", len(self.endpoints)))


class DirectoryNode:
    """One directory (sub)node: records, pointers, and the protocol."""

    def __init__(self, world: World, host: Host, domain: Domain,
                 index: int = 0, port: int = GLS_PORT,
                 parent: Optional[NodeHandle] = None,
                 auth_key: Optional[bytes] = None,
                 disk: Optional[DiskStore] = None,
                 transport: str = "udp"):
        if transport not in ("udp", "tcp"):
            raise GlsNodeError("transport must be 'udp' or 'tcp'")
        self.world = world
        self.host = host
        self.domain = domain
        self.index = index
        self.port = port
        self.parent = parent
        self.auth_key = auth_key
        #: "udp" per the paper (§6.3); "tcp" for ablation A3, which
        #: pays a connection handshake per hop.
        self.transport = transport
        self.children: Dict[str, NodeHandle] = {}
        self.records: Dict[str, NodeRecord] = {}
        self.persistence = StableStore(
            world, disk if disk is not None else DiskStore(), host.name,
            namespace="gls:%s:%d" % (domain.path, index))
        self._rng = world.rng_for("gls-node-%s-%d" % (domain.path, index))
        self._server: Optional[UdpRpcServer] = None
        self._client: Optional[UdpRpcClient] = None
        # Load counters (experiment E6 reads these; exposed to the
        # world registry through bind_metrics).
        self.lookups_handled = 0
        self.inserts_handled = 0
        self.deletes_handled = 0
        self.pointer_updates = 0
        self.rejected_mutations = 0

    @property
    def level(self) -> Level:
        return self.domain.level

    @property
    def requests_handled(self) -> int:
        return (self.lookups_handled + self.inserts_handled
                + self.deletes_handled + self.pointer_updates)

    def __repr__(self) -> str:
        return ("DirectoryNode(%r#%d @ %s)"
                % (self.domain.path or "<root>", self.index, self.host.name))

    def bind_metrics(self, registry, prefix: str = "gls.node") -> None:
        """Per-node request/record instruments — the per-tree-level
        load breakdown the paper's Figure 2 argument rests on."""
        base = "%s.%s#%d" % (prefix, self.domain.path or "root", self.index)
        registry.counter(base + ".lookups", fn=lambda: self.lookups_handled)
        registry.counter(base + ".inserts", fn=lambda: self.inserts_handled)
        registry.counter(base + ".deletes", fn=lambda: self.deletes_handled)
        registry.counter(base + ".pointer_updates",
                         fn=lambda: self.pointer_updates)
        registry.counter(base + ".rejected",
                         fn=lambda: self.rejected_mutations)
        registry.gauge(base + ".records", fn=lambda: len(self.records))

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.transport == "udp":
            server = UdpRpcServer(self.host, self.port)
        else:
            from ..sim.rpc import RpcServer
            server = RpcServer(self.host, self.port)
        server.register("lookup", self._handle_lookup)
        server.register("lookup_down", self._handle_lookup_down)
        server.register("insert", self._handle_insert)
        server.register("insert_pointer", self._handle_insert_pointer)
        server.register("delete", self._handle_delete)
        server.register("delete_pointer", self._handle_delete_pointer)
        server.register("stats", self._handle_stats)
        server.start()
        self._server = server
        self._client = UdpRpcClient(self.host, timeout=_NODE_RPC_TIMEOUT,
                                    retries=_NODE_RPC_RETRIES)

    def stop(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self._client is not None:
            self._client.close()
            self._client = None

    def recover(self) -> Generator:
        """Reload records from stable storage after a host reboot (§7:
        the GLS supports "persistent storage of the state of a
        directory node" plus "a simple crash recovery mechanism")."""
        self.records.clear()
        self.start()
        stored = yield from self.persistence.load_all()
        for oid_hex, wire in stored.items():
            self.records[oid_hex] = NodeRecord.from_wire(wire)

    # -- helpers -------------------------------------------------------------

    def _call(self, handle: NodeHandle, oid_hex: str, method: str,
              args: dict) -> Generator[Any, Any, Any]:
        host_name, port = handle.pick(oid_hex)
        try:
            target = self.world.hosts[host_name]
        except KeyError:
            raise GlsNodeError("unknown directory host %r" % host_name)
        if self.transport == "tcp":
            from ..sim import rpc as _rpc
            value = yield from _rpc.call(self.host, target, port, method,
                                         args)
        else:
            value = yield from self._client.call(target, port, method, args)
        return value

    def _persist(self, oid_hex: str) -> Generator:
        record = self.records.get(oid_hex)
        if record is None:
            yield from self.persistence.remove(oid_hex)
        else:
            yield from self.persistence.save(oid_hex, record.to_wire())

    # -- lookup ---------------------------------------------------------------

    def _handle_lookup(self, ctx: RpcContext, args: dict) -> Generator:
        """Walk-up phase of a resolution (paper §3.5)."""
        self.lookups_handled += 1
        oid_hex = args["oid"]
        hops = args.get("hops", 0)
        record = self.records.get(oid_hex)
        if record is not None and record.contact_addresses:
            return {"cas": list(record.contact_addresses), "hops": hops,
                    "found": self.domain.path,
                    "found_level": int(self.level)}
        if record is not None and record.forwarding_pointers:
            child_path = self._choose_pointer(record)
            reply = yield from self._call(
                self.children[child_path], oid_hex, "lookup_down",
                {"oid": oid_hex, "hops": hops + 1})
            return reply
        if self.parent is not None:
            reply = yield from self._call(
                self.parent, oid_hex, "lookup",
                {"oid": oid_hex, "hops": hops + 1})
            return reply
        return {"cas": [], "hops": hops, "found": None, "found_level": None}

    def _handle_lookup_down(self, ctx: RpcContext, args: dict) -> Generator:
        """Walk-down phase: follow the tree of forwarding pointers."""
        self.lookups_handled += 1
        oid_hex = args["oid"]
        hops = args.get("hops", 0)
        record = self.records.get(oid_hex)
        if record is not None and record.contact_addresses:
            return {"cas": list(record.contact_addresses), "hops": hops,
                    "found": self.domain.path,
                    "found_level": int(self.level)}
        if record is not None and record.forwarding_pointers:
            child_path = self._choose_pointer(record)
            reply = yield from self._call(
                self.children[child_path], oid_hex, "lookup_down",
                {"oid": oid_hex, "hops": hops + 1})
            return reply
        # Tree inconsistency (e.g. lost delete): report not-found.
        return {"cas": [], "hops": hops, "found": None, "found_level": None}

    def _choose_pointer(self, record: NodeRecord) -> str:
        """Pick one forwarding pointer; "one is chosen at random"."""
        pointers = sorted(record.forwarding_pointers)
        if len(pointers) == 1:
            return pointers[0]
        return self._rng.choice(pointers)

    # -- insert ----------------------------------------------------------------

    def _handle_insert(self, ctx: RpcContext, args: dict) -> Generator:
        """Store a contact address (at this level or further up).

        ``store_level`` implements §3.5's mobile-object optimisation:
        "storing the addresses at intermediate nodes may … lead to
        considerably more efficient look-up operations".
        """
        oid_hex = args["oid"]
        ca_wire = args["ca"]
        if not verify_mutation(self.auth_key, "insert", oid_hex, ca_wire,
                               args.get("auth")):
            self.rejected_mutations += 1
            raise GlsNodeError("unauthorized registration")
        store_level = args.get("store_level", int(Level.SITE))
        self.inserts_handled += 1
        if int(self.level) < store_level and self.parent is not None:
            reply = yield from self._call(self.parent, oid_hex, "insert",
                                          args)
            return reply
        existed = oid_hex in self.records
        record = self.records.setdefault(oid_hex, NodeRecord())
        record.add_address(ca_wire)
        yield from self._persist(oid_hex)
        if not existed and self.parent is not None:
            yield from self._call(self.parent, oid_hex, "insert_pointer",
                                  {"oid": oid_hex,
                                   "child": self.domain.path})
        return {"stored_at": self.domain.path,
                "stored_level": int(self.level)}

    def _handle_insert_pointer(self, ctx: RpcContext, args: dict
                               ) -> Generator:
        self.pointer_updates += 1
        oid_hex = args["oid"]
        child_path = args["child"]
        if child_path not in self.children:
            raise GlsNodeError("%r is not a child of %r"
                               % (child_path, self.domain.path))
        existed = oid_hex in self.records
        record = self.records.setdefault(oid_hex, NodeRecord())
        record.add_pointer(child_path)
        yield from self._persist(oid_hex)
        if not existed and self.parent is not None:
            # New record here: extend the pointer path upward.
            yield from self._call(self.parent, oid_hex, "insert_pointer",
                                  {"oid": oid_hex,
                                   "child": self.domain.path})
        return {"linked_at": self.domain.path}

    # -- delete -----------------------------------------------------------------

    def _handle_delete(self, ctx: RpcContext, args: dict) -> Generator:
        oid_hex = args["oid"]
        ca_wire = args["ca"]
        if not verify_mutation(self.auth_key, "delete", oid_hex, ca_wire,
                               args.get("auth")):
            self.rejected_mutations += 1
            raise GlsNodeError("unauthorized deregistration")
        self.deletes_handled += 1
        record = self.records.get(oid_hex)
        if record is not None and ca_wire in record.contact_addresses:
            record.remove_address(ca_wire)
            removed_here = True
            if record.empty:
                del self.records[oid_hex]
                yield from self._persist(oid_hex)
                if self.parent is not None:
                    yield from self._call(
                        self.parent, oid_hex, "delete_pointer",
                        {"oid": oid_hex, "child": self.domain.path})
            else:
                yield from self._persist(oid_hex)
            return {"removed": removed_here}
        if self.parent is not None:
            # Not stored here: maybe stored at a higher level.
            reply = yield from self._call(self.parent, oid_hex, "delete",
                                          args)
            return reply
        return {"removed": False}

    def _handle_delete_pointer(self, ctx: RpcContext, args: dict
                               ) -> Generator:
        self.pointer_updates += 1
        oid_hex = args["oid"]
        child_path = args["child"]
        record = self.records.get(oid_hex)
        if record is None:
            return {"unlinked_at": self.domain.path, "noop": True}
        record.remove_pointer(child_path)
        if record.empty:
            del self.records[oid_hex]
            yield from self._persist(oid_hex)
            if self.parent is not None:
                yield from self._call(self.parent, oid_hex, "delete_pointer",
                                      {"oid": oid_hex,
                                       "child": self.domain.path})
        else:
            yield from self._persist(oid_hex)
        return {"unlinked_at": self.domain.path}

    # -- introspection ------------------------------------------------------------

    def _handle_stats(self, ctx: RpcContext, args: dict) -> dict:
        return {
            "path": self.domain.path,
            "index": self.index,
            "records": len(self.records),
            "lookups": self.lookups_handled,
            "inserts": self.inserts_handled,
            "deletes": self.deletes_handled,
            "pointer_updates": self.pointer_updates,
            "rejected": self.rejected_mutations,
        }
