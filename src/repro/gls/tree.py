"""Building the GLS directory-node hierarchy over a topology (Fig 2).

"We organize the Internet into a hierarchy of domains … with each
domain in the hierarchy we associate a directory node."  The tree
builder creates one logical node per topology domain (site up to the
world root), optionally partitioned into hash-sliced subnodes, places
subnode hosts on sites inside the domain, and wires parent/child
handles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..sim.stable import DiskStore
from ..sim.topology import Domain, Level, Topology
from ..sim.world import World
from .node import GLS_PORT, DirectoryNode, NodeHandle

__all__ = ["GlsTree"]


class GlsTree:
    """The deployed Globe Location Service for one world."""

    def __init__(self, world: World,
                 partition: Union[int, Dict[str, int]] = 1,
                 auth_key: Optional[bytes] = None,
                 port: int = GLS_PORT,
                 disk: Optional[DiskStore] = None,
                 host_prefix: str = "glsnode",
                 transport: str = "udp"):
        """``partition`` is either a global subnode count or a mapping
        from domain path (e.g. ``""`` for the root) to subnode count;
        unlisted domains get one subnode.  ``transport`` selects the
        node protocol: "udp" (the paper) or "tcp" (ablation A3)."""
        self.world = world
        self.partition = partition
        self.auth_key = auth_key
        self.port = port
        self.disk = disk if disk is not None else DiskStore()
        self.host_prefix = host_prefix
        self.transport = transport
        #: domain path -> list of subnodes (the logical node).
        self.nodes: Dict[str, List[DirectoryNode]] = {}
        #: domain path -> handle.
        self.handles: Dict[str, NodeHandle] = {}
        self._build()

    # -- construction -------------------------------------------------------

    def _subnode_count(self, domain: Domain) -> int:
        if isinstance(self.partition, int):
            return self.partition if domain.level > Level.SITE else 1
        return max(1, self.partition.get(domain.path, 1))

    def _host_name(self, domain: Domain, index: int) -> str:
        label = domain.path.replace("/", ".") or "root"
        return "%s-%s-%d" % (self.host_prefix, label, index)

    def _build(self) -> None:
        topology = self.world.topology
        domains = list(topology.world.subtree())
        # Create subnode hosts and nodes, leaves last so parents exist
        # first for wiring convenience (order is irrelevant otherwise).
        for domain in domains:
            count = self._subnode_count(domain)
            sites = list(domain.sites())
            subnodes = []
            endpoints = []
            for index in range(count):
                site = sites[index % len(sites)]
                host = self.world.host(self._host_name(domain, index), site)
                node = DirectoryNode(self.world, host, domain, index=index,
                                     port=self.port, auth_key=self.auth_key,
                                     disk=self.disk,
                                     transport=self.transport)
                subnodes.append(node)
                endpoints.append((host.name, self.port))
            self.nodes[domain.path] = subnodes
            self.handles[domain.path] = NodeHandle(domain.path, endpoints)
        # Wire parents and children, then start.
        for domain in domains:
            handle_children = {
                child.path: self.handles[child.path]
                for child in domain.children.values()}
            parent_handle = (self.handles[domain.parent.path]
                             if domain.parent is not None else None)
            for node in self.nodes[domain.path]:
                node.parent = parent_handle
                node.children = dict(handle_children)
                node.start()
        self.bind_metrics(self.world.metrics)

    def bind_metrics(self, registry, prefix: str = "gls") -> None:
        """Tree-wide totals plus every subnode's own counters."""
        registry.counter(prefix + ".requests", fn=self.total_requests)
        registry.gauge(prefix + ".records", fn=self.total_records)
        for subnodes in self.nodes.values():
            for node in subnodes:
                node.bind_metrics(registry, prefix + ".node")

    # -- access ----------------------------------------------------------------

    def leaf_handle(self, site: Domain) -> NodeHandle:
        """The directory node serving a site's leaf domain."""
        return self.handles[site.path]

    def root_nodes(self) -> List[DirectoryNode]:
        return self.nodes[""]

    def node_for(self, domain_path: str, oid_hex: str) -> DirectoryNode:
        """The subnode of a logical node responsible for ``oid_hex``."""
        handle = self.handles[domain_path]
        host_name, _port = handle.pick(oid_hex)
        for node in self.nodes[domain_path]:
            if node.host.name == host_name:
                return node
        raise KeyError(domain_path)

    def total_records(self) -> int:
        return sum(len(node.records)
                   for subnodes in self.nodes.values()
                   for node in subnodes)

    def total_requests(self) -> int:
        return sum(node.requests_handled
                   for subnodes in self.nodes.values()
                   for node in subnodes)
