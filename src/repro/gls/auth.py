"""Registration authentication for the GLS (paper §6.1 / §6.3).

Security requirement 2: "The Globe Location Service should accept only
object registrations (and deregistrations) from Globe Object Servers
which are officially part of the GDN."  The GLS runs over UDP, so the
TLS scheme cannot protect it (§6.3); the paper leaves the GLS-specific
scheme open.  We implement the obvious candidate: a shared-key HMAC
over a canonical rendering of each mutating request, verified by every
directory node configured with the GDN key.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional

__all__ = ["sign_mutation", "verify_mutation"]


def _canonical(operation: str, oid_hex: str, ca_wire: dict) -> bytes:
    fields = "|".join("%s=%s" % (key, ca_wire[key])
                      for key in sorted(ca_wire))
    return ("%s|%s|%s" % (operation, oid_hex, fields)).encode("utf-8")


def sign_mutation(key: bytes, operation: str, oid_hex: str,
                  ca_wire: dict) -> str:
    """Authentication tag for an insert/delete request."""
    return hmac.new(key, _canonical(operation, oid_hex, ca_wire),
                    hashlib.sha256).hexdigest()


def verify_mutation(key: Optional[bytes], operation: str, oid_hex: str,
                    ca_wire: dict, tag: Optional[str]) -> bool:
    """Check a request tag; trivially true when no key is configured."""
    if key is None:
        return True
    if not tag:
        return False
    expected = sign_mutation(key, operation, oid_hex, ca_wire)
    return hmac.compare_digest(expected, tag)
