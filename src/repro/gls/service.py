"""Client stub for the Globe Location Service (paper §3.4/§3.5).

Every Globe runtime and object server talks to the GLS through this
stub: lookups start at the directory node of the *client's own leaf
domain* (that is what makes lookup cost proportional to the distance of
the nearest replica), registrations go to the leaf node of the
registering replica's domain, and — per §6.1 — the stub allocates the
object identifier on first registration.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..core.ids import ObjectId
from ..sim.rpc import RpcFault, UdpRpcClient
from ..sim.topology import Topology
from ..sim.transport import Host
from ..sim.world import World
from .auth import sign_mutation
from .node import NodeHandle
from .tree import GlsTree

__all__ = ["GlsClient", "GlsError"]


class GlsError(Exception):
    """Raised when a GLS operation fails."""


class GlsClient:
    """Per-host access point to the location service."""

    def __init__(self, world: World, host: Host, tree: GlsTree,
                 auth_key: Optional[bytes] = None,
                 timeout: float = 8.0, retries: int = 2,
                 retry_policy=None):
        """``retry_policy`` (a :class:`~repro.sim.retry.RetryPolicy`)
        replaces the fixed ``timeout``/``retries`` discipline of the
        stub's UDP client — e.g. jittered exponential backoff so a
        partition heal is not met by a synchronized retry wave."""
        self.world = world
        self.host = host
        self.tree = tree
        self.auth_key = auth_key
        self.transport = tree.transport
        self.leaf: NodeHandle = tree.leaf_handle(host.site)
        self._client = UdpRpcClient(host, timeout=timeout, retries=retries,
                                    policy=retry_policy)
        self._rng = world.rng_for("gls-client-%s" % host.name)
        self.lookups = 0
        self.registrations = 0

    def _call(self, handle: NodeHandle, oid_hex: str, method: str,
              args: dict) -> Generator[Any, Any, Any]:
        host_name, port = handle.pick(oid_hex)
        target = self.world.hosts[host_name]
        try:
            if self.transport == "tcp":
                from ..sim import rpc as _rpc
                value = yield from _rpc.call(self.host, target, port,
                                             method, args)
            else:
                value = yield from self._client.call(target, port, method,
                                                     args)
        except RpcFault as fault:
            raise GlsError("%s failed: %s" % (method, fault.message))
        return value

    # -- lookup ----------------------------------------------------------------

    def lookup_detailed(self, oid_hex: str
                        ) -> Generator[Any, Any, Dict[str, Any]]:
        """Full lookup reply: contact addresses, hop count, found-at."""
        self.lookups += 1
        reply = yield from self._call(self.leaf, oid_hex, "lookup",
                                      {"oid": oid_hex, "hops": 0})
        return reply

    def lookup(self, oid_hex: str) -> Generator[Any, Any, List[dict]]:
        """Contact addresses for an OID, nearest-first.

        The GLS walk already finds the record nearest to the client;
        within that record we order addresses by topological distance
        from this host, so ``bind`` picks the closest replica.
        """
        reply = yield from self.lookup_detailed(oid_hex)
        wires = list(reply.get("cas", []))

        def distance(wire: dict) -> int:
            site_path = wire.get("site", "")
            try:
                site = self.world.topology.site(site_path)
            except Exception:  # noqa: BLE001 - unknown site sorts last
                return 99
            return int(Topology.separation(self.host.site, site))

        wires.sort(key=distance)
        return wires

    # -- registration -------------------------------------------------------------

    def register(self, oid_hex: Optional[str], ca_wire: dict,
                 store_level: int = 0
                 ) -> Generator[Any, Any, str]:
        """Insert a contact address; allocates an OID when none given.

        Paper §6.1: "As part of the registration, an object identifier
        is allocated for the DSO by the GLS."
        """
        if oid_hex is None:
            oid_hex = ObjectId.generate(self._rng).hex
        args = {"oid": oid_hex, "ca": ca_wire, "store_level": store_level}
        if self.auth_key is not None:
            args["auth"] = sign_mutation(self.auth_key, "insert", oid_hex,
                                         ca_wire)
        self.registrations += 1
        yield from self._call(self.leaf, oid_hex, "insert", args)
        return oid_hex

    def unregister(self, oid_hex: str, ca_wire: dict) -> Generator:
        args = {"oid": oid_hex, "ca": ca_wire}
        if self.auth_key is not None:
            args["auth"] = sign_mutation(self.auth_key, "delete", oid_hex,
                                         ca_wire)
        yield from self._call(self.leaf, oid_hex, "delete", args)

    def close(self) -> None:
        self._client.close()
