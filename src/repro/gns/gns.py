"""The Globe Name Service on DNS (paper §5).

Globe object names are human-readable, hierarchical and location
independent; the GNS maps them to object identifiers, which the GLS
then maps to contact addresses (the two-level naming scheme).  The
prototype reproduced here follows the paper exactly:

* a Globe object name has a one-to-one mapping to a DNS name
  (``/nl/vu/cs/globe/somePackage`` ↔ ``somepackage.globe.cs.vu.nl``);
* the GDN hides the DNS domain from users by registering all package
  names under one leaf domain, the **GDN Zone**: the user-visible name
  ``/apps/graphics/Gimp`` becomes ``gimp.graphics.apps.<gdn-zone>``;
* the object identifier is stored in a TXT record at that name.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.transport import Host
from ..sim.world import World
from .dns.records import DnsError, RRType, normalize_name
from .dns.resolver import CachingResolver, ResolutionError

__all__ = ["GlobeNameService", "GnsError", "object_name_to_dns",
           "dns_to_object_name", "encode_oid_txt", "decode_oid_txt",
           "DEFAULT_GDN_ZONE"]

#: The DNS leaf domain holding all GDN package names (§5 "GDN Zone").
DEFAULT_GDN_ZONE = "gdn.cs.vu.nl"

_TXT_PREFIX = "globe-oid="


class GnsError(Exception):
    """Raised for name-service failures (bad names, missing mappings)."""


def object_name_to_dns(object_name: str, zone: str) -> str:
    """Map a Globe object name to its DNS name in ``zone``.

    Path components are reversed and joined with dots, then suffixed
    with the zone — exactly the paper's scheme.  DNS syntax limits
    apply (the paper's first noted disadvantage): components must be
    valid DNS labels.
    """
    if not object_name.startswith("/"):
        raise GnsError("object names are absolute paths: %r" % object_name)
    components = [part for part in object_name.split("/") if part]
    if not components:
        raise GnsError("empty object name")
    dns_name = ".".join(reversed([part.lower() for part in components]))
    try:
        return normalize_name("%s.%s" % (dns_name, zone))
    except DnsError as exc:
        raise GnsError("object name %r does not fit DNS syntax: %s"
                       % (object_name, exc)) from exc


def dns_to_object_name(dns_name: str, zone: str) -> str:
    """Inverse of :func:`object_name_to_dns`."""
    dns_name = normalize_name(dns_name)
    zone = normalize_name(zone)
    if not dns_name.endswith("." + zone):
        raise GnsError("%r is not in the GDN zone %r" % (dns_name, zone))
    relative = dns_name[:-(len(zone) + 1)]
    return "/" + "/".join(reversed(relative.split(".")))


def encode_oid_txt(oid_hex: str) -> str:
    """TXT record payload carrying an encoded object identifier."""
    return _TXT_PREFIX + oid_hex


def decode_oid_txt(data: str) -> str:
    if not data.startswith(_TXT_PREFIX):
        raise GnsError("not a Globe OID TXT record: %r" % data)
    return data[len(_TXT_PREFIX):]


class GlobeNameService:
    """Client-side GNS: resolve object names to object identifiers."""

    def __init__(self, world: World, host: Host, resolver: CachingResolver,
                 zone: str = DEFAULT_GDN_ZONE):
        self.world = world
        self.host = host
        self.resolver = resolver
        self.zone = normalize_name(zone)
        self.resolutions = 0

    def to_dns_name(self, object_name: str) -> str:
        return object_name_to_dns(object_name, self.zone)

    def resolve(self, object_name: str) -> Generator[object, object, str]:
        """Resolve an object name to an OID (hex).

        ``oid_hex = yield from gns.resolve("/apps/graphics/Gimp")``
        """
        dns_name = self.to_dns_name(object_name)
        self.resolutions += 1
        try:
            data = yield from self.resolver.resolve_txt(dns_name)
        except ResolutionError as exc:
            raise GnsError("cannot resolve %r: %s"
                           % (object_name, exc)) from exc
        return decode_oid_txt(data)
