"""TSIG: shared-secret transaction signatures for DNS messages.

The paper (§6.3) relies on "BIND's TSIG security feature" to protect
zone updates between the GNS Naming Authority and the name servers.
We implement the essential mechanism: an HMAC over a canonical
rendering of the message, identified by a key name, verified by the
receiving server against its configured key ring.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Optional

from .records import DnsError

__all__ = ["TsigKey", "TsigKeyring", "sign_message", "verify_message"]


class TsigKey:
    """A named shared secret."""

    __slots__ = ("name", "secret")

    def __init__(self, name: str, secret: bytes):
        self.name = name
        self.secret = secret


class TsigKeyring:
    """The set of keys a server accepts."""

    def __init__(self):
        self._keys: Dict[str, bytes] = {}

    def add(self, key: TsigKey) -> None:
        self._keys[key.name] = key.secret

    def secret_for(self, key_name: str) -> Optional[bytes]:
        return self._keys.get(key_name)


def _canonical(message: dict) -> bytes:
    """A deterministic rendering of the signable message fields."""

    def render(value) -> str:
        if isinstance(value, dict):
            return "{%s}" % ",".join(
                "%s:%s" % (key, render(value[key]))
                for key in sorted(value))
        if isinstance(value, (list, tuple)):
            return "[%s]" % ",".join(render(item) for item in value)
        return repr(value)

    signable = {key: value for key, value in message.items()
                if key != "tsig"}
    return render(signable).encode("utf-8")


def sign_message(message: dict, key: TsigKey) -> dict:
    """Return a copy of ``message`` with a ``tsig`` stanza attached."""
    mac = hmac.new(key.secret, _canonical(message),
                   hashlib.sha256).hexdigest()
    signed = dict(message)
    signed["tsig"] = {"key": key.name, "mac": mac}
    return signed


def verify_message(message: dict, keyring: TsigKeyring) -> bool:
    """Check the ``tsig`` stanza against the server's key ring."""
    stanza = message.get("tsig")
    if not isinstance(stanza, dict):
        return False
    secret = keyring.secret_for(stanza.get("key", ""))
    if secret is None:
        return False
    expected = hmac.new(secret, _canonical(message),
                        hashlib.sha256).hexdigest()
    return hmac.compare_digest(expected, stanza.get("mac", ""))
