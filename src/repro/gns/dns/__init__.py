"""An in-simulator DNS: the substrate under the Globe Name Service (§5)."""

from .records import (DnsError, ResourceRecord, RRType, is_subdomain,
                      name_labels, normalize_name, parent_name)
from .resolver import CachingResolver, ResolutionError, ResolutionResult
from .server import DNS_PORT, AuthoritativeServer
from .tsig import TsigKey, TsigKeyring, sign_message, verify_message
from .zone import Rcode, Zone, ZoneAnswer

__all__ = [
    "DnsError", "ResourceRecord", "RRType", "is_subdomain", "name_labels",
    "normalize_name", "parent_name",
    "CachingResolver", "ResolutionError", "ResolutionResult",
    "DNS_PORT", "AuthoritativeServer",
    "TsigKey", "TsigKeyring", "sign_message", "verify_message",
    "Rcode", "Zone", "ZoneAnswer",
]
