"""DNS zones: authoritative data plus delegation logic.

A zone owns all names at or under its origin except those it has
delegated away with NS records.  ``answer`` implements the
authoritative lookup algorithm the servers use: exact answer, CNAME
chain start, referral at a zone cut, NODATA, or NXDOMAIN.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .records import (DnsError, RRType, ResourceRecord, is_subdomain,
                      normalize_name, parent_name)

__all__ = ["Zone", "Rcode", "ZoneAnswer"]


class Rcode:
    """Response codes (the subset we need)."""

    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    REFUSED = "REFUSED"
    NOTAUTH = "NOTAUTH"
    BADSIG = "BADSIG"


class ZoneAnswer:
    """Result of an authoritative lookup inside one zone."""

    def __init__(self, rcode: str, answers: List[ResourceRecord],
                 referral: Optional[List[ResourceRecord]] = None,
                 authoritative: bool = True):
        self.rcode = rcode
        self.answers = answers
        #: NS records of a child zone when the name was delegated away.
        self.referral = referral or []
        self.authoritative = authoritative

    @property
    def is_referral(self) -> bool:
        return bool(self.referral)


class Zone:
    """Authoritative data for one DNS zone."""

    def __init__(self, origin: str, primary_host: str,
                 default_ttl: int = 300, serial: int = 1):
        self.origin = normalize_name(origin)
        self.primary_host = primary_host
        self.default_ttl = default_ttl
        self.serial = serial
        self._records: Dict[Tuple[str, str], List[ResourceRecord]] = {}

    def __repr__(self) -> str:
        return "Zone(%r, serial=%d)" % (self.origin or ".", self.serial)

    # -- record management ----------------------------------------------------

    def _check_in_zone(self, name: str) -> str:
        name = normalize_name(name)
        if not is_subdomain(name, self.origin):
            raise DnsError("%r is outside zone %r" % (name, self.origin))
        return name

    def add_record(self, record: ResourceRecord) -> None:
        self._check_in_zone(record.name)
        rrset = self._records.setdefault(record.key(), [])
        if record not in rrset:
            rrset.append(record)

    def remove_rrset(self, name: str, rtype: RRType) -> bool:
        name = self._check_in_zone(name)
        return self._records.pop((name, RRType(rtype).value), None) is not None

    def remove_record(self, record: ResourceRecord) -> bool:
        rrset = self._records.get(record.key())
        if not rrset or record not in rrset:
            return False
        rrset.remove(record)
        if not rrset:
            del self._records[record.key()]
        return True

    def rrset(self, name: str, rtype: RRType) -> List[ResourceRecord]:
        name = normalize_name(name)
        return list(self._records.get((name, RRType(rtype).value), []))

    def names(self) -> set:
        return {name for name, _rtype in self._records}

    def record_count(self) -> int:
        return sum(len(rrset) for rrset in self._records.values())

    def bump_serial(self) -> int:
        self.serial += 1
        return self.serial

    # -- authoritative lookup -------------------------------------------------

    def _find_zone_cut(self, qname: str) -> Optional[str]:
        """The delegation point covering ``qname``, if any.

        A name is delegated away when an NS rrset exists at an ancestor
        of ``qname`` that lies strictly below this zone's origin.
        """
        name = qname
        while name != self.origin:
            if (name, RRType.NS.value) in self._records:
                return name
            if not name:
                break
            name = parent_name(name)
            if not is_subdomain(name, self.origin):
                break
        return None

    def answer(self, qname: str, qtype: RRType) -> ZoneAnswer:
        """Answer a query for a name inside this zone."""
        qname = normalize_name(qname)
        if not is_subdomain(qname, self.origin):
            return ZoneAnswer(Rcode.REFUSED, [])
        cut = self._find_zone_cut(qname)
        if cut is not None:
            return ZoneAnswer(Rcode.NOERROR, [],
                              referral=self.rrset(cut, RRType.NS),
                              authoritative=False)
        exact = self.rrset(qname, qtype)
        if exact:
            return ZoneAnswer(Rcode.NOERROR, exact)
        cname = self.rrset(qname, RRType.CNAME)
        if cname and qtype != RRType.CNAME:
            return ZoneAnswer(Rcode.NOERROR, cname)
        if qname in self.names():
            return ZoneAnswer(Rcode.NOERROR, [])  # NODATA
        return ZoneAnswer(Rcode.NXDOMAIN, [])

    # -- zone transfer ----------------------------------------------------------

    def to_wire(self) -> dict:
        """Full zone contents (AXFR payload)."""
        return {
            "origin": self.origin,
            "primary": self.primary_host,
            "serial": self.serial,
            "default_ttl": self.default_ttl,
            "records": [record.to_wire()
                        for rrset in self._records.values()
                        for record in rrset],
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Zone":
        zone = cls(wire["origin"], wire["primary"],
                   default_ttl=wire.get("default_ttl", 300),
                   serial=wire["serial"])
        for record_wire in wire.get("records", []):
            zone.add_record(ResourceRecord.from_wire(record_wire))
        return zone
