"""Iterative caching DNS resolver.

The client-side half of the DNS substrate: starts at the root hints,
follows referrals down the delegation tree, and caches both positive
answers and referral NS sets according to their TTLs.  Caching is what
makes the paper's DNS-based name service scale (§5: "This allows the
DNS to cache entries at client-side resolvers"), and switching it off
is the ablation in experiment E7.

Simplification (documented in DESIGN.md): NS record data names a
simulated host directly, so no glue A-record chasing is modelled.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ...sim.rpc import RpcTimeout, UdpRpcClient
from ...sim.transport import Host
from ...sim.world import World
from .records import DnsError, RRType, ResourceRecord, normalize_name
from .server import DNS_PORT
from .zone import Rcode

__all__ = ["CachingResolver", "ResolutionError", "ResolutionResult"]

#: How long a negative (NXDOMAIN/NODATA) answer is cached, seconds.
NEGATIVE_TTL = 30.0
#: Maximum referral-chasing steps before declaring a loop.
MAX_STEPS = 16


class ResolutionError(DnsError):
    """The resolver could not complete a resolution."""


class ResolutionResult:
    """Outcome of one resolution."""

    def __init__(self, rcode: str, records: List[ResourceRecord],
                 from_cache: bool):
        self.rcode = rcode
        self.records = records
        self.from_cache = from_cache

    @property
    def ok(self) -> bool:
        return self.rcode == Rcode.NOERROR and bool(self.records)


class CachingResolver:
    """A per-host iterative resolver with a TTL cache."""

    def __init__(self, world: World, host: Host,
                 root_hints: List[Tuple[str, int]],
                 cache_enabled: bool = True):
        if not root_hints:
            raise ResolutionError("resolver needs at least one root hint")
        self.world = world
        self.host = host
        self.root_hints = list(root_hints)
        self.cache_enabled = cache_enabled
        self._client = UdpRpcClient(host, timeout=3.0, retries=2)
        #: (name, type) -> (expires_at, rcode, [record wires])
        self._cache: Dict[Tuple[str, str], Tuple[float, str, List[dict]]] = {}
        self.queries_sent = 0
        self.cache_hits = 0
        self.resolutions = 0

    # -- cache ---------------------------------------------------------------

    def _cache_get(self, qname: str, qtype: RRType
                   ) -> Optional[Tuple[str, List[dict]]]:
        if not self.cache_enabled:
            return None
        entry = self._cache.get((qname, qtype.value))
        if entry is None:
            return None
        expires_at, rcode, wires = entry
        if self.world.now > expires_at:
            del self._cache[(qname, qtype.value)]
            return None
        return rcode, wires

    def _cache_put(self, qname: str, qtype: RRType, rcode: str,
                   records: List[dict]) -> None:
        if not self.cache_enabled:
            return
        if records:
            ttl = min(record["ttl"] for record in records)
        else:
            ttl = NEGATIVE_TTL
        if ttl <= 0:
            return
        self._cache[(qname, qtype.value)] = (
            self.world.now + ttl, rcode, list(records))

    def flush_cache(self) -> None:
        self._cache.clear()

    def _best_cached_servers(self, qname: str) -> List[Tuple[str, int]]:
        """Start servers: the deepest cached delegation covering
        ``qname``, falling back to the root hints."""
        name = qname
        while name:
            cached = self._cache_get(name, RRType.NS)
            if cached is not None:
                _rcode, wires = cached
                if wires:
                    return [(record["data"], DNS_PORT) for record in wires]
            _first, _dot, name = name.partition(".")
        return list(self.root_hints)

    # -- resolution -------------------------------------------------------------

    def resolve(self, name: str, rtype: RRType = RRType.A
                ) -> Generator[object, object, ResolutionResult]:
        """Resolve ``name``/``rtype`` starting from the root.

        ``result = yield from resolver.resolve("pkg.gdn.vu.nl", RRType.TXT)``
        """
        qname = normalize_name(name)
        qtype = RRType(rtype)
        self.resolutions += 1
        cached = self._cache_get(qname, qtype)
        if cached is not None:
            self.cache_hits += 1
            rcode, wires = cached
            return ResolutionResult(
                rcode, [ResourceRecord.from_wire(w) for w in wires],
                from_cache=True)
        servers = self._best_cached_servers(qname)
        for _step in range(MAX_STEPS):
            reply = yield from self._query_any(servers, qname, qtype)
            rcode = reply.get("rcode")
            answers = reply.get("answers", [])
            referral = reply.get("referral", [])
            if rcode == Rcode.NXDOMAIN:
                self._cache_put(qname, qtype, rcode, [])
                return ResolutionResult(rcode, [], from_cache=False)
            if rcode != Rcode.NOERROR:
                raise ResolutionError("server returned %s for %r"
                                      % (rcode, qname))
            if answers:
                records = [ResourceRecord.from_wire(w) for w in answers]
                cnames = [r for r in records if r.rtype == RRType.CNAME]
                if cnames and qtype != RRType.CNAME:
                    # Follow the alias chain.
                    result = yield from self.resolve(cnames[0].data, qtype)
                    return result
                self._cache_put(qname, qtype, rcode, answers)
                return ResolutionResult(rcode, records, from_cache=False)
            if referral:
                # Cache the referral under the delegated name, then
                # descend to the child zone's servers.
                child = referral[0]["name"]
                self._cache_put(child, RRType.NS, Rcode.NOERROR, referral)
                servers = [(record["data"], DNS_PORT) for record in referral]
                continue
            # NODATA: the name exists without this record type.
            self._cache_put(qname, qtype, rcode, [])
            return ResolutionResult(rcode, [], from_cache=False)
        raise ResolutionError("referral loop resolving %r" % qname)

    def resolve_txt(self, name: str) -> Generator[object, object, str]:
        """Resolve a TXT record and return its data (GNS helper)."""
        result = yield from self.resolve(name, RRType.TXT)
        if not result.ok:
            raise ResolutionError("no TXT record for %r (%s)"
                                  % (name, result.rcode))
        return result.records[0].data

    def _query_any(self, servers: List[Tuple[str, int]], qname: str,
                   qtype: RRType) -> Generator:
        """Try candidate servers until one answers.

        The starting point rotates per query, spreading load across a
        zone's authoritative servers (how the paper's GDN Zone
        "distribute[s] the load by creating multiple authoritative name
        servers", §5) while dead servers are simply skipped.
        """
        last_error: Optional[Exception] = None
        if len(servers) > 1:
            offset = self.queries_sent % len(servers)
            servers = servers[offset:] + servers[:offset]
        for host_name, port in servers:
            target = self.world.hosts.get(host_name)
            if target is None or not target.up:
                continue
            try:
                self.queries_sent += 1
                reply = yield from self._client.call(
                    target, port, "query", {"name": qname,
                                            "type": qtype.value})
                return reply
            except RpcTimeout as exc:
                last_error = exc
        raise ResolutionError(
            "no DNS server reachable for %r: %s" % (qname, last_error))

    def close(self) -> None:
        self._client.close()
