"""Authoritative DNS servers: queries, dynamic update, NOTIFY/AXFR.

One server process can host several zones, as primary (accepting
RFC 2136 dynamic updates, TSIG-verified, and notifying secondaries) or
as secondary (fetching the zone by transfer when notified — how the
paper's GDN Zone "distribute[s] the load by creating multiple
authoritative name servers", §5).

Protocol methods (datagram RPC on port 53):

* ``query``  — {name, type} → {rcode, answers, referral, authoritative}
* ``update`` — {zone, adds, deletes, tsig} → {rcode, serial}
* ``notify`` — {zone, serial}: secondary schedules a transfer
* ``axfr``   — {zone} → full zone contents
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ...sim.rpc import RpcContext, UdpRpcClient, UdpRpcServer
from ...sim.transport import Host
from ...sim.world import World
from .records import RRType, ResourceRecord, is_subdomain, normalize_name
from .tsig import TsigKeyring, verify_message
from .zone import Rcode, Zone

__all__ = ["AuthoritativeServer", "DNS_PORT"]

DNS_PORT = 53


class AuthoritativeServer:
    """A DNS server daemon hosting primary and secondary zones."""

    def __init__(self, world: World, host: Host, port: int = DNS_PORT,
                 keyring: Optional[TsigKeyring] = None,
                 require_tsig_for_updates: bool = True,
                 refresh_interval: Optional[float] = None):
        """``refresh_interval`` adds classic SOA-style periodic zone
        refresh for secondaries, catching updates whose NOTIFY was
        lost (UDP)."""
        self.world = world
        self.host = host
        self.port = port
        self.keyring = keyring
        self.require_tsig_for_updates = require_tsig_for_updates
        self.refresh_interval = refresh_interval
        self.zones: Dict[str, Zone] = {}
        self.roles: Dict[str, str] = {}
        #: primary zones: origin -> secondary endpoints to NOTIFY.
        self.secondaries: Dict[str, List[Tuple[str, int]]] = {}
        #: secondary zones: origin -> primary endpoint for AXFR.
        self.primary_endpoint: Dict[str, Tuple[str, int]] = {}
        self._server: Optional[UdpRpcServer] = None
        self._client: Optional[UdpRpcClient] = None
        self.queries_served = 0
        self.updates_applied = 0
        self.updates_rejected = 0
        self.transfers_served = 0
        self.transfers_fetched = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        server = UdpRpcServer(self.host, self.port)
        server.register("query", self._handle_query)
        server.register("update", self._handle_update)
        server.register("notify", self._handle_notify)
        server.register("axfr", self._handle_axfr)
        server.start()
        self._server = server
        self._client = UdpRpcClient(self.host, timeout=3.0, retries=2)
        if self.refresh_interval is not None:
            self.host.spawn(self._refresh_loop())

    def _refresh_loop(self) -> Generator:
        """Periodically re-check each secondary zone against its
        primary's serial (cheap when nothing changed)."""
        while True:
            yield self.world.sim.timeout(self.refresh_interval)
            for origin, role in list(self.roles.items()):
                if role != "secondary":
                    continue
                current = self.zones.get(origin)
                endpoint = self.primary_endpoint[origin]
                target = self.world.hosts.get(endpoint[0])
                if target is None or not target.up:
                    continue
                try:
                    reply = yield from self._client.call(
                        target, endpoint[1], "axfr", {"zone": origin})
                except Exception:  # noqa: BLE001 - retried next round
                    continue
                if reply.get("rcode") != Rcode.NOERROR:
                    continue
                fetched = Zone.from_wire(reply["zone"])
                if current is None or fetched.serial > current.serial:
                    self.zones[origin] = fetched
                    self.transfers_fetched += 1

    def stop(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self._client is not None:
            self._client.close()
            self._client = None

    @property
    def endpoint(self) -> Tuple[str, int]:
        return (self.host.name, self.port)

    # -- zone configuration -------------------------------------------------------

    def add_primary_zone(self, zone: Zone,
                         secondaries: Optional[List[Tuple[str, int]]] = None
                         ) -> None:
        self.zones[zone.origin] = zone
        self.roles[zone.origin] = "primary"
        self.secondaries[zone.origin] = list(secondaries or [])

    def add_secondary_zone(self, origin: str,
                           primary: Tuple[str, int]) -> None:
        """Declare a secondary zone; the initial copy is fetched when
        the simulation runs (call :meth:`initial_transfers`)."""
        origin = normalize_name(origin)
        self.roles[origin] = "secondary"
        self.primary_endpoint[origin] = tuple(primary)

    def initial_transfers(self) -> Generator:
        """Fetch initial copies of all secondary zones."""
        for origin, role in self.roles.items():
            if role == "secondary" and origin not in self.zones:
                yield from self._fetch_zone(origin)

    # -- query handling ---------------------------------------------------------

    def _zone_for(self, qname: str) -> Optional[Zone]:
        """The most specific hosted zone containing ``qname``."""
        best: Optional[Zone] = None
        for origin, zone in self.zones.items():
            if is_subdomain(qname, origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    def _handle_query(self, ctx: RpcContext, args: dict) -> dict:
        self.queries_served += 1
        qname = normalize_name(args.get("name", ""))
        qtype = RRType(args.get("type", "A"))
        zone = self._zone_for(qname)
        if zone is None:
            return {"rcode": Rcode.REFUSED, "answers": [], "referral": [],
                    "authoritative": False}
        answer = zone.answer(qname, qtype)
        return {
            "rcode": answer.rcode,
            "answers": [record.to_wire() for record in answer.answers],
            "referral": [record.to_wire() for record in answer.referral],
            "authoritative": answer.authoritative,
            "zone": zone.origin,
        }

    # -- dynamic update (RFC 2136) ---------------------------------------------

    def _handle_update(self, ctx: RpcContext, args: dict) -> dict:
        origin = normalize_name(args.get("zone", ""))
        zone = self.zones.get(origin)
        if zone is None or self.roles.get(origin) != "primary":
            self.updates_rejected += 1
            return {"rcode": Rcode.NOTAUTH}
        if self.require_tsig_for_updates:
            if self.keyring is None or not verify_message(args, self.keyring):
                self.updates_rejected += 1
                return {"rcode": Rcode.BADSIG}
        for delete in args.get("deletes", []):
            zone.remove_rrset(delete["name"], RRType(delete["type"]))
        for add in args.get("adds", []):
            zone.add_record(ResourceRecord.from_wire(add))
        serial = zone.bump_serial()
        self.updates_applied += 1
        for endpoint in self.secondaries.get(origin, []):
            self.host.spawn(self._notify_one(endpoint, origin, serial))
        return {"rcode": Rcode.NOERROR, "serial": serial}

    def _notify_one(self, endpoint: Tuple[str, int], origin: str,
                    serial: int) -> Generator:
        host_name, port = endpoint
        target = self.world.hosts.get(host_name)
        if target is None:
            return
        try:
            yield from self._client.call(target, port, "notify",
                                         {"zone": origin, "serial": serial})
        except Exception:  # noqa: BLE001 - notify is best-effort
            pass

    # -- NOTIFY / AXFR ----------------------------------------------------------

    def _handle_notify(self, ctx: RpcContext, args: dict) -> Generator:
        origin = normalize_name(args.get("zone", ""))
        if self.roles.get(origin) != "secondary":
            return {"rcode": Rcode.NOTAUTH}
        current = self.zones.get(origin)
        if current is not None and current.serial >= args.get("serial", 0):
            return {"rcode": Rcode.NOERROR, "refreshed": False}
        yield from self._fetch_zone(origin)
        return {"rcode": Rcode.NOERROR, "refreshed": True}

    def _handle_axfr(self, ctx: RpcContext, args: dict) -> dict:
        origin = normalize_name(args.get("zone", ""))
        zone = self.zones.get(origin)
        if zone is None:
            return {"rcode": Rcode.NOTAUTH}
        self.transfers_served += 1
        return {"rcode": Rcode.NOERROR, "zone": zone.to_wire()}

    def _fetch_zone(self, origin: str) -> Generator:
        host_name, port = self.primary_endpoint[origin]
        target = self.world.hosts.get(host_name)
        if target is None:
            return
        try:
            reply = yield from self._client.call(target, port, "axfr",
                                                 {"zone": origin})
        except Exception:  # noqa: BLE001 - retried on next NOTIFY
            return
        if reply.get("rcode") != Rcode.NOERROR:
            return
        fetched = Zone.from_wire(reply["zone"])
        current = self.zones.get(origin)
        if current is None or fetched.serial > current.serial:
            self.zones[origin] = fetched
            self.transfers_fetched += 1
