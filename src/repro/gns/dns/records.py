"""DNS resource records and name utilities.

The paper's prototype Globe Name Service runs on BIND8 and stores
Globe object identifiers in TXT records (§5).  This module provides
the data model for our in-simulator DNS: domain names (normalised,
dot-separated, lower-case, no trailing dot), record types, and
resource records with TTLs.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

__all__ = ["RRType", "ResourceRecord", "normalize_name", "is_subdomain",
           "name_labels", "parent_name", "DnsError"]


class DnsError(Exception):
    """Raised for malformed names, records or protocol violations."""


class RRType(str, enum.Enum):
    """The record types this substrate supports."""

    A = "A"          # host address (host name in the simulated world)
    NS = "NS"        # delegation to a name-server host
    TXT = "TXT"      # free text — carries encoded Globe OIDs (§5)
    SOA = "SOA"      # zone authority metadata
    CNAME = "CNAME"  # alias


def normalize_name(name: str) -> str:
    """Canonical form: lower-case, no surrounding dots, no empties.

    The root is the empty string.
    """
    name = name.strip().lower().strip(".")
    if not name:
        return ""
    labels = name.split(".")
    for label in labels:
        if not label or len(label) > 63:
            raise DnsError("bad DNS label in %r" % name)
        # Paper §5: DNS restricts name syntax; enforce it here.
        if not all(c.isalnum() or c == "-" for c in label):
            raise DnsError("illegal character in DNS label %r" % label)
    if len(name) > 253:
        raise DnsError("DNS name too long: %r" % name)
    return ".".join(labels)


def name_labels(name: str) -> List[str]:
    return name.split(".") if name else []


def is_subdomain(name: str, ancestor: str) -> bool:
    """True if ``name`` equals or falls under ``ancestor``."""
    if ancestor == "":
        return True
    return name == ancestor or name.endswith("." + ancestor)


def parent_name(name: str) -> str:
    if not name:
        raise DnsError("the root has no parent")
    _first, _dot, rest = name.partition(".")
    return rest


class ResourceRecord:
    """One DNS resource record."""

    __slots__ = ("name", "rtype", "ttl", "data")

    def __init__(self, name: str, rtype: RRType, ttl: int, data: str):
        self.name = normalize_name(name)
        self.rtype = RRType(rtype)
        if ttl < 0:
            raise DnsError("negative TTL")
        self.ttl = int(ttl)
        self.data = str(data)

    def key(self) -> Tuple[str, str]:
        return (self.name, self.rtype.value)

    def to_wire(self) -> dict:
        return {"name": self.name, "type": self.rtype.value,
                "ttl": self.ttl, "data": self.data}

    @classmethod
    def from_wire(cls, wire: dict) -> "ResourceRecord":
        try:
            return cls(wire["name"], RRType(wire["type"]), wire["ttl"],
                       wire["data"])
        except KeyError as exc:
            raise DnsError("bad record wire form: missing %s" % exc) from exc

    def __eq__(self, other) -> bool:
        return (isinstance(other, ResourceRecord)
                and self.to_wire() == other.to_wire())

    def __hash__(self) -> int:
        return hash((self.name, self.rtype, self.ttl, self.data))

    def __repr__(self) -> str:
        return ("RR(%s %s %ds %r)"
                % (self.name or ".", self.rtype.value, self.ttl, self.data))
