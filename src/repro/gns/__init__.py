"""The Globe Name Service: object names -> object identifiers (§5)."""

from . import dns
from .authority import AUTHORITY_PORT, NamingAuthority
from .gns import (DEFAULT_GDN_ZONE, GlobeNameService, GnsError,
                  decode_oid_txt, dns_to_object_name, encode_oid_txt,
                  object_name_to_dns)

__all__ = [
    "dns", "AUTHORITY_PORT", "NamingAuthority",
    "DEFAULT_GDN_ZONE", "GlobeNameService", "GnsError",
    "decode_oid_txt", "dns_to_object_name", "encode_oid_txt",
    "object_name_to_dns",
]
