"""The GNS Naming Authority for the GDN Zone (paper §5, §6.1).

"This is the daemon that sends DNS UPDATE messages to the name servers
responsible for the GDN Zone, in response to add and remove requests
from clients."  Requirements implemented here:

* only moderator tools operated by official GDN moderators may submit
  updates (security requirement 3) — enforced through the authorizer
  callback over the authenticated channel principal;
* updates to the zone are *batched* ("The number of updates to our
  zone can be kept low by batching them"): requests are queued and one
  DNS UPDATE message carries the whole batch, signed with TSIG (§6.3).

Callers' RPCs complete when their batch has been committed to the
primary, so a successful ``add_name`` means the name is live.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Tuple

from ..sim.kernel import AnyOf, Event
from ..sim.rpc import RpcContext, RpcServer, UdpRpcClient
from ..sim.transport import Host
from ..sim.world import World
from .dns.records import RRType
from .dns.tsig import TsigKey, sign_message
from .dns.zone import Rcode
from .gns import (DEFAULT_GDN_ZONE, GnsError, encode_oid_txt,
                  object_name_to_dns)

__all__ = ["NamingAuthority", "AUTHORITY_PORT"]

AUTHORITY_PORT = 5355

#: Default TTL for package name TXT records: mappings are stable
#: because of the two-level naming scheme (§5), so a long TTL is safe.
NAME_TTL = 3600


class _PendingOp:
    """One queued name mutation awaiting its batch commit."""

    __slots__ = ("kind", "dns_name", "oid_hex", "done")

    def __init__(self, kind: str, dns_name: str, oid_hex: Optional[str],
                 done: Event):
        self.kind = kind
        self.dns_name = dns_name
        self.oid_hex = oid_hex
        self.done = done


class NamingAuthority:
    """The daemon authorised to mutate the GDN Zone."""

    def __init__(self, world: World, host: Host,
                 primary: Tuple[str, int], tsig_key: TsigKey,
                 zone: str = DEFAULT_GDN_ZONE,
                 port: int = AUTHORITY_PORT,
                 channel_factory: Optional[Callable] = None,
                 authorizer: Optional[Callable[[RpcContext], bool]] = None,
                 batch_window: float = 0.5, max_batch: int = 50):
        self.world = world
        self.host = host
        self.primary = tuple(primary)
        self.tsig_key = tsig_key
        self.zone = zone
        self.port = port
        self.channel_factory = channel_factory
        self.authorizer = authorizer
        self.batch_window = batch_window
        self.max_batch = max_batch
        self._queue = world.sim.store()
        self._carry_get: Optional[Event] = None
        self._client: Optional[UdpRpcClient] = None
        self._server: Optional[RpcServer] = None
        self.updates_sent = 0
        self.names_added = 0
        self.names_removed = 0
        self.requests_rejected = 0

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        server = RpcServer(self.host, self.port,
                           channel_factory=self.channel_factory)
        server.register("add_name", self._handle_add_name)
        server.register("remove_name", self._handle_remove_name)
        server.register("stats", self._handle_stats)
        server.start()
        self._server = server
        self._client = UdpRpcClient(self.host, timeout=3.0, retries=2)
        self.host.spawn(self._flush_loop())

    def stop(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None

    # -- request handling ----------------------------------------------------------

    def _authorize(self, ctx: RpcContext) -> None:
        if self.authorizer is not None and not self.authorizer(ctx):
            self.requests_rejected += 1
            raise GnsError("principal %r may not modify the GDN zone"
                           % (ctx.peer_principal,))

    def _enqueue(self, op: _PendingOp) -> None:
        self._queue.put(op)

    def _handle_add_name(self, ctx: RpcContext, args: dict) -> Generator:
        self._authorize(ctx)
        dns_name = object_name_to_dns(args["name"], self.zone)
        done = self.world.sim.event()
        self._enqueue(_PendingOp("add", dns_name, args["oid"], done))
        serial = yield done
        self.names_added += 1
        return {"dns_name": dns_name, "serial": serial}

    def _handle_remove_name(self, ctx: RpcContext, args: dict) -> Generator:
        self._authorize(ctx)
        dns_name = object_name_to_dns(args["name"], self.zone)
        done = self.world.sim.event()
        self._enqueue(_PendingOp("remove", dns_name, None, done))
        serial = yield done
        self.names_removed += 1
        return {"dns_name": dns_name, "serial": serial}

    def _handle_stats(self, ctx: RpcContext, args: dict) -> dict:
        return {"updates_sent": self.updates_sent,
                "names_added": self.names_added,
                "names_removed": self.names_removed,
                "rejected": self.requests_rejected}

    # -- batching -------------------------------------------------------------------

    def _flush_loop(self) -> Generator:
        """Collect requests into batches and commit each as one UPDATE."""
        while True:
            get_event = self._carry_get or self._queue.get()
            self._carry_get = None
            first = yield get_event
            batch: List[_PendingOp] = [first]
            deadline = self.world.now + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - self.world.now
                if remaining <= 0:
                    break
                next_get = self._queue.get()
                timer = self.world.sim.timeout(remaining)
                yield AnyOf(self.world.sim, [next_get, timer])
                if next_get.triggered:
                    timer.cancel()  # batch filled before the window closed
                    batch.append(next_get.value)
                else:
                    # Keep the armed get for the next batch round.
                    self._carry_get = next_get
                    break
            yield from self._commit(batch)

    def _commit(self, batch: List[_PendingOp]) -> Generator:
        adds = []
        deletes = []
        for op in batch:
            if op.kind == "add":
                adds.append({"name": op.dns_name, "type": RRType.TXT.value,
                             "ttl": NAME_TTL,
                             "data": encode_oid_txt(op.oid_hex)})
            else:
                deletes.append({"name": op.dns_name,
                                "type": RRType.TXT.value})
        message = {"zone": self.zone, "adds": adds, "deletes": deletes}
        signed = sign_message(message, self.tsig_key)
        primary_host = self.world.hosts[self.primary[0]]
        try:
            reply = yield from self._client.call(
                primary_host, self.primary[1], "update", signed)
        except Exception as exc:  # noqa: BLE001 - fail the whole batch
            for op in batch:
                if not op.done.triggered:
                    op.done.fail(GnsError("zone update failed: %s" % exc))
            return
        self.updates_sent += 1
        if reply.get("rcode") != Rcode.NOERROR:
            for op in batch:
                if not op.done.triggered:
                    op.done.fail(GnsError(
                        "zone update rejected: %s" % reply.get("rcode")))
            return
        for op in batch:
            if not op.done.triggered:
                op.done.succeed(reply.get("serial"))
