"""Experiment E7 — §5: the DNS-based Globe Name Service.

Measures the properties the paper claims make DNS a workable GNS
prototype:

* resolver caching makes repeated name resolutions nearly free
  ("DNS … cache entries at client-side resolvers");
* multiple authoritative servers spread the query load over regions;
* the naming authority batches zone updates ("The number of updates to
  our zone can be kept low by batching them");
* two-level naming stability: moving replicas touches only the GLS,
  never the name mapping, so caches stay valid.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import Table, format_seconds
from ..gdn.deployment import GdnDeployment
from ..sim import rpc
from ..sim.topology import Topology
from ..workloads.loadgen import BurstSchedule, LoadStats
from ..workloads.scenario import ClosedLoopScenario, OpenLoopScenario

__all__ = ["run_gns_resolution_experiment", "format_result"]


def run_gns_resolution_experiment(seed: int = 29, name_count: int = 40,
                                  batch_windows=(0.0, 0.5, 2.0)) -> Dict:
    topology = Topology.balanced(regions=3, countries=2, cities=1, sites=2)
    result: Dict = {"name_count": name_count}

    # -- batching: one authority, varying windows -----------------------
    batching_rows = []
    for window in batch_windows:
        gdn = GdnDeployment(topology=topology, seed=seed, secure=False,
                            batch_window=window)
        gdn.initial_sync()
        tool_host = gdn.world.host("tool", "r0/c0/m0/s1")
        updates_before = gdn.dns_primary.updates_applied

        channel = gdn.run(rpc.RpcChannel.open(
            tool_host, gdn.authority.host, gdn.authority.port),
            host=tool_host)

        def add_name(arrival, channel=channel):
            yield from channel.call(
                "add_name", {"name": "/apps/pkg%03d" % arrival.index,
                             "oid": "%040x" % arrival.index})

        # The tool pushes all registrations concurrently: an open-loop
        # burst over one channel.
        scenario = OpenLoopScenario(BurstSchedule(), name_count,
                                    label="gns-burst")
        stats = LoadStats()
        start = gdn.world.now
        gdn.run(scenario.drive(gdn.world.sim, add_name,
                               rng=gdn.world.rng_for("e7-burst"),
                               stats=stats))
        assert stats.ok == name_count
        channel.close()
        batching_rows.append({
            "window": window,
            "updates": gdn.dns_primary.updates_applied - updates_before,
            "elapsed": gdn.world.now - start,
        })
    result["batching"] = batching_rows

    # -- resolution latency: cold vs warm caches -----------------------------
    gdn = GdnDeployment(topology=topology, seed=seed, secure=False,
                        batch_window=0.1)
    gdn.initial_sync()
    tool_host = gdn.world.host("tool", "r0/c0/m0/s1")

    def add_name(arrival):
        yield from rpc.call(tool_host, gdn.authority.host,
                            gdn.authority.port, "add_name",
                            {"name": "/apps/pkg%03d" % arrival.index,
                             "oid": "%040x" % arrival.index})

    one_by_one = ClosedLoopScenario(clients=1, think_time=0.0,
                                    requests_per_client=name_count,
                                    label="gns-register")
    gdn.run(one_by_one.drive(gdn.world.sim, add_name,
                             rng=gdn.world.rng_for("e7-register")))
    gdn.settle(5.0)

    user_host = gdn.world.host("user", "r2/c1/m0/s1")
    gns = gdn._name_service(user_host)

    def resolve(arrival):
        yield from gns.resolve("/apps/pkg%03d" % arrival.index)

    # One user resolving every name twice: first pass cold, second
    # pass entirely out of the resolver cache.  One shared stats
    # bundle on the deployment registry; each pass is a phase window
    # and its latency histogram is the window's delta.
    stats = LoadStats(registry=gdn.metrics, prefix="e7")

    def resolve_pass(label):
        scenario = ClosedLoopScenario(clients=1, think_time=0.0,
                                      requests_per_client=name_count,
                                      label="gns-" + label)
        window = gdn.metrics.phase(label, now=gdn.world.now)
        gdn.run(scenario.drive(gdn.world.sim, resolve,
                               rng=gdn.world.rng_for("e7-" + label),
                               stats=stats))
        window.close(now=gdn.world.now)
        point = stats.phase_summary(window)
        assert point["ok"] == name_count
        return window.delta(stats.latency.name)

    result["cold"] = resolve_pass("cold")
    result["warm"] = resolve_pass("warm")
    gdn.metrics.end_phase(now=gdn.world.now)
    result["queries_sent"] = gns.resolver.queries_sent
    result["cache_hits"] = gns.resolver.cache_hits

    # Load spreads over the secondaries (the §5 scaling argument).
    result["primary_queries"] = gdn.dns_primary.queries_served
    result["secondary_queries"] = [secondary.queries_served for secondary
                                   in gdn.dns_secondaries]

    # -- two-level naming stability ------------------------------------------
    # Resolving again after "replica movement" (a pure GLS-side event)
    # is a cache hit: the name layer never saw it.
    hits_before = gns.resolver.cache_hits
    after_move = ClosedLoopScenario(clients=1, think_time=0.0,
                                    requests_per_client=1,
                                    label="gns-after-move")
    gdn.run(after_move.drive(gdn.world.sim,
                             lambda arrival: gns.resolve("/apps/pkg000"),
                             rng=gdn.world.rng_for("e7-move")))
    result["stable_after_move"] = gns.resolver.cache_hits == hits_before + 1
    return result


def format_result(result: Dict) -> str:
    parts = []
    table = Table(["authority batch window", "DNS UPDATE messages",
                   "time to add all names"],
                  title="E7 / §5 - batching zone updates "
                        "(%d names added)" % result["name_count"])
    for row in result["batching"]:
        table.add_row("%.1f s" % row["window"], row["updates"],
                      format_seconds(row["elapsed"]))
    parts.append(table.render())

    table = Table(["resolver state", "mean resolve", "p95 resolve",
                   "DNS queries"],
                  title="name resolution from a distant region "
                        "(%d names)" % result["name_count"])
    cold, warm = result["cold"], result["warm"]
    total_queries = result["queries_sent"]
    table.add_row("cold cache", format_seconds(cold.mean),
                  format_seconds(cold.p(95)), total_queries)
    table.add_row("warm cache", format_seconds(warm.mean),
                  format_seconds(warm.p(95)),
                  "0 (all %d hits)" % result["cache_hits"])
    parts.append(table.render())
    parts.append("authoritative load: primary=%d secondaries=%s"
                 % (result["primary_queries"],
                    result["secondary_queries"]))
    parts.append("name mapping survives replica movement (cache hit): %s"
                 % result["stable_after_move"])
    return "\n\n".join(parts)


def assert_shape(result: Dict) -> None:
    # Batching collapses many requests into few UPDATEs.
    first, last = result["batching"][0], result["batching"][-1]
    assert last["updates"] < first["updates"]
    # Warm-cache resolution is much faster than cold.
    assert result["warm"].mean < result["cold"].mean / 5
    assert result["stable_after_move"]
