"""Ablations A1–A3: design choices the paper discusses but does not
settle.

* **A1** — master/slave eager push vs TTL-cache lazy pull (§3.3 names
  both as per-object choices): consistency against update traffic as
  the write rate grows.
* **A2** — contact addresses at leaf vs intermediate GLS nodes for
  mobile objects (§3.5: "storing the addresses at intermediate nodes
  may, in the case of highly mobile objects, lead to considerably more
  efficient look-up operations").
* **A3** — the GLS over UDP vs TCP (§6.3: "We have yet to determine if
  it is acceptable to temporarily replace it with TCP").
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.metrics import Series, TrafficDelta
from ..analysis.tables import Table, format_bytes, format_seconds
from ..core.ids import ContactAddress
from ..gls.service import GlsClient
from ..gls.tree import GlsTree
from ..sim.topology import Level, Topology
from ..sim.world import World
from ..workloads.packages import synthetic_file

__all__ = [
    "run_consistency_ablation", "format_consistency",
    "run_mobility_ablation", "format_mobility",
    "run_transport_ablation", "format_transport",
]


# ---------------------------------------------------------------------------
# A1: push vs pull consistency
# ---------------------------------------------------------------------------


def _consistency_run(mode: str, write_count: int, reads_per_write: int,
                     seed: int) -> dict:
    from ..gdn.deployment import GdnDeployment
    from ..gdn.scenario import ReplicationScenario

    topology = Topology.balanced(regions=2, countries=1, cities=1, sites=2)
    gdn = GdnDeployment(topology=topology, seed=seed, secure=False)
    gdn.standard_fleet(gos_per_region=1)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")

    if mode == "push":
        scenario = ReplicationScenario.master_slave(
            "gos-r0-0", ["gos-r1-0"], cache_ttl=None)
    else:  # pull: single copy + TTL caches at the HTTPDs
        scenario = ReplicationScenario.single_server("gos-r0-0",
                                                     cache_ttl=30.0)

    def publish():
        oid = yield from moderator.create_package(
            "/apps/a1pkg",
            {"doc": synthetic_file("a1:v0", 20_000)}, scenario)
        return oid

    oid = gdn.run(publish(), host=moderator.host)
    gdn.settle(2.0)
    for httpd in gdn.httpds:
        httpd.cache_policy = lambda _name: scenario.cache_ttl

    browser = gdn.add_browser("user", "r1/c0/m0/s1")
    traffic = TrafficDelta(gdn.world.network.meter)
    stale = 0
    reads = 0
    latency = Series("read")
    prefixes = {synthetic_file("a1:v0", 32): 0}
    version = 0

    def workload():
        nonlocal stale, reads, version
        for write_index in range(1, write_count + 1):
            content = synthetic_file("a1:v%d" % write_index, 20_000)
            prefixes[content[:32]] = write_index
            yield from moderator.update_package(
                "/apps/a1pkg", add_files={"doc": content})
            version = write_index
            for _ in range(reads_per_write):
                yield gdn.world.sim.timeout(5.0)
                response = yield from browser.download("/apps/a1pkg",
                                                       "doc")
                reads += 1
                latency.add(response.elapsed)
                if prefixes.get(bytes(response.body[:32]), -1) < version:
                    stale += 1

    gdn.run(workload(), host=moderator.host)
    return {"mode": ("eager push (master/slave)" if mode == "push"
                     else "lazy pull (TTL cache)"),
            "wan_bytes": traffic.wide_area_bytes(),
            "stale": stale, "reads": reads, "latency": latency}


def run_consistency_ablation(seed: int = 41, write_count: int = 10,
                             reads_per_write: int = 5) -> Dict:
    rows = [_consistency_run("push", write_count, reads_per_write, seed),
            _consistency_run("pull", write_count, reads_per_write, seed)]
    return {"rows": rows, "writes": write_count,
            "reads_per_write": reads_per_write}


def format_consistency(result: Dict) -> str:
    table = Table(["propagation", "WAN traffic", "stale reads",
                   "mean read latency"],
                  title="A1 - push vs pull consistency "
                        "(%d writes x %d reads each)"
                        % (result["writes"], result["reads_per_write"]))
    for row in result["rows"]:
        table.add_row(row["mode"], format_bytes(row["wan_bytes"]),
                      "%d/%d" % (row["stale"], row["reads"]),
                      format_seconds(row["latency"].mean))
    return table.render()


# ---------------------------------------------------------------------------
# A2: mobile objects and the storage level of contact addresses
# ---------------------------------------------------------------------------


def _mobility_run(store_level: Level, moves: int, lookups_per_move: int,
                  seed: int) -> dict:
    world = World(topology=Topology.balanced(2, 2, 2, 2), seed=seed)
    tree = GlsTree(world)
    # The object moves between sites of country r0/c0.
    sites = [site for site in world.topology.sites
             if site.path.startswith("r0/c0")]
    hosts = [world.host("gos-%d" % index, site)
             for index, site in enumerate(sites)]
    clients = [GlsClient(world, host, tree) for host in hosts]
    # A user in the same country looks the object up between moves.
    user_host = world.host("user", "r0/c0/m1/s1")
    user = GlsClient(world, user_host, tree)
    traffic = TrafficDelta(world.network.meter)
    lookup_latency = Series("lookup")
    update_latency = Series("update")
    hops = Series("hops")

    def wire_for(index):
        host = hosts[index % len(hosts)]
        return ContactAddress(host.name, 7100, "client_server",
                              role="server", impl_id="gdn.package",
                              site_path=host.site.path).to_wire()

    def workload():
        oid_hex = yield from clients[0].register(
            None, wire_for(0), store_level=int(store_level))
        for move in range(1, moves + 1):
            old_client = clients[(move - 1) % len(clients)]
            new_client = clients[move % len(clients)]
            start = world.now
            yield from old_client.unregister(oid_hex, wire_for(move - 1))
            yield from new_client.register(oid_hex, wire_for(move),
                                           store_level=int(store_level))
            update_latency.add(world.now - start)
            for _ in range(lookups_per_move):
                start = world.now
                reply = yield from user.lookup_detailed(oid_hex)
                assert reply["cas"], "mobile object must stay resolvable"
                lookup_latency.add(world.now - start)
                hops.add(reply["hops"])

    world.run_until(user_host.spawn(workload()), limit=1e9)
    return {"store_level": store_level.name,
            "lookup": lookup_latency, "hops": hops,
            "update": update_latency,
            "wan_bytes": traffic.total_bytes()}


def run_mobility_ablation(seed: int = 43, moves: int = 8,
                          lookups_per_move: int = 4) -> Dict:
    rows = [_mobility_run(Level.SITE, moves, lookups_per_move, seed),
            _mobility_run(Level.COUNTRY, moves, lookups_per_move, seed)]
    return {"rows": rows, "moves": moves,
            "lookups_per_move": lookups_per_move}


def format_mobility(result: Dict) -> str:
    table = Table(["contact address stored at", "mean lookup",
                   "mean hops", "mean move cost", "GLS traffic"],
                  title="A2 / §3.5 - mobile object, address at leaf vs "
                        "intermediate node (%d moves)" % result["moves"])
    for row in result["rows"]:
        table.add_row(row["store_level"],
                      format_seconds(row["lookup"].mean),
                      "%.1f" % row["hops"].mean,
                      format_seconds(row["update"].mean),
                      format_bytes(row["wan_bytes"]))
    return table.render()


# ---------------------------------------------------------------------------
# A3: GLS over UDP vs TCP
# ---------------------------------------------------------------------------


def _transport_run(transport: str, lookups: int, seed: int) -> dict:
    world = World(topology=Topology.balanced(2, 2, 2, 2), seed=seed)
    tree = GlsTree(world, transport=transport)
    gos_host = world.host("gos", "r0/c0/m0/s0")
    registrar = GlsClient(world, gos_host, tree)
    wire = ContactAddress("gos", 7100, "client_server", role="server",
                          impl_id="gdn.package",
                          site_path="r0/c0/m0/s0").to_wire()

    def register():
        oid_hex = yield from registrar.register(None, wire)
        return oid_hex

    oid_hex = world.run_until(gos_host.spawn(register()), limit=1e7)
    user_host = world.host("user", "r1/c1/m1/s1")
    user = GlsClient(world, user_host, tree)
    traffic = TrafficDelta(world.network.meter)
    latency = Series("lookup")

    def resolve():
        for _ in range(lookups):
            start = world.now
            yield from user.lookup_detailed(oid_hex)
            latency.add(world.now - start)

    world.run_until(user_host.spawn(resolve()), limit=1e9)
    return {"transport": transport.upper(), "latency": latency,
            "bytes": traffic.total_bytes(),
            "messages": traffic.messages()}


def run_transport_ablation(seed: int = 47, lookups: int = 20) -> Dict:
    rows = [_transport_run("udp", lookups, seed),
            _transport_run("tcp", lookups, seed)]
    return {"rows": rows, "lookups": lookups}


def format_transport(result: Dict) -> str:
    table = Table(["GLS transport", "mean worldwide lookup",
                   "p95", "traffic", "messages"],
                  title="A3 / §6.3 - GLS over UDP vs TCP "
                        "(%d lookups, client and replica a world apart)"
                        % result["lookups"])
    for row in result["rows"]:
        table.add_row(row["transport"],
                      format_seconds(row["latency"].mean),
                      format_seconds(row["latency"].p(95)),
                      format_bytes(row["bytes"]), row["messages"])
    return table.render()
