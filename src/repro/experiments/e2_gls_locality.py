"""Experiment E2 — Figure 2 / §3.5: GLS lookup cost is proportional to
the distance between client and nearest replica.

"The advantage of this design is, that if a distributed shared object
has a representative near to the client, the Globe Location Service
will find that representative using only 'local' communication.  In
other words, the cost of a look up increases proportional to the
distance between client and nearest representative."

One object is registered at a fixed site; clients at increasing
separation resolve it.  The series reports hops (directory-node
messages) and simulated latency per separation level — the figure's
x-axis is exactly the domain-hierarchy distance.

Telemetry: one shared ``LoadStats`` on ``world.metrics``, with one
registry *phase window* per separation level — each row's latency and
request counts are the window's deltas, so the per-level breakdown
comes from the same instruments every other experiment uses.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import Table, format_seconds
from ..core.ids import ContactAddress
from ..gls.service import GlsClient
from ..gls.tree import GlsTree
from ..sim.topology import Level, Topology
from ..sim.world import World
from ..workloads.loadgen import LoadStats
from ..workloads.scenario import ClosedLoopScenario

__all__ = ["run_gls_locality_experiment", "format_result"]

_CLIENT_SITES = [
    (Level.SITE, "r0/c0/m0/s0"),
    (Level.CITY, "r0/c0/m0/s1"),
    (Level.COUNTRY, "r0/c0/m1/s0"),
    (Level.REGION, "r0/c1/m0/s0"),
    (Level.WORLD, "r1/c1/m1/s1"),
]


def run_gls_locality_experiment(seed: int = 11,
                                lookups_per_point: int = 10) -> Dict:
    topology = Topology.balanced(regions=2, countries=2, cities=2, sites=2)
    world = World(topology=topology, seed=seed)
    tree = GlsTree(world)

    replica_host = world.host("gos-home", "r0/c0/m0/s0")
    registrar = GlsClient(world, replica_host, tree)
    ca_wire = ContactAddress("gos-home", 7100, "client_server",
                             role="server", impl_id="gdn.package",
                             site_path="r0/c0/m0/s0").to_wire()

    def register():
        oid_hex = yield from registrar.register(None, ca_wire)
        return oid_hex

    oid_hex = world.run_until(replica_host.spawn(register()), limit=1e6)

    # One stats bundle for the whole experiment; each separation level
    # gets its own phase window, and the rows are the window deltas.
    stats = LoadStats(registry=world.metrics, prefix="e2")
    rows: List[dict] = []
    for level, site in _CLIENT_SITES:
        client_host = world.host("client-%s" % level.name.lower(), site)
        client = GlsClient(world, client_host, tree)
        last = {}

        def lookup(arrival, client=client, last=last):
            reply = yield from client.lookup_detailed(oid_hex)
            last["hops"] = reply["hops"]
            last["found"] = reply["found"]
            assert reply["cas"], "lookup must find the replica"
            return True

        # One client resolving back-to-back: a closed loop with zero
        # think time reproduces the figure's sequential lookups.
        scenario = ClosedLoopScenario(clients=1, think_time=0.0,
                                      requests_per_client=lookups_per_point,
                                      label="gls-%s" % level.name.lower())
        window = world.metrics.phase(level.name, now=world.now)
        world.run_until(world.sim.process(scenario.drive(
            world.sim, lookup, rng=world.rng_for("e2-" + level.name),
            stats=stats)), limit=1e7)
        window.close(now=world.now)
        point = stats.phase_summary(window)
        assert point["ok"] == lookups_per_point
        rows.append({"separation": level.name, "hops": last["hops"],
                     "latency": point["mean"],
                     "found_at": last["found"] or "<root>"})
    world.metrics.end_phase(now=world.now)
    assert stats.ok == lookups_per_point * len(_CLIENT_SITES)
    return {"rows": rows, "oid": oid_hex}


def format_result(result: Dict) -> str:
    table = Table(["client separation", "node hops", "lookup latency",
                   "record found at"],
                  title="E2 / Figure 2 - GLS lookup cost vs client-replica "
                        "distance (replica at r0/c0/m0/s0)")
    for row in result["rows"]:
        table.add_row(row["separation"], row["hops"],
                      format_seconds(row["latency"]), row["found_at"])
    return table.render()


def assert_proportionality(result: Dict) -> None:
    """The figure's claim: monotone growth with distance."""
    hops = [row["hops"] for row in result["rows"]]
    latencies = [row["latency"] for row in result["rows"]]
    assert hops == sorted(hops), "hops must grow with separation"
    assert latencies == sorted(latencies), \
        "latency must grow with separation"
    assert hops[0] == 0, "same-site lookups stay at the leaf node"
