"""Experiment E8 — §4/§6.1: failures, persistence, recovery.

The paper requires Globe Object Servers to "save their state during a
reboot and reconstruct themselves afterwards" (§4) and lists host and
network failures as availability threats (§6.1).  We crash one
replica's machine mid-workload and measure:

* client-visible failures while the machine is down (users bound to
  the surviving replica keep working; users of the dead access point
  fail over by rebinding),
* the recovery: after reboot the GOS reconstructs its replicas from
  stable storage, slaves re-join their master and catch up on writes
  missed while down,
* a GLS directory-node crash and recovery from its persisted records.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import Series
from ..analysis.tables import Table, format_seconds
from ..gdn.deployment import GdnDeployment
from ..gdn.scenario import ReplicationScenario
from ..sim.topology import Topology
from ..workloads.packages import synthetic_file

__all__ = ["run_recovery_experiment", "format_result"]


def run_recovery_experiment(seed: int = 31, downloads: int = 30) -> Dict:
    topology = Topology.balanced(regions=2, countries=2, cities=1, sites=2)
    gdn = GdnDeployment(topology=topology, seed=seed, secure=False)
    gdn.standard_fleet(gos_per_region=1)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")
    files = {"README": synthetic_file("e8", 2_000),
             "data/blob": synthetic_file("e8-blob", 40_000)}

    def publish():
        oid = yield from moderator.create_package(
            "/apps/net/e8pkg", files,
            ReplicationScenario.master_slave("gos-r0-0", ["gos-r1-0"],
                                             cache_ttl=5.0))
        return oid

    oid = gdn.run(publish(), host=moderator.host)
    gdn.settle(5.0)

    slave = gdn.object_servers["gos-r1-0"]
    browser = gdn.add_browser("user", "r1/c1/m0/s1")  # near the slave
    ok_before = Series("before")
    failures_during = 0
    ok_during = 0
    ok_after = Series("after")

    def phase(series_or_none, count):
        nonlocal failures_during, ok_during
        for _ in range(count):
            try:
                response = yield from browser.download("/apps/net/e8pkg",
                                                       "README")
            except Exception:  # noqa: BLE001 - connection to dead AP
                failures_during += 1
                browser.close()
                continue
            if response.ok:
                if series_or_none is not None:
                    series_or_none.add(response.elapsed)
                else:
                    ok_during += 1
            else:
                failures_during += 1
            yield gdn.world.sim.timeout(1.0)

    # Phase 1: healthy.
    gdn.run(phase(ok_before, downloads), host=browser.host)

    # Phase 2: the slave's machine (GOS + colocated HTTPD) dies.
    crash_time = gdn.world.now
    slave.host.crash()
    gdn.run(phase(None, downloads), host=browser.host)

    # While down, the master takes a write the slave must catch up on.
    def write_while_down():
        yield from moderator.update_package(
            "/apps/net/e8pkg",
            add_files={"NEWS": synthetic_file("e8-news", 500)})

    gdn.run(write_while_down(), host=moderator.host)

    # Phase 3: reboot + recovery, then downloads again.
    gdn.recover_gos("gos-r1-0")
    recovery_time = gdn.world.now
    browser.close()
    gdn.run(phase(ok_after, downloads), host=browser.host)

    slave_lr = slave.replicas[oid.hex]
    caught_up = (slave_lr.semantics.getFileContents("NEWS")
                 == synthetic_file("e8-news", 500))

    # -- GLS node crash/recovery -----------------------------------------
    leaf = gdn.gls.node_for("r0/c0/m0/s0", oid.hex)
    records_before = len(leaf.records)
    leaf.host.crash()
    leaf.host.restart()
    gdn.run(leaf.recover())
    gls_recovered = len(leaf.records) == records_before and records_before > 0

    return {
        "downloads_per_phase": downloads,
        "before": ok_before,
        "failures_during": failures_during,
        "ok_during": ok_during,
        "after": ok_after,
        "downtime": recovery_time - crash_time,
        "slave_caught_up": caught_up,
        "gls_records_recovered": gls_recovered,
    }


def format_result(result: Dict) -> str:
    table = Table(["phase", "successful downloads", "mean latency",
                   "failures"],
                  title="E8 / §4 - replica machine crash and reboot "
                        "recovery (%d downloads per phase)"
                        % result["downloads_per_phase"])
    table.add_row("healthy", result["before"].count,
                  format_seconds(result["before"].mean), 0)
    table.add_row("replica host down", result["ok_during"], "-",
                  result["failures_during"])
    table.add_row("after recovery", result["after"].count,
                  format_seconds(result["after"].mean), 0)
    lines = [table.render()]
    lines.append("slave re-joined master and caught up on missed "
                 "writes: %s" % result["slave_caught_up"])
    lines.append("GLS directory node recovered its records from "
                 "stable storage: %s" % result["gls_records_recovered"])
    return "\n".join(lines)


def assert_shape(result: Dict) -> None:
    assert result["before"].count == result["downloads_per_phase"]
    assert result["after"].count == result["downloads_per_phase"]
    assert result["slave_caught_up"]
    assert result["gls_records_recovered"]
