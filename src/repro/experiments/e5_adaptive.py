"""Experiment E5 — §3.1: per-object replication scenarios beat any
single site-wide scenario.

The paper's load-bearing evidence (Pierre et al. 1999): "if we assign a
replication scenario to each Web page that reflects that page's
individual usage and update patterns, we get significant improvements
… less wide-area network traffic was generated and the response time
for the end-user improved."

We publish a synthetic departmental web site (Zipf popularity, mixed
update rates, regional readership — see
:mod:`repro.workloads.webtrace`) into the GDN four times, assigning
scenarios with:

* **NoRepl**   — every document on one origin server, no caching;
* **CacheTTL** — one origin, HTTPD caches with a fixed TTL;
* **ReplAll**  — a replica of everything in every region (+ caches);
* **Adaptive** — per-document scenarios from the ScenarioAdvisor.

The trace is replayed in simulated time (reads through each site's
nearest HTTPD, writes through maintainers near each document's home),
measuring wide-area traffic, read latency, and stale reads (a read
that returns content older than the last completed write).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..analysis.metrics import Series, TrafficDelta
from ..analysis.tables import Table, format_bytes, format_seconds
from ..baselines.uniform import UNIFORM_STRATEGIES
from ..core.ids import ObjectId
from ..gdn.deployment import GdnDeployment
from ..gdn.scenario import ObjectUsage, ScenarioAdvisor
from ..sim.topology import Topology
from ..workloads.packages import synthetic_file
from ..workloads.webtrace import make_web_trace

__all__ = ["run_adaptive_replication_experiment", "format_result",
           "STRATEGIES"]

STRATEGIES = ["NoRepl", "CacheTTL", "ReplAll", "Adaptive"]


def _topology() -> Topology:
    return Topology.balanced(regions=3, countries=2, cities=1, sites=2)


def _assignment_fn(strategy: str, gdn: GdnDeployment,
                   stream, documents) -> Callable:
    gos_by_region = gdn.gos_by_region()
    all_gos = sorted(gdn.object_servers)
    home_gos = all_gos[0]
    if strategy == "Adaptive":
        advisor = ScenarioAdvisor(
            gos_by_region,
            popularity_threshold=max(10, len(stream)
                                     // (4 * len(documents))),
            ratio_threshold=8.0)
        return lambda _name, usage: advisor.recommend(usage)
    uniform = UNIFORM_STRATEGIES(home_gos, all_gos)
    return uniform[strategy]


def _run_strategy(strategy: str, seed: int, document_count: int,
                  request_count: int) -> dict:
    documents, stream = make_web_trace(_topology(), random.Random(seed),
                                       document_count=document_count,
                                       request_count=request_count)
    gdn = GdnDeployment(topology=_topology(), seed=seed, secure=False)
    gdn.standard_fleet(gos_per_region=1)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")
    assign = _assignment_fn(strategy, gdn, stream, documents)

    ttl_by_name: Dict[str, Optional[float]] = {}
    oid_by_doc: Dict[int, ObjectId] = {}
    distribution = TrafficDelta(gdn.world.network.meter)

    def publish():
        for doc in documents:
            usage = ObjectUsage(stream.reads_by_region(doc.index),
                                writes=stream.writes(doc.index),
                                size=doc.size)
            scenario = assign(doc.path, usage)
            ttl_by_name[doc.path] = scenario.cache_ttl
            oid = yield from moderator.create_package(
                doc.path,
                {"index.html": synthetic_file("%s:v0" % doc.path,
                                              doc.size)},
                scenario)
            oid_by_doc[doc.index] = oid

    gdn.run(publish(), host=moderator.host)
    gdn.settle(10.0)
    distribution_bytes = distribution.wide_area_bytes()
    for httpd in gdn.httpds:
        httpd.cache_policy = lambda name: ttl_by_name.get(name)

    # -- replay state ----------------------------------------------------
    replay_start = gdn.world.now
    serving = TrafficDelta(gdn.world.network.meter)
    read_latency = Series("read-latency")
    current_version: Dict[int, int] = {doc.index: 0 for doc in documents}
    prefix_to_version: Dict[int, Dict[bytes, int]] = {
        doc.index: {synthetic_file("%s:v0" % doc.path, 32): 0}
        for doc in documents}
    stale_reads = 0
    completed = []
    browsers = {}
    writer_runtimes = {}

    def browser_for(site):
        # Translate the trace's Domain objects by path (foreign
        # topology instance).
        key = site.path
        if key not in browsers:
            browsers[key] = gdn.add_browser(
                "browser-%s" % key.replace("/", "-"), key)
        return browsers[key]

    def writer_for(site):
        key = site.path
        if key not in writer_runtimes:
            host = gdn.world.host("writer-%s" % key.replace("/", "-"),
                                  key)
            writer_runtimes[key] = gdn._runtime(host, gdn_host=True)
        return writer_runtimes[key]

    def do_read(request, doc):
        nonlocal stale_reads
        version_at_start = current_version[doc.index]
        browser = browser_for(request.site)
        response = yield from browser.download(doc.path, "index.html")
        if response.ok:
            read_latency.add(response.elapsed)
            body = response.body
            prefix = bytes(body[:32])
            seen = prefix_to_version[doc.index].get(prefix, -1)
            if seen < version_at_start:
                stale_reads += 1
        completed.append(request)

    def do_write(request, doc):
        version = current_version[doc.index] + 1
        label = "%s:v%d" % (doc.path, version)
        content = synthetic_file(label, doc.size)
        prefix_to_version[doc.index][content[:32]] = version
        runtime = writer_for(request.site)
        lr = yield from runtime.bind(oid_by_doc[doc.index])
        yield from lr.invoke("addFile", {"path": "index.html",
                                         "data": content})
        current_version[doc.index] = version
        completed.append(request)

    def driver():
        for request in stream:
            target_time = replay_start + request.time
            if target_time > gdn.world.now:
                yield gdn.world.sim.timeout(target_time - gdn.world.now)
            doc = documents[request.object_index]
            if request.kind == "read":
                gdn.world.sim.process(do_read(request, doc))
            else:
                gdn.world.sim.process(do_write(request, doc))
        # Drain: wait until every request completed.
        while len(completed) < len(stream):
            yield gdn.world.sim.timeout(1.0)

    gdn.run(driver(), limit=1e9)
    reads = sum(1 for request in stream if request.kind == "read")
    serving_bytes = serving.wide_area_bytes()
    return {
        "strategy": strategy,
        "distribution_bytes": distribution_bytes,
        "serving_bytes": serving_bytes,
        "wan_bytes": distribution_bytes + serving_bytes,
        "latency": read_latency,
        "stale_reads": stale_reads,
        "reads": reads,
        "writes": len(stream) - reads,
        "replicas": sum(len(gos.replicas)
                        for gos in gdn.object_servers.values()),
    }


def run_adaptive_replication_experiment(seed: int = 9,
                                        document_count: int = 30,
                                        request_count: int = 700,
                                        strategies: Optional[List[str]]
                                        = None) -> Dict:
    rows = [_run_strategy(strategy, seed, document_count, request_count)
            for strategy in (strategies or STRATEGIES)]
    return {"rows": rows, "documents": document_count,
            "requests": request_count}


def format_result(result: Dict) -> str:
    table = Table(["strategy", "total WAN", "distribute", "serve",
                   "mean read", "p95 read", "stale reads", "replicas"],
                  title="E5 / §3.1 - site-wide vs per-object replication "
                        "scenarios (%d docs, %d requests)"
                        % (result["documents"], result["requests"]))
    for row in result["rows"]:
        table.add_row(row["strategy"], format_bytes(row["wan_bytes"]),
                      format_bytes(row["distribution_bytes"]),
                      format_bytes(row["serving_bytes"]),
                      format_seconds(row["latency"].mean),
                      format_seconds(row["latency"].p(95)),
                      "%d/%d" % (row["stale_reads"], row["reads"]),
                      row["replicas"])
    return table.render()
