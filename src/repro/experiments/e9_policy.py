"""Experiment E9 — §6.1: unauthorized use is refused, at what cost.

Walks the §6.1 requirement list with concrete attacks against a
secured deployment and reports, for each, whether it was refused and
how long the refusal took (attackers cannot even burn much server
time):

1. a non-moderator sends object-server control commands;
2. an anonymous user sends a state-modifying invocation;
3. a host outside the GDN registers a contact address in the GLS;
4. an unsigned (non-TSIG) DNS UPDATE tries to hijack a package name;
5. a rogue CA's certificate tries to pass TLS authentication;
6. a non-moderator asks the naming authority to add a name.

The legitimate moderator path is measured alongside as the baseline.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import Table, format_seconds
from ..core.ids import ContactAddress, ObjectId
from ..gdn.deployment import GdnDeployment
from ..gdn.moderator import ModerationError
from ..gdn.scenario import ReplicationScenario
from ..gls.service import GlsClient, GlsError
from ..gns.dns.zone import Rcode
from ..security.tls import HandshakeError, client_wrapper
from ..sim import rpc
from ..sim.topology import Topology
from ..workloads.packages import synthetic_file

__all__ = ["run_policy_experiment", "format_result"]


def run_policy_experiment(seed: int = 37) -> Dict:
    topology = Topology.balanced(regions=2, countries=2, cities=1, sites=2)
    gdn = GdnDeployment(topology=topology, seed=seed, secure=True)
    gdn.standard_fleet(gos_per_region=1)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod-legit", "r0/c0/m0/s1")
    rows: List[dict] = []

    def record(label, outcome, elapsed, expectation):
        rows.append({"operation": label, "outcome": outcome,
                     "elapsed": elapsed, "expected": expectation})

    # Baseline: the legitimate moderator creates a package.
    def legit():
        start = gdn.world.now
        yield from moderator.create_package(
            "/apps/net/legit", {"README": synthetic_file("ok", 1000)},
            ReplicationScenario.master_slave("gos-r0-0", ["gos-r1-0"]))
        return gdn.world.now - start

    elapsed = gdn.run(legit(), host=moderator.host)
    record("moderator creates package", "accepted", elapsed, "accepted")
    gdn.settle(2.0)

    gos = gdn.object_servers["gos-r0-0"]
    target_oid = moderator.catalog["/apps/net/legit"]["oid"]

    # Attack 1: control command from a certificate without the role.
    attacker = gdn.add_moderator("rando", "r1/c0/m0/s0")
    from ..security.acl import Role
    gdn.registry.revoke("rando", Role.MODERATOR)

    def attack_control():
        start = gdn.world.now
        try:
            yield from attacker.create_package(
                "/apps/net/evil", {"x": b"x"},
                ReplicationScenario.single_server("gos-r0-0"))
            return "accepted", gdn.world.now - start
        except ModerationError:
            return "refused", gdn.world.now - start

    outcome, elapsed = gdn.run(attack_control(), host=attacker.host)
    record("GOS control command, no moderator role", outcome, elapsed,
           "refused")

    # Attack 2: anonymous write invocation against a replica.
    user_host = gdn.world.host("anon-writer", "r0/c1/m0/s0")
    runtime = gdn._runtime(user_host, gdn_host=False)

    def attack_write():
        start = gdn.world.now
        lr = yield from runtime.bind(ObjectId.from_hex(target_oid))
        try:
            yield from lr.invoke("addFile", {"path": "evil",
                                             "data": b"trojan"})
            return "accepted", gdn.world.now - start
        except Exception:  # noqa: BLE001
            return "refused", gdn.world.now - start

    outcome, elapsed = gdn.run(attack_write(), host=user_host)
    record("anonymous state-modifying invocation", outcome, elapsed,
           "refused")

    # Attack 3: GLS registration without the GDN key (§6.1 req. 2).
    spoofer_host = gdn.world.host("gls-spoofer", "r0/c0/m0/s0")
    spoofer = GlsClient(gdn.world, spoofer_host, gdn.gls)  # no auth key

    def attack_gls():
        start = gdn.world.now
        wire = ContactAddress("gls-spoofer", 7100, "client_server",
                              role="server", impl_id="gdn.package",
                              site_path="r0/c0/m0/s0").to_wire()
        try:
            yield from spoofer.register(target_oid, wire)
            return "accepted", gdn.world.now - start
        except GlsError:
            return "refused", gdn.world.now - start

    outcome, elapsed = gdn.run(attack_gls(), host=spoofer_host)
    record("GLS registration from non-GDN host", outcome, elapsed,
           "refused")

    # Attack 4: unsigned DNS UPDATE against the GDN Zone (§6.3 TSIG).
    updater_host = gdn.world.host("dns-attacker", "r1/c1/m0/s0")
    from ..sim.rpc import UdpRpcClient
    udp = UdpRpcClient(updater_host)

    def attack_dns():
        start = gdn.world.now
        reply = yield from udp.call(
            gdn.dns_primary.host, 53, "update",
            {"zone": gdn.zone, "deletes": [],
             "adds": [{"name": "legit.net.apps." + gdn.zone,
                       "type": "TXT", "ttl": 60,
                       "data": "globe-oid=" + "f" * 40}]})
        outcome = ("refused" if reply.get("rcode") == Rcode.BADSIG
                   else "accepted")
        return outcome, gdn.world.now - start

    outcome, elapsed = gdn.run(attack_dns(), host=updater_host)
    record("unsigned DNS UPDATE on GDN Zone", outcome, elapsed, "refused")

    # Attack 5: rogue-CA certificate at a TLS endpoint.
    import random as _random
    from ..security.certs import CertificateAuthority, Credentials
    rogue_ca = CertificateAuthority("rogue-ca", _random.Random(99))
    rogue_creds = Credentials.issue_for("mod-legit", rogue_ca,
                                        _random.Random(100))
    mitm_host = gdn.world.host("mitm", "r0/c1/m0/s1")

    def attack_tls():
        start = gdn.world.now
        try:
            yield from rpc.call(
                mitm_host, gos.host, gos.port, "list_replicas", {},
                channel_wrapper=client_wrapper(credentials=rogue_creds))
            return "accepted", gdn.world.now - start
        except (HandshakeError, Exception):  # noqa: BLE001
            return "refused", gdn.world.now - start

    outcome, elapsed = gdn.run(attack_tls(), host=mitm_host)
    record("TLS client cert from rogue CA", outcome, elapsed, "refused")

    # Attack 6: naming authority request from a non-moderator.
    def attack_authority():
        start = gdn.world.now
        try:
            yield from rpc.call(
                attacker.host, gdn.authority.host, gdn.authority.port,
                "add_name", {"name": "/apps/Hijack", "oid": "a" * 40},
                channel_wrapper=attacker.channel_wrapper)
            return "accepted", gdn.world.now - start
        except rpc.RpcFault:
            return "refused", gdn.world.now - start

    outcome, elapsed = gdn.run(attack_authority(), host=attacker.host)
    record("naming-authority add from non-moderator", outcome, elapsed,
           "refused")

    return {"rows": rows}


def format_result(result: Dict) -> str:
    table = Table(["operation", "outcome", "expected", "time to verdict"],
                  title="E9 / §6.1 - authorization policy enforcement")
    for row in result["rows"]:
        table.add_row(row["operation"], row["outcome"], row["expected"],
                      format_seconds(row["elapsed"]))
    return table.render()


def assert_shape(result: Dict) -> None:
    for row in result["rows"]:
        assert row["outcome"] == row["expected"], row["operation"]
