"""Experiment E6 — §3.5: partitioning directory nodes into subnodes.

"The apparent problem with this design is that the root node … [has] to
store a lot of forwarding pointers and handle a lot of requests … Our
solution to this problem is to partition a directory node into one or
more directory subnodes.  Each subnode is made responsible for a
specific part of the object-identifier space via a special hashing
technique and can run on a separate machine."

We register a population of objects from sites all over the world and
then resolve them from *distant* clients (forcing walks through the
root), with the root (and region) logical nodes split into
k ∈ {1, 2, 4, 8} subnodes.  Reported per k: per-subnode request load
and record count at the root (max and mean), plus total lookup latency
(which should stay flat — partitioning relieves load without changing
path lengths).
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.metrics import Series
from ..analysis.tables import Table, format_seconds
from ..core.ids import ContactAddress
from ..gls.service import GlsClient
from ..gls.tree import GlsTree
from ..sim.topology import Topology
from ..sim.world import World

__all__ = ["run_partitioning_experiment", "format_result"]


def _run_with_subnodes(k: int, seed: int, object_count: int,
                       lookups: int) -> dict:
    world = World(topology=Topology.balanced(2, 2, 2, 2), seed=seed)
    tree = GlsTree(world, partition={"": k, "r0": k, "r1": k})

    # Register objects from alternating home sites in region r0.
    sites = [site for site in world.topology.sites
             if site.path.startswith("r0")]
    registrars: List[GlsClient] = []
    for index, site in enumerate(sites):
        host = world.host("gos-%d" % index, site)
        registrars.append(GlsClient(world, host, tree))
    oids: List[str] = []

    def register_all():
        for index in range(object_count):
            client = registrars[index % len(registrars)]
            wire = ContactAddress(
                client.host.name, 7100, "client_server", role="server",
                impl_id="gdn.package",
                site_path=client.host.site.path).to_wire()
            oid_hex = yield from client.register(None, wire)
            oids.append(oid_hex)

    world.run_until(world.sim.process(register_all()), limit=1e9)

    # Distant clients (region r1) resolve them: every walk crosses the
    # root.
    client_host = world.host("remote-client", "r1/c1/m1/s1")
    client = GlsClient(world, client_host, tree)
    latency = Series("lookup")

    def resolve_all():
        for count in range(lookups):
            oid_hex = oids[count % len(oids)]
            start = world.now
            reply = yield from client.lookup_detailed(oid_hex)
            assert reply["cas"], "object must resolve"
            latency.add(world.now - start)

    world.run_until(client_host.spawn(resolve_all()), limit=1e9)

    root_nodes = tree.root_nodes()
    loads = [node.requests_handled for node in root_nodes]
    records = [len(node.records) for node in root_nodes]
    return {
        "subnodes": k,
        "root_load_max": max(loads),
        "root_load_mean": sum(loads) / len(loads),
        "root_records_max": max(records),
        "root_records_total": sum(records),
        "latency": latency,
    }


def run_partitioning_experiment(seed: int = 23, object_count: int = 64,
                                lookups: int = 128,
                                subnode_counts: List[int] = (1, 2, 4, 8)
                                ) -> Dict:
    rows = [_run_with_subnodes(k, seed, object_count, lookups)
            for k in subnode_counts]
    return {"rows": rows, "objects": object_count, "lookups": lookups}


def format_result(result: Dict) -> str:
    table = Table(["root subnodes", "max subnode load", "mean subnode load",
                   "max subnode records", "mean lookup"],
                  title="E6 / §3.5 - root directory-node partitioning "
                        "(%d objects, %d remote lookups)"
                        % (result["objects"], result["lookups"]))
    for row in result["rows"]:
        table.add_row(row["subnodes"], row["root_load_max"],
                      "%.1f" % row["root_load_mean"],
                      row["root_records_max"],
                      format_seconds(row["latency"].mean))
    return table.render()


def assert_shape(result: Dict) -> None:
    rows = result["rows"]
    # The hot spot shrinks roughly with k...
    assert rows[-1]["root_load_max"] < rows[0]["root_load_max"]
    assert rows[-1]["root_records_max"] < rows[0]["root_records_total"]
    # ...while the lookup path stays the same length.
    baseline = rows[0]["latency"].mean
    for row in rows[1:]:
        assert row["latency"].mean < baseline * 1.5
