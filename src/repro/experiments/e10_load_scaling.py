"""Experiment E10 (extension) — §3.1's first reason for replication.

"First, there are a potentially very large number of people interested
in a particular software package and multiple machines are needed to
handle such a load."

Servers here are finite: each HTTPD has a worker pool and a fixed CPU
service time per request.  A *population of browsers* (a closed-loop
:class:`~repro.workloads.cohort.CohortScenario`, the paper's "very
large number of people") hammers one popular package at increasing
offered load, against

* a single access point backed by the only replica, and
* an access point + replica in every region.

The offered load stays the x-axis: a point's population is sized so
``clients / think_time`` equals the offered rate.  At the default
population (``offered × THINK_TIME`` browsers) the cohorts run in
byte-identical *equivalence mode* — exactly the reference closed-loop
clients, multiplexed — while a ``browsers=`` override in the
hundred-thousands flips the same scenario into the O(1)-per-cohort
statistical engine, extending the curve to populations the per-client
engine cannot hold.

Reported per offered load: achieved throughput and mean/p95 response
time.  Expected shape: the single server saturates at roughly
``workers / service_time`` requests per second — queueing delay then
grows with the waiting population — while the replicated deployment
splits the load across machines and keeps latency flat well past the
single-server knee.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.tables import Table, format_seconds
from ..gdn.deployment import GdnDeployment
from ..gdn.scenario import ReplicationScenario
from ..sim.topology import Topology
from ..workloads.cohort import CohortScenario
from ..workloads.loadgen import LoadStats
from ..workloads.packages import synthetic_file

__all__ = ["run_load_scaling_experiment", "format_result", "assert_shape"]

PACKAGE = "/apps/devel/HotRelease"
_FILE = "release.tar.gz"

#: Worker pool and per-request CPU of every HTTPD in this experiment.
WORKERS = 4
SERVICE_TIME = 0.040  # seconds -> one HTTPD saturates at ~100 req/s

#: Mean browser think time at the default population size.
THINK_TIME = 10.0

#: Populations up to this size run the cohorts in byte-identical
#: equivalence mode (the reference per-client replay); beyond it the
#: O(1) statistical engine takes over.
EQUIVALENCE_MAX = 2048


def _run_deployment(replicate: bool, offered_load: float, seed: int,
                    request_count: int,
                    browsers: Optional[int] = None) -> dict:
    topology = Topology.balanced(regions=3, countries=1, cities=1, sites=2)
    gdn = GdnDeployment(topology=topology, seed=seed, secure=False)
    for index, region in enumerate(gdn._regions()):
        gos_name = "gos-%d" % index
        gdn.add_gos(gos_name, next(region.sites()))
    for index, gos_name in enumerate(sorted(gdn.object_servers)):
        gdn.add_httpd("httpd-%d" % index, colocate_with=gos_name,
                      concurrency=WORKERS, service_time=SERVICE_TIME)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")
    slaves = sorted(gdn.object_servers)[1:] if replicate else []

    def publish():
        yield from moderator.create_package(
            PACKAGE, {_FILE: synthetic_file("hot", 30_000)},
            ReplicationScenario.master_slave("gos-0", slaves,
                                             cache_ttl=600.0))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(5.0)

    # Browsers spread over all regions; the population is sized so the
    # closed loop offers exactly the target rate (clients / think =
    # offered), and the drive runs long enough to issue about
    # ``request_count`` requests.  One long-lived browser per site is
    # shared by all its requests.
    browser_for = gdn.browser_pool("load")

    def one_request(arrival):
        response = yield from browser_for(arrival.site).download(
            PACKAGE, _FILE)
        return response.ok

    clients = (browsers if browsers is not None
               else max(1, round(offered_load * THINK_TIME)))
    scenario = CohortScenario(clients, clients / offered_load,
                              duration=request_count / offered_load,
                              sites=gdn.world.topology.sites,
                              label="e10-load",
                              equivalence=clients <= EQUIVALENCE_MAX)
    # On the world registry: the latency histogram (O(1) streaming, no
    # sample list at 10^5-request scale) lives beside the HTTPD/GOS
    # counters this deployment bound.
    stats = LoadStats(registry=gdn.world.metrics, prefix="e10")
    elapsed = gdn.run(scenario.drive(gdn.world.sim, one_request,
                                     rng=gdn.world.rng_for("e10-load"),
                                     stats=stats), limit=1e9)
    return {
        "replicate": replicate,
        "offered": offered_load,
        "browsers": clients,
        "achieved": stats.throughput(elapsed),
        "latency": stats.latency,
        "ok": stats.ok,
    }


def run_load_scaling_experiment(seed: int = 61,
                                loads=(40.0, 90.0, 160.0),
                                request_count: int = 400,
                                browsers: Optional[int] = None) -> Dict:
    """``browsers`` overrides the per-point population size (the think
    time stretches to keep the offered rate on the x-axis); pass e.g.
    ``200_000`` to run the curve against a statistical cohort
    population no per-client engine could hold."""
    rows: List[dict] = []
    for offered in loads:
        rows.append(_run_deployment(False, offered, seed, request_count,
                                    browsers=browsers))
        rows.append(_run_deployment(True, offered, seed, request_count,
                                    browsers=browsers))
    return {"rows": rows, "requests": request_count,
            "capacity_one": WORKERS / SERVICE_TIME}


def format_result(result: Dict) -> str:
    table = Table(["deployment", "offered req/s", "browsers",
                   "achieved req/s", "mean response", "p50 response",
                   "p95 response"],
                  title="E10 (extension) / §3.1 - one replica vs one per "
                        "region under a browser population "
                        "(single-HTTPD capacity ~%.0f req/s)"
                        % result["capacity_one"])
    for row in result["rows"]:
        table.add_row("replicated" if row["replicate"] else "single",
                      "%.0f" % row["offered"],
                      "%d" % row.get("browsers", 0),
                      "%.1f" % row["achieved"],
                      format_seconds(row["latency"].mean),
                      format_seconds(row["latency"].p(50)),
                      format_seconds(row["latency"].p(95)))
    return table.render()


def assert_shape(result: Dict) -> None:
    single = [row for row in result["rows"] if not row["replicate"]]
    replicated = [row for row in result["rows"] if row["replicate"]]
    # Under the highest offered load, the single deployment is
    # saturated: replication serves the same load much faster.
    worst_single = single[-1]
    worst_replicated = replicated[-1]
    assert worst_single["offered"] > result["capacity_one"]
    assert worst_replicated["latency"].mean \
        < worst_single["latency"].mean / 2
    # At low load both behave comparably (no replication penalty).
    assert replicated[0]["latency"].mean < single[0]["latency"].mean * 1.5
