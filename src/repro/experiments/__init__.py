"""Experiment drivers: one module per reproduced figure/claim.

Shared by the examples, the test suite (shape assertions), and the
benchmark harness (tables for EXPERIMENTS.md).  See DESIGN.md §3 for
the experiment index.
"""

from . import (ablations, e1_dso_invocation, e2_gls_locality,
               e3_end_to_end, e4_security, e5_adaptive, e6_partitioning,
               e7_gns_resolution, e8_recovery, e9_policy, e10_load_scaling)

__all__ = [
    "ablations", "e1_dso_invocation", "e2_gls_locality", "e3_end_to_end",
    "e4_security", "e5_adaptive", "e6_partitioning", "e7_gns_resolution",
    "e8_recovery", "e9_policy", "e10_load_scaling",
]
