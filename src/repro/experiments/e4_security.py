"""Experiment E4 — Figure 4 / §6.3: the price of channel security.

The paper secures all GDN traffic with TLS but worries: "we are paying
for something we do not need: confidentiality … If performance is
affected too negatively by the superfluous encryption and decryption we
will have to rethink our security scheme."

We measure, on one cross-region connection, the four channel
configurations of Figure 4's world:

* plain (no security at all — the June-2000 first version),
* TLS one-way auth (browser ↔ GDN host, arrows 1/2),
* TLS two-way auth (GDN host ↔ GDN host, arrow 3),
* TLS two-way, integrity-only (the rethink the paper contemplates).

For each: handshake time, then time to move a small (8 KiB) and a
large (512 KiB) payload.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..analysis.tables import Table, format_seconds
from ..security.acl import Role, role_attribute
from ..security.certs import CertificateAuthority, Credentials
from ..security.tls import CostModel, client_wrapper, server_factory
from ..sim.topology import Topology
from ..sim.world import World
from ..workloads.packages import synthetic_file

__all__ = ["run_security_overhead_experiment", "format_result"]

SMALL = 8 * 1024
LARGE = 512 * 1024


def _measure_config(label: str, seed: int, secure: bool,
                    client_auth: str = "none", encryption: bool = True,
                    costs: Optional[CostModel] = None) -> dict:
    world = World(topology=Topology.balanced(2, 1, 1, 1), seed=seed)
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r1/c0/m0/s0")
    listener = b.listen(443)
    costs = costs or CostModel()

    wrap_client = None
    wrap_server = None
    if secure:
        rng = random.Random(seed)
        ca = CertificateAuthority("gdn-ca", rng)
        server_creds = Credentials.issue_for(
            "server", ca, rng, role_attribute(Role.GDN_HOST))
        client_creds = Credentials.issue_for(
            "client", ca, rng, role_attribute(Role.GDN_HOST))
        wrap_server = server_factory(server_creds, client_auth=client_auth,
                                     encryption=encryption, costs=costs)
        wrap_client = client_wrapper(credentials=client_creds,
                                     encryption=encryption, costs=costs)

    result = {}

    def server():
        conn = yield listener.accept()
        if wrap_server is not None:
            conn = yield from wrap_server(conn)
        while True:
            try:
                message = yield conn.recv()
            except Exception:  # noqa: BLE001 - client closed
                return
            conn.send({"ack": message["n"]})

    def client():
        start = world.now
        conn = yield from a.connect(b, 443)
        if wrap_client is not None:
            conn = yield from wrap_client(conn)
        # Round-trip a tiny message to complete any handshake pipeline.
        conn.send({"n": 0, "data": b""})
        yield conn.recv()
        result["handshake"] = world.now - start

        for name, size in (("small", SMALL), ("large", LARGE)):
            start = world.now
            conn.send({"n": 1, "data": synthetic_file(name, size)})
            yield conn.recv()
            result[name] = world.now - start
        conn.close()

    b.spawn(server())
    proc = a.spawn(client())
    world.run_until(proc, limit=1e7)
    result["label"] = label
    return result


def run_security_overhead_experiment(seed: int = 5) -> Dict:
    rows: List[dict] = [
        _measure_config("plain TCP (v1, June 2000)", seed, secure=False),
        _measure_config("TLS one-way auth", seed, secure=True,
                        client_auth="none"),
        _measure_config("TLS two-way auth", seed, secure=True,
                        client_auth="required"),
        _measure_config("TLS two-way, integrity only", seed, secure=True,
                        client_auth="required", encryption=False),
    ]
    plain = rows[0]
    for row in rows:
        row["large_overhead"] = (row["large"] / plain["large"] - 1.0) * 100
    return {"rows": rows}


def format_result(result: Dict) -> str:
    table = Table(["channel configuration", "connect+handshake",
                   "8 KiB RTT", "512 KiB RTT", "bulk overhead"],
                  title="E4 / Figure 4 - channel security cost on one "
                        "cross-region connection")
    for row in result["rows"]:
        table.add_row(row["label"], format_seconds(row["handshake"]),
                      format_seconds(row["small"]),
                      format_seconds(row["large"]),
                      "%+.1f%%" % row["large_overhead"])
    return table.render()


def assert_shape(result: Dict) -> None:
    """The §6.3 expectations."""
    plain, one_way, two_way, integrity = result["rows"]
    # Authentication costs handshake time (RSA + extra flights).
    assert one_way["handshake"] > plain["handshake"]
    assert two_way["handshake"] >= one_way["handshake"]
    # Encryption costs bulk throughput; integrity-only recovers most.
    assert two_way["large"] > plain["large"]
    assert integrity["large"] < two_way["large"]
