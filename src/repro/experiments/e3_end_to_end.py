"""Experiment E3 — Figure 3: the GDN against its two ancestors.

The paper positions the GDN as an improvement over anonymous FTP (full
mirroring) and the single-origin World Wide Web (§1, §2).  We replay
the same Zipf-popular, geographically spread download workload against
all three architectures on identical topology and corpus:

* **WWW**       — one origin server, every request crosses the world
                  to it;
* **FTP mirror**— a full mirror per region: local reads, but the whole
                  corpus is shipped to every mirror up front;
* **GDN**       — per-object scenarios from the ScenarioAdvisor:
                  popular packages get replicas in their hot regions,
                  the long tail stays on one server; HTTPDs cache.

Reported per system: distribution (setup) wide-area bytes, serving
wide-area bytes, mean and p95 download latency.  Expected shape: WWW
minimises setup traffic but pays latency and serving WAN bytes; the
mirror minimises latency but pays for replicating the unpopular tail;
the GDN approaches mirror latency at a fraction of the setup traffic.

Telemetry: each system's world carries one registry; the setup and
serving stages are *phase windows* over the network meter's per-level
byte counters (``meter.wide_area_delta(window)``), and download
latency is the stats bundle's streaming histogram.

A ``population=`` override appends a *flash-crowd coda* to the GDN
leg: after the trace replay, the same deployment serves a closed-loop
:class:`~repro.workloads.cohort.CohortScenario` browser population
drawing from the same Zipf mix.  Small populations run in
byte-identical equivalence mode; populations in the hundred-thousands
flip to the O(1) statistical cohorts, extending the figure past what
a per-client engine could hold.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..analysis.tables import Table, format_bytes, format_seconds
from ..baselines.mirror import MirrorNetwork
from ..baselines.www import WwwClient, WwwServer
from ..gdn.deployment import GdnDeployment
from ..gdn.scenario import ObjectUsage, ScenarioAdvisor
from ..sim.topology import Topology
from ..workloads.cohort import CohortScenario
from ..workloads.loadgen import LoadStats
from ..workloads.packages import PackageSpec, generate_corpus
from ..workloads.population import ClientPopulation, RequestStream
from ..workloads.scenario import RequestMix, TraceScenario

__all__ = ["run_end_to_end_experiment", "format_result"]

#: Wall-clock length of the optional flash-crowd coda on the GDN leg.
POPULATION_DURATION = 20.0

#: Populations up to this size replay byte-identical per-client
#: cohorts; larger ones use the O(1) statistical engine.
EQUIVALENCE_MAX = 2048


def _topology() -> Topology:
    return Topology.balanced(regions=3, countries=2, cities=1, sites=2)


def _workload(seed: int, package_count: int, read_count: int):
    rng = random.Random(seed)
    corpus = generate_corpus(package_count, rng, mean_file_size=30_000)
    population = ClientPopulation(_topology(), package_count,
                                  random.Random(seed + 1), alpha=1.0,
                                  home_share=0.6)
    stream = population.generate(read_count)
    return corpus, stream


class _SiteClients:
    """Lazily creates one client host per requesting site."""

    def __init__(self, world, prefix):
        self.world = world
        self.prefix = prefix
        self._hosts = {}

    def host_for(self, site):
        # The stream's Domain objects belong to the workload's own
        # topology instance; translate by path into this world's.
        key = site.path
        if key not in self._hosts:
            name = "%s-%s" % (self.prefix, key.replace("/", "-"))
            self._hosts[key] = self.world.host(name, key)
        return self._hosts[key]


def _replay(world, stream: RequestStream, one_request, label: str,
            rng_label: str) -> LoadStats:
    """Replay ``stream`` through the scenario engine; sequential
    pacing so every system serves the identical back-to-back trace
    (queueing effects would drown the per-request comparison)."""
    stats = LoadStats(registry=world.metrics, prefix="e3-" + label)
    scenario = TraceScenario.from_stream(stream, pacing="sequential",
                                         label=label)
    world.run_until(world.sim.process(scenario.drive(
        world.sim, one_request, rng=world.rng_for(rng_label),
        stats=stats)), limit=1e9)
    assert stats.ok == len(stream), \
        "%s: %d of %d requests failed (%s)" % (label, stats.failed,
                                               len(stream), stats.errors)
    return stats


def _run_www(corpus: List[PackageSpec], stream: RequestStream,
             seed: int) -> dict:
    from ..sim.world import World

    world = World(topology=_topology(), seed=seed)
    meter = world.network.meter
    origin = world.host("www-origin", "r0/c0/m0/s0")
    server = WwwServer(world, origin)
    setup = world.metrics.window("setup", now=world.now)
    for spec in corpus:
        for path, data in spec.materialize().items():
            server.publish("%s/%s" % (spec.name, path), data)
    server.start()
    setup.close(now=world.now)
    setup_bytes = meter.wide_area_delta(setup)  # zero: no distribution

    serving = world.metrics.window("serving", now=world.now)
    clients = _SiteClients(world, "user")
    www_clients = {}

    def one_request(arrival):
        host = clients.host_for(arrival.site)
        client = www_clients.get(host.name)
        if client is None:
            client = WwwClient(world, host, server)
            www_clients[host.name] = client
        spec = corpus[arrival.rank]
        path = "%s/%s" % (spec.name, spec.largest_file)
        status, _body, _elapsed = yield from client.get(path)
        return status == 200

    stats = _replay(world, stream, one_request, "www", "e3-www")
    return {"system": "WWW single origin", "setup_wan": setup_bytes,
            "serving_wan": meter.wide_area_delta(serving.close(world.now)),
            "latency": stats.latency}


def _run_mirror(corpus: List[PackageSpec], stream: RequestStream,
                seed: int) -> dict:
    from ..sim.world import World

    world = World(topology=_topology(), seed=seed)
    meter = world.network.meter
    origin_host = world.host("ftp-origin", "r0/c0/m0/s0")
    network = MirrorNetwork(world, origin_host, sync_period=1e9)
    for region in world.topology.world.children.values():
        if region.name == "r0":
            continue
        network.add_mirror(world.host("ftp-mirror-%s" % region.name,
                                      next(region.sites())))
    setup = world.metrics.window("setup", now=world.now)
    for spec in corpus:
        for path, data in spec.materialize().items():
            network.publish("%s/%s" % (spec.name, path), data)
    world.run_until(world.sim.process(network.sync_all()), limit=1e9)
    setup_bytes = meter.wide_area_delta(setup.close(world.now))

    serving = world.metrics.window("serving", now=world.now)
    clients = _SiteClients(world, "user")

    def one_request(arrival):
        host = clients.host_for(arrival.site)
        spec = corpus[arrival.rank]
        path = "%s/%s" % (spec.name, spec.largest_file)
        status, _body, _elapsed = yield from network.fetch(host, path)
        return status == 200

    stats = _replay(world, stream, one_request, "mirror", "e3-mirror")
    return {"system": "FTP full mirroring", "setup_wan": setup_bytes,
            "serving_wan": meter.wide_area_delta(serving.close(world.now)),
            "latency": stats.latency}


def _drive_population(gdn, corpus: List[PackageSpec], browsers: int,
                      target_requests: int, browser_for) -> dict:
    """Flash-crowd coda: the GDN deployment that just served the trace
    now faces a closed-loop browser population drawing from the same
    Zipf popularity.  The think time is stretched so the population
    issues about ``target_requests`` over the drive, keeping the coda
    comparable across population sizes."""
    think = browsers * POPULATION_DURATION / target_requests
    scenario = CohortScenario(browsers, think,
                              duration=POPULATION_DURATION,
                              sites=gdn.world.topology.sites,
                              mix=RequestMix(len(corpus), alpha=1.0),
                              label="e3-population",
                              equivalence=browsers <= EQUIVALENCE_MAX)
    stats = LoadStats(registry=gdn.world.metrics, prefix="e3-population")

    def one_request(arrival):
        spec = corpus[arrival.rank]
        response = yield from browser_for(arrival.site.path).download(
            spec.name, spec.largest_file)
        return response.ok

    elapsed = gdn.run(scenario.drive(
        gdn.world.sim, one_request,
        rng=gdn.world.rng_for("e3-population"), stats=stats), limit=1e9)
    return {"browsers": browsers, "throughput": stats.throughput(elapsed),
            "latency": stats.latency, "ok": stats.ok,
            "failed": stats.failed}


def _run_gdn(corpus: List[PackageSpec], stream: RequestStream,
             seed: int, population: int = 0) -> dict:
    gdn = GdnDeployment(topology=_topology(), seed=seed, secure=False)
    gdn.standard_fleet(gos_per_region=1)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")
    advisor = ScenarioAdvisor(gdn.gos_by_region(),
                              popularity_threshold=max(
                                  10, len(stream) // (4 * len(corpus))))
    ttl_by_name = {}
    meter = gdn.world.network.meter
    setup = gdn.world.metrics.window("setup", now=gdn.world.now)

    def publish():
        for index, spec in enumerate(corpus):
            usage = ObjectUsage(stream.reads_by_region(index),
                                writes=stream.writes(index),
                                size=spec.total_size)
            scenario = advisor.recommend(usage)
            ttl_by_name[spec.name] = scenario.cache_ttl
            yield from moderator.create_package(spec.name,
                                                spec.materialize(),
                                                scenario)

    gdn.run(publish(), host=moderator.host)
    gdn.settle(10.0)
    for httpd in gdn.httpds:
        httpd.cache_policy = lambda name: ttl_by_name.get(name, 60.0)
    setup_bytes = meter.wide_area_delta(setup.close(gdn.world.now))

    serving = gdn.world.metrics.window("serving", now=gdn.world.now)
    browser_for = gdn.browser_pool("browser")

    def one_request(arrival):
        spec = corpus[arrival.rank]
        response = yield from browser_for(arrival.site.path).download(
            spec.name, spec.largest_file)
        return response.ok

    stats = _replay(gdn.world, stream, one_request, "gdn", "e3-gdn")
    row = {"system": "GDN (per-object scenarios)",
           "setup_wan": setup_bytes,
           "serving_wan": meter.wide_area_delta(
               serving.close(gdn.world.now)),
           "latency": stats.latency}
    if population:
        row["population"] = _drive_population(gdn, corpus, population,
                                              len(stream), browser_for)
    browser_for.close()
    return row


def run_end_to_end_experiment(seed: int = 3, package_count: int = 12,
                              read_count: int = 250,
                              population: int = 0) -> Dict:
    """``population`` > 0 adds the flash-crowd coda to the GDN leg —
    pass e.g. ``100_000`` to drive the deployment with a statistical
    browser population after the paired trace comparison."""
    corpus, stream = _workload(seed, package_count, read_count)
    rows = [
        _run_www(corpus, stream, seed),
        _run_mirror(corpus, stream, seed),
        _run_gdn(corpus, stream, seed, population=population),
    ]
    result = {"rows": rows, "packages": package_count,
              "reads": read_count,
              "corpus_bytes": sum(spec.total_size for spec in corpus)}
    if population:
        result["population"] = rows[-1]["population"]
    return result


def format_result(result: Dict) -> str:
    table = Table(["system", "setup WAN", "serving WAN", "mean latency",
                   "p95 latency"],
                  title="E3 / Figure 3 - %d downloads of %d packages "
                        "(corpus %s) across 3 regions"
                        % (result["reads"], result["packages"],
                           format_bytes(result["corpus_bytes"])))
    for row in result["rows"]:
        table.add_row(row["system"], format_bytes(row["setup_wan"]),
                      format_bytes(row["serving_wan"]),
                      format_seconds(row["latency"].mean),
                      format_seconds(row["latency"].p(95)))
    rendered = table.render()
    pop = result.get("population")
    if pop:
        rendered += ("\nGDN flash-crowd coda: %d browsers, %.1f req/s, "
                     "mean %s / p95 %s, %d ok / %d failed"
                     % (pop["browsers"], pop["throughput"],
                        format_seconds(pop["latency"].mean),
                        format_seconds(pop["latency"].p(95)),
                        pop["ok"], pop["failed"]))
    return rendered
