"""Experiment E1 — Figure 1: cost of the subobject stack.

Figure 1 shows a DSO spanning address spaces through composed local
representatives.  The measurable consequence: what does a method
invocation cost depending on which representative serves it?  We
measure the same ``listContents``/``getFileContents`` calls through:

* the bare semantics subobject (no DSO machinery at all),
* a *cache-role* representative with fresh state (full marshal →
  replication → control → execute path, no network),
* a *client-role* representative bound to a replica on the same site,
* a client-role representative bound across city / region / world
  separations.

Expected shape: the subobject stack itself costs microseconds (it is
pure composition), while remote binding costs are dominated by network
separation — the paper's justification for replicas near clients.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import Table, format_seconds
from ..core.ids import ObjectId
from ..gdn.deployment import GdnDeployment
from ..gdn.scenario import ReplicationScenario
from ..sim.topology import Topology
from ..workloads.packages import synthetic_file

__all__ = ["run_dso_invocation_experiment", "format_result"]

_FILES = {"README": synthetic_file("e1-readme", 2_000),
          "bin/tool": synthetic_file("e1-binary", 64_000)}

#: Client placements, by intended separation from the master replica
#: on r0/c0/m0/s0.
_PLACEMENTS = [
    ("same site", "r0/c0/m0/s0"),
    ("same city", "r0/c0/m0/s1"),
    ("same region", "r0/c1/m0/s0"),
    ("cross world", "r1/c0/m0/s0"),
]


def run_dso_invocation_experiment(seed: int = 7,
                                  calls_per_point: int = 20) -> Dict:
    """Measure invocation latency per representative kind."""
    topology = Topology.balanced(regions=2, countries=2, cities=1, sites=2)
    gdn = GdnDeployment(topology=topology, seed=seed, secure=False)
    gdn.add_gos("gos-main", "r0/c0/m0/s0")
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")

    def publish():
        oid = yield from moderator.create_package(
            "/apps/devel/e1pkg", _FILES,
            ReplicationScenario.single_server("gos-main"))
        return oid

    oid = gdn.run(publish(), host=moderator.host)
    rows: List[dict] = []

    # Baseline: the bare semantics subobject, no DSO machinery.
    from ..gdn.package import PackageSemantics
    bare = PackageSemantics()
    for path, data in _FILES.items():
        bare.addFile(path, data)
    rows.append({"representative": "bare semantics (no DSO)",
                 "read_small": 0.0, "read_large": 0.0,
                 "note": "direct Python call"})

    def measure(runtime, label, cache_ttl=None, note=""):
        def work():
            lr = yield from runtime.bind(ObjectId.from_hex(oid.hex),
                                         cache_ttl=cache_ttl)
            if cache_ttl is not None:
                yield from lr.invoke("listContents")  # warm the cache
            start = gdn.world.now
            for _ in range(calls_per_point):
                yield from lr.invoke("listContents")
            small = (gdn.world.now - start) / calls_per_point
            start = gdn.world.now
            for _ in range(calls_per_point):
                yield from lr.invoke("getFileContents",
                                     {"path": "bin/tool"})
            large = (gdn.world.now - start) / calls_per_point
            return small, large

        small, large = gdn.run(work(), host=runtime.host)
        rows.append({"representative": label, "read_small": small,
                     "read_large": large, "note": note})

    # Warm cache-role representative: local execution through the
    # whole stack.
    cache_host = gdn.world.host("cache-client", "r1/c1/m0/s1")
    measure(gdn._runtime(cache_host, gdn_host=True),
            "cache role (fresh copy)", cache_ttl=1e9,
            note="full stack, local state")

    # Client-role representatives at increasing separation.
    for label, site in _PLACEMENTS:
        host = gdn.world.host("client-%s" % site.replace("/", "-"), site)
        measure(gdn._runtime(host, gdn_host=True),
                "client role, %s" % label,
                note="forwarded to replica")

    return {"rows": rows, "calls_per_point": calls_per_point}


def format_result(result: Dict) -> str:
    table = Table(["representative", "listContents", "getFileContents(64KB)",
                   "note"],
                  title="E1 / Figure 1 - invocation cost through the "
                        "subobject stack (simulated time per call)")
    for row in result["rows"]:
        table.add_row(row["representative"],
                      format_seconds(row["read_small"]),
                      format_seconds(row["read_large"]),
                      row["note"])
    return table.render()
