"""Geo-distributed client populations and request streams (§3.1).

"With interested people distributed all over the world replicas must
be created close to where the clients are."  The population model
places clients across topology regions (optionally skewed), gives each
object a *home region* where its demand concentrates, and produces a
deterministic time-ordered request stream.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from ..sim.topology import Domain, Topology
from .zipf import ZipfSampler

__all__ = ["Request", "RequestStream", "ClientPopulation"]


class Request:
    """One client action in a workload."""

    __slots__ = ("time", "kind", "site", "object_index", "region")

    def __init__(self, time: float, kind: str, site: Domain,
                 object_index: int):
        self.time = time
        self.kind = kind  # "read" or "write"
        self.site = site
        self.object_index = object_index
        self.region = site.region().path

    def __repr__(self) -> str:
        return ("Request(%.2fs %s obj%d @ %s)"
                % (self.time, self.kind, self.object_index, self.site.path))


class RequestStream:
    """A finite, time-sorted list of requests plus summary stats."""

    def __init__(self, requests: List[Request]):
        # Generated and replayed streams are already time-ordered;
        # verify that in one linear pass and only pay the sort for the
        # genuinely unsorted caller.
        previous = float("-inf")
        for request in requests:
            if request.time < previous:
                self.requests = sorted(requests, key=lambda r: r.time)
                break
            previous = request.time
        else:
            self.requests = list(requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    def reads_by_region(self, object_index: int) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for request in self.requests:
            if request.kind == "read" \
                    and request.object_index == object_index:
                counts[request.region] = counts.get(request.region, 0) + 1
        return counts

    def writes(self, object_index: int) -> int:
        return sum(1 for request in self.requests
                   if request.kind == "write"
                   and request.object_index == object_index)


class ClientPopulation:
    """Generates request streams over a topology.

    * object popularity: Zipf(``alpha``);
    * locality: each object has a home region receiving
      ``home_share`` of its reads, the rest spread uniformly;
    * writes: per-object write rates, issued from the home region
      (moderators/maintainers live near their package's community);
    * arrivals: exponential inter-arrival times at ``request_rate``
      requests per second overall.
    """

    def __init__(self, topology: Topology, object_count: int,
                 rng: random.Random, alpha: float = 1.0,
                 home_share: float = 0.7,
                 write_fraction: Optional[List[float]] = None):
        self.topology = topology
        self.object_count = object_count
        self.rng = rng
        self.home_share = home_share
        self.regions = list(topology.world.children.values())
        self.popularity = ZipfSampler(object_count, alpha, rng)
        #: per-object probability that a request is a write.
        self.write_fraction = write_fraction or [0.0] * object_count
        #: per-object home region, assigned round-robin-with-noise.
        self.home_region: List[Domain] = [
            self.regions[(index + rng.randrange(len(self.regions)))
                         % len(self.regions)]
            for index in range(object_count)]

    def _site_in(self, region: Domain) -> Domain:
        sites = list(region.sites())
        return sites[self.rng.randrange(len(sites))]

    def _site_for(self, object_index: int) -> Domain:
        if self.rng.random() < self.home_share:
            return self._site_in(self.home_region[object_index])
        return self._site_in(
            self.regions[self.rng.randrange(len(self.regions))])

    def generate(self, request_count: int,
                 request_rate: float = 10.0) -> RequestStream:
        """A deterministic stream of ``request_count`` requests."""
        requests: List[Request] = []
        now = 0.0
        for _ in range(request_count):
            now += self.rng.expovariate(request_rate)
            object_index = self.popularity.sample()
            is_write = (self.rng.random()
                        < self.write_fraction[object_index])
            if is_write:
                site = self._site_in(self.home_region[object_index])
                requests.append(Request(now, "write", site, object_index))
            else:
                site = self._site_for(object_index)
                requests.append(Request(now, "read", site, object_index))
        return RequestStream(requests)
