"""Synthetic departmental web trace (the Pierre et al. study, §3.1).

The paper's evidence for per-object replication scenarios: "We analyzed
the retrieval and update patterns of our department's Web pages and
found that, if we assign a replication scenario to each Web page that
reflects that page's individual usage and update patterns, we get
significant improvements … less wide-area network traffic … and the
response time for the end-user improved."

We cannot redistribute the VU trace, so this generator reproduces the
*heterogeneity* the study exploits (documented substitution, DESIGN.md
§4): document popularity is Zipf; most documents change rarely while a
minority changes often; readership is regionally skewed per document.
The experiment then compares uniform strategies against per-document
assignment on exactly this trace.
"""

from __future__ import annotations

import random
from typing import List

from ..sim.topology import Topology
from .population import ClientPopulation, RequestStream

__all__ = ["WebDocument", "make_web_trace"]


class WebDocument:
    """One page of the departmental site."""

    __slots__ = ("index", "path", "size", "update_class")

    def __init__(self, index: int, path: str, size: int, update_class: str):
        self.index = index
        self.path = path
        self.size = size
        self.update_class = update_class  # "static" | "occasional" | "hot"

    def __repr__(self) -> str:
        return ("WebDocument(%s, %dB, %s)"
                % (self.path, self.size, self.update_class))


def make_web_trace(topology: Topology, rng: random.Random,
                   document_count: int = 60,
                   request_count: int = 3000,
                   alpha: float = 0.9,
                   home_share: float = 0.75,
                   hot_fraction: float = 0.10,
                   occasional_fraction: float = 0.25):
    """Build (documents, request stream) for the E5 experiment.

    Update classes give per-document write fractions: static pages
    never change, occasional ones rarely, hot ones (home pages, news)
    often — the heterogeneity that makes one-size-fits-all lose.
    """
    documents: List[WebDocument] = []
    write_fraction: List[float] = []
    for index in range(document_count):
        draw = rng.random()
        if draw < hot_fraction:
            update_class, fraction = "hot", 0.15
        elif draw < hot_fraction + occasional_fraction:
            update_class, fraction = "occasional", 0.02
        else:
            update_class, fraction = "static", 0.0
        size = max(512, int(rng.lognormvariate(9.2, 1.0)))  # ~10 KB median
        documents.append(WebDocument(
            index, "/www/doc%03d.html" % index, size, update_class))
        write_fraction.append(fraction)
    population = ClientPopulation(
        topology, document_count, rng, alpha=alpha, home_share=home_share,
        write_fraction=write_fraction)
    stream: RequestStream = population.generate(request_count,
                                                request_rate=20.0)
    return documents, stream
