"""Zipf-distributed popularity sampling.

Web and software-download popularity is classically Zipf-like: the
paper's efficiency argument (§3.1) — replicate the popular things where
their readers are, leave the long tail on single servers — only matters
because demand is this skewed.  Pure-Python inverse-CDF sampler,
deterministic per supplied RNG.
"""

from __future__ import annotations

import bisect
import random
from typing import List

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Samples ranks 0..n-1 with probability ∝ 1/(rank+1)^alpha.

    Pass explicit ``weights`` (one non-negative number per rank, not
    all zero) to sample an arbitrary popularity profile through the
    same inverse-CDF machinery instead of the Zipf law.
    """

    def __init__(self, n: int, alpha: float = 1.0,
                 rng: random.Random = None,
                 weights: List[float] = None):
        if n < 1:
            raise ValueError("need at least one item")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.n = n
        self.alpha = alpha
        self.rng = rng or random.Random()
        if weights is None:
            weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
        elif len(weights) != n:
            raise ValueError("weights must cover every rank")
        elif any(w < 0 for w in weights) or not any(weights):
            raise ValueError("weights must be non-negative, not all zero")
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def probability(self, rank: int) -> float:
        """P(rank) under this distribution."""
        if rank == 0:
            return self._cdf[0]
        return self._cdf[rank] - self._cdf[rank - 1]

    def sample(self, rng: random.Random = None) -> int:
        """One rank draw (0 is the most popular).

        ``rng`` overrides the sampler's own stream for callers that
        own the randomness (e.g. a shared
        :class:`~repro.workloads.scenario.RequestMix`)."""
        return bisect.bisect_left(self._cdf, (rng or self.rng).random())

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]
