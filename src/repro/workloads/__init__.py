"""Workload generators: popularity, packages, populations, load."""

from .cohort import AggregatedPopulation, CohortScenario, DiurnalProfile
from .loadgen import (Arrival, ArrivalSchedule, BurstSchedule,
                      FlashCrowdSchedule, LoadGenerator, LoadStats,
                      PoissonSchedule, UniformSchedule)
from .packages import PackageSpec, generate_corpus, synthetic_file
from .population import ClientPopulation, Request, RequestStream
from .scenario import (TRACE_DIR, ClosedLoopScenario, HybridScenario,
                       OpenLoopScenario, RequestMix, Scenario, Soak,
                       SoakReport, TraceEvent, TraceScenario, bundled_trace,
                       load_trace, record_stream, save_trace)
from .webtrace import WebDocument, make_web_trace
from .zipf import ZipfSampler

__all__ = [
    "AggregatedPopulation", "CohortScenario", "DiurnalProfile",
    "Arrival", "ArrivalSchedule", "BurstSchedule", "FlashCrowdSchedule",
    "LoadGenerator", "LoadStats", "PoissonSchedule", "UniformSchedule",
    "PackageSpec", "generate_corpus", "synthetic_file",
    "ClientPopulation", "Request", "RequestStream",
    "TRACE_DIR", "ClosedLoopScenario", "HybridScenario", "OpenLoopScenario",
    "RequestMix", "Scenario", "Soak", "SoakReport", "TraceEvent",
    "TraceScenario", "bundled_trace", "load_trace", "record_stream",
    "save_trace",
    "WebDocument", "make_web_trace", "ZipfSampler",
]
