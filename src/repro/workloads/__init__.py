"""Workload generators: popularity, packages, populations, load."""

from .loadgen import (Arrival, ArrivalSchedule, FlashCrowdSchedule,
                      LoadGenerator, LoadStats, PoissonSchedule,
                      UniformSchedule)
from .packages import PackageSpec, generate_corpus, synthetic_file
from .population import ClientPopulation, Request, RequestStream
from .webtrace import WebDocument, make_web_trace
from .zipf import ZipfSampler

__all__ = [
    "Arrival", "ArrivalSchedule", "FlashCrowdSchedule", "LoadGenerator",
    "LoadStats", "PoissonSchedule", "UniformSchedule",
    "PackageSpec", "generate_corpus", "synthetic_file",
    "ClientPopulation", "Request", "RequestStream",
    "WebDocument", "make_web_trace", "ZipfSampler",
]
