"""Synthetic corpora of free software packages (paper §2).

The GDN's initial content: "publicly redistributable software packages,
such as the GNU C compiler, Linux distributions and shareware".  The
generator produces packages with the §2 properties — one or more files,
a unique hierarchical name, potentially large — with log-normal-ish
size spread and deterministic contents.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, List

__all__ = ["PackageSpec", "generate_corpus", "synthetic_file"]

_CATEGORIES = ["graphics", "editors", "devel", "net", "games", "science"]
_STEMS = ["gimp", "tetex", "gcc", "emacs", "vim", "mutt", "lynx", "gzip",
          "tar", "make", "perl", "python", "apache", "bind", "sendmail",
          "xfig", "gnuplot", "octave", "fetchmail", "screen"]


def synthetic_file(label: str, size: int) -> bytes:
    """Deterministic pseudo-content of a given size.

    A short digest-derived prefix keeps files distinguishable while the
    zero fill keeps generation cheap at megabyte scale.
    """
    prefix = hashlib.sha256(label.encode("utf-8")).digest()
    if size <= len(prefix):
        return prefix[:size]
    return prefix + b"\x00" * (size - len(prefix))


class PackageSpec:
    """A package to be published: name, files, derived totals."""

    def __init__(self, name: str, files: Dict[str, int]):
        self.name = name
        self.file_sizes = dict(files)

    @property
    def total_size(self) -> int:
        return sum(self.file_sizes.values())

    @property
    def largest_file(self) -> str:
        return max(sorted(self.file_sizes),
                   key=lambda path: self.file_sizes[path])

    def materialize(self) -> Dict[str, bytes]:
        """Generate the actual file contents."""
        return {path: synthetic_file("%s:%s" % (self.name, path), size)
                for path, size in self.file_sizes.items()}

    def __repr__(self) -> str:
        return ("PackageSpec(%s, %d files, %d bytes)"
                % (self.name, len(self.file_sizes), self.total_size))


def generate_corpus(count: int, rng: random.Random,
                    mean_file_size: int = 50_000,
                    files_per_package: int = 4,
                    sigma: float = 1.2) -> List[PackageSpec]:
    """``count`` packages with log-normal file sizes.

    Names combine real free-software stems with category paths, then
    fall back to systematic names, so small corpora look like the
    paper's examples (``/apps/graphics/gimp``) and large ones stay
    unique.
    """
    specs: List[PackageSpec] = []
    mu = math.log(mean_file_size)
    for index in range(count):
        if index < len(_STEMS):
            stem = _STEMS[index]
        else:
            stem = "pkg%04d" % index
        category = _CATEGORIES[index % len(_CATEGORIES)]
        name = "/apps/%s/%s" % (category, stem)
        file_count = max(1, 1 + rng.randrange(2 * files_per_package - 1))
        files: Dict[str, int] = {"README": 256 + rng.randrange(2048)}
        for file_index in range(file_count - 1):
            size = max(64, int(rng.lognormvariate(mu, sigma)))
            files["data/part%02d" % file_index] = size
        specs.append(PackageSpec(name, files))
    return specs
