"""Aggregated client cohorts: closed-loop populations at 10^5–10^6.

The paper's demand side is "a potentially very large number of people
interested in a particular software package" — but the closed-loop
scenario engine pays one Python generator, one RNG fork and one kernel
timer per simulated browser, which caps realistic populations around
10^3–10^4.  This module merges *k* statistically identical clients at
one site into a single **cohort** driven by one generator:

* :class:`CohortScenario` — a drop-in sibling of
  :class:`~repro.workloads.scenario.ClosedLoopScenario` (same
  constructor vocabulary, same :class:`~repro.workloads.scenario
  .Scenario` driving contract) that groups its clients into per-site
  cohorts of at most ``cohort_size``.
* **Equivalence mode** (``equivalence=True``) — every client keeps its
  own forked RNG and per-client quota, but the cohort multiplexes all
  their think-timer wake-ups through one wake-ordered heap and a
  single armed kernel timer.  The observable behaviour is pinned
  byte-identical against k independent ``ClosedLoopScenario._client``
  generators (for exponential think times, whose wake instants are
  almost-surely distinct); it exists to *prove* the aggregation
  machinery honest at small k.
* **Statistical mode** (the default) — :class:`AggregatedPopulation`
  keeps only a *count* of thinking clients and draws the cohort's next
  issue instant from the order statistics of k exponential think
  timers: the minimum of ``n`` independent ``Exp(1/T)`` draws is
  ``Exp(n/T)``, and memorylessness lets the pending draw be discarded
  and redrawn whenever ``n`` changes (a client issues or completes) or
  the activity profile steps.  State per cohort is O(1) however large
  k grows — a million clients cost dozens of cohort objects plus one
  event per actual request.
* :class:`DiurnalProfile` — a piecewise-constant activity multiplier
  over a repeating day, applied to the cohort issue rate with the same
  boundary-redraw sampling :class:`~repro.workloads.loadgen
  .FlashCrowdSchedule` uses (a gap that would cross a rate boundary is
  discarded and redrawn at the boundary, valid by memorylessness).

Cohorts emit exactly the traffic shape the batched network layer
(:meth:`~repro.sim.network.Network.deliver_burst`) is built for:
many same-instant, same-site-pair messages.
"""

from __future__ import annotations

import itertools
import math
import random
from heapq import heappop, heappush
from typing import Generator, List, Optional, Sequence, Tuple

from ..sim.kernel import Event, Simulator, Timeout
from ..sim.topology import Domain
from .loadgen import Arrival, LoadStats, measured
from .scenario import RequestFn, RequestMix, Scenario

__all__ = ["DiurnalProfile", "AggregatedPopulation", "CohortScenario"]


class DiurnalProfile:
    """A repeating piecewise-constant activity multiplier.

    ``multipliers`` are equal-width slots tiling one ``period``
    (default: a day in seconds); a cohort's issue rate at offset ``t``
    from the start of its drive is scaled by ``multiplier_at(t)``.
    Zero slots are allowed (nobody browses at 4am) as long as some
    slot is positive.
    """

    def __init__(self, multipliers: Sequence[float],
                 period: float = 86400.0):
        values = [float(m) for m in multipliers]
        if not values:
            raise ValueError("need at least one multiplier slot")
        if any(m < 0 for m in values):
            raise ValueError("multipliers cannot be negative")
        if not any(values):
            raise ValueError("at least one slot must be active")
        if period <= 0:
            raise ValueError("period must be positive")
        self.multipliers = values
        self.period = float(period)
        self.slot_width = self.period / len(values)

    @classmethod
    def sinusoidal(cls, slots: int = 24, floor: float = 0.2,
                   period: float = 86400.0) -> "DiurnalProfile":
        """A smooth day/night curve sampled into ``slots``: activity
        bottoms out at ``floor`` at the period's start/end and peaks
        at 1.0 mid-period."""
        if not 0.0 <= floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        values = [floor + (1.0 - floor) * 0.5
                  * (1.0 - math.cos(2.0 * math.pi * (i + 0.5) / slots))
                  for i in range(slots)]
        return cls(values, period)

    def multiplier_at(self, offset: float) -> float:
        """The activity multiplier ``offset`` seconds into the drive."""
        slot = int((offset % self.period) / self.slot_width)
        if slot >= len(self.multipliers):  # float edge at the period
            slot = len(self.multipliers) - 1
        return self.multipliers[slot]

    def next_boundary(self, offset: float) -> float:
        """The next slot boundary strictly after ``offset`` (an offset,
        like the argument)."""
        index = math.floor(offset / self.slot_width) + 1
        boundary = index * self.slot_width
        if boundary <= offset:  # float guard on exact-boundary offsets
            boundary = (index + 1) * self.slot_width
        return boundary

    def mean_multiplier(self) -> float:
        return sum(self.multipliers) / len(self.multipliers)


class AggregatedPopulation:
    """k merged closed-loop clients at one site, O(1) state in k.

    The order-statistics engine behind :class:`CohortScenario`'s
    statistical mode, usable standalone.  One instance models ``k``
    think-issue-wait clients sharing a site, a request mix and an RNG:

    * **exponential** think — the cohort tracks only how many clients
      are currently thinking; the next issue fires after
      ``Exp(thinking · a(now) / T)`` where ``a`` is the optional
      :class:`DiurnalProfile` multiplier.  The pending draw is redrawn
      whenever the thinking count or the profile rate changes
      (memorylessness makes the discard free), exactly as
      :class:`~repro.workloads.loadgen.FlashCrowdSchedule` samples its
      piecewise-constant Poisson process.
    * **fixed** think — deterministic wake instants kept in a heap of
      ``(time, count)`` groups; all clients waking at one instant
      issue as one burst (the lockstep traffic shape
      :meth:`~repro.sim.network.Network.deliver_burst` batches).
      Profiles do not apply to fixed think (no rate to scale) and are
      rejected.
    * **zero** think — completion-driven inline loops, no timers at
      all, with the same stalled-cycle livelock guard as
      :class:`~repro.workloads.scenario.ClosedLoopScenario`.

    Quotas are pooled: ``requests_per_client`` bounds the cohort at
    ``clients × requests_per_client`` total issues (per-client
    attribution is meaningless for merged clients).  ``duration``
    retires all thinkers at the deadline and lets in-flight requests
    drain, like the reference scenario's per-client deadline check.
    """

    def __init__(self, sim: Simulator, request: RequestFn,
                 rng: random.Random, site: Optional[Domain], clients: int,
                 think_time: float, stats: LoadStats,
                 counter: Optional[List[int]] = None,
                 mix: Optional[RequestMix] = None,
                 think: str = "exponential",
                 requests_per_client: Optional[int] = None,
                 duration: Optional[float] = None,
                 profile: Optional[DiurnalProfile] = None):
        if clients < 1:
            raise ValueError("need at least one client")
        if (requests_per_client is None) == (duration is None):
            raise ValueError("bound the clients with either "
                             "requests_per_client or duration")
        if requests_per_client is not None and requests_per_client < 1:
            raise ValueError("need at least one request per client")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        if think_time < 0:
            raise ValueError("think time cannot be negative")
        if think not in ("exponential", "fixed"):
            raise ValueError("think must be 'exponential' or 'fixed'")
        if profile is not None and (think != "exponential"
                                    or think_time == 0.0):
            raise ValueError("activity profiles need exponential think "
                             "times (there is no rate to scale "
                             "otherwise)")
        self.sim = sim
        self.request = request
        self.rng = rng
        self.site = site
        self.clients = clients
        self.think_time = think_time
        self.stats = stats
        self.counter = counter if counter is not None else [0]
        self.mix = mix
        self.think = think
        self.requests_per_client = requests_per_client
        self.duration = duration
        self.profile = profile
        self._quota: Optional[int] = (
            clients * requests_per_client
            if requests_per_client is not None else None)
        self._thinking = clients
        self._in_flight = 0
        self._start = 0.0
        self._deadline: Optional[float] = None
        self._issue_timer: Optional[Timeout] = None
        self._armed_at = 0.0
        self._wakes: list = []  # fixed think: heap of (time, count)
        self._done: Optional[Event] = None

    # -- the driver process ---------------------------------------------

    def run(self) -> Generator:
        """The cohort driver: spawn via ``sim.process(cohort.run())``
        (or let :class:`CohortScenario` do it)."""
        sim = self.sim
        self._start = sim.now
        if self.duration is not None:
            self._deadline = sim.now + self.duration
            guard = sim.timeout_at(self._deadline)
            guard.add_callback(self._on_deadline)
        if self.think_time == 0.0:
            # Zero think: every client is permanently in flight;
            # completion-driven inline loops, no timers.
            launch = self.clients
            if self._quota is not None:
                launch = min(launch, self._quota)
            self._thinking -= launch
            if self._quota is not None and launch == self._quota:
                self._thinking = 0  # never-launched clients retire
            for _ in range(launch):
                self._launch_loop(self._draw_arrival())
        elif self.think == "fixed":
            heappush(self._wakes, (sim.now + self.think_time,
                                   self.clients))
            self._rearm_fixed()
        else:
            self._rearm()
        if self._thinking > 0 or self._in_flight > 0:
            self._done = sim.event()
            yield self._done

    # -- issuing ---------------------------------------------------------

    def _draw_arrival(self) -> Arrival:
        if self.mix is not None:
            rank, kind = self.mix.draw(self.rng)
        else:
            rank, kind = 0, "read"
        index = self.counter[0]
        self.counter[0] += 1
        arrival = Arrival(index, self.sim.now, self.site, rank, kind)
        self.stats.note_issued()
        if self._quota is not None:
            self._quota -= 1
            if self._quota <= 0:
                # Pool exhausted: clients still thinking will never
                # issue again; retire them so the drive can finish.
                self._thinking = 0
        return arrival

    def _may_issue(self) -> bool:
        if self._quota is not None and self._quota <= 0:
            return False
        if self._deadline is not None and self.sim.now >= self._deadline:
            return False
        return True

    def _launch(self, arrival: Arrival) -> None:
        self._in_flight += 1
        self.sim.process(self._measure_one(arrival))

    def _launch_loop(self, arrival: Arrival) -> None:
        self._in_flight += 1
        self.sim.process(self._run_loop(arrival))

    def _measure_one(self, arrival: Arrival) -> Generator:
        yield from measured(self.sim, self.request, arrival, self.stats)
        self._in_flight -= 1
        if self._may_issue():
            # The client returns to the thinking pool.
            self._thinking += 1
            if self.think == "fixed":
                heappush(self._wakes,
                         (self.sim.now + self.think_time, 1))
                self._rearm_fixed()
            else:
                self._rearm()
        self._check_done()

    def _run_loop(self, arrival: Arrival) -> Generator:
        # Zero-think inline loop: issue, wait, reissue immediately —
        # the reference client's delay==0 path, including its
        # duration-bound livelock guard.
        sim = self.sim
        stalled = 0
        cycle_started = sim.now
        while True:
            yield from measured(sim, self.request, arrival, self.stats)
            if self._deadline is not None:
                if sim.now == cycle_started:
                    stalled += 1
                    if stalled >= 1000:
                        raise ValueError(
                            "duration-bound cohort made no "
                            "simulated-time progress for 1000 cycles "
                            "(zero think time and zero-time requests "
                            "can never reach the deadline)")
                else:
                    stalled = 0
            if not self._may_issue():
                break
            cycle_started = sim.now
            arrival = self._draw_arrival()
        self._in_flight -= 1
        self._check_done()

    # -- exponential think: order-statistics arming ----------------------

    def _rearm(self) -> None:
        timer = self._issue_timer
        if timer is not None:
            timer.cancel()
            self._issue_timer = None
        if self._thinking <= 0 or not self._may_issue():
            return
        sim = self.sim
        offset = sim.now - self._start
        if self.profile is not None:
            multiplier = self.profile.multiplier_at(offset)
            boundary: Optional[float] = self.profile.next_boundary(offset)
        else:
            multiplier = 1.0
            boundary = None
        if multiplier <= 0.0:
            # Dead slot: sleep to the boundary, no draw to discard.
            timer = sim.timeout_at(self._start + boundary)
            timer.add_callback(self._on_boundary)
            self._issue_timer = timer
            return
        # min of n Exp(1/T) thinkers at activity a ⇒ Exp(n·a/T).
        rate = self._thinking * multiplier / self.think_time
        gap = self.rng.expovariate(rate)
        if boundary is not None and offset + gap >= boundary:
            # Boundary-redraw sampling (FlashCrowdSchedule): jump to
            # the boundary and redraw at the new rate.
            timer = sim.timeout_at(self._start + boundary)
            timer.add_callback(self._on_boundary)
        else:
            timer = sim.timeout(gap)
            timer.add_callback(self._on_issue)
        self._issue_timer = timer

    def _on_boundary(self, _event: Event) -> None:
        self._issue_timer = None
        self._rearm()

    def _on_issue(self, _event: Event) -> None:
        self._issue_timer = None
        self._thinking -= 1
        self._launch(self._draw_arrival())
        self._rearm()
        self._check_done()

    # -- fixed think: grouped wake heap ----------------------------------

    def _rearm_fixed(self) -> None:
        if not self._wakes:
            return
        head = self._wakes[0][0]
        timer = self._issue_timer
        if timer is not None:
            if self._armed_at <= head:
                return
            timer.cancel()
        timer = self.sim.timeout_at(head)
        timer.add_callback(self._on_fixed_wake)
        self._issue_timer = timer
        self._armed_at = head

    def _on_fixed_wake(self, _event: Event) -> None:
        self._issue_timer = None
        now = self.sim.now
        waking = 0
        while self._wakes and self._wakes[0][0] <= now:
            waking += heappop(self._wakes)[1]
        for _ in range(waking):
            self._thinking -= 1
            if not self._may_issue():
                continue  # the client retires (deadline/quota)
            self._launch(self._draw_arrival())
        self._rearm_fixed()
        self._check_done()

    # -- lifecycle --------------------------------------------------------

    def _on_deadline(self, _event: Event) -> None:
        # All thinkers retire at the deadline; in-flight requests
        # drain (the reference clients' per-wake deadline check, taken
        # all at once).
        self._thinking = 0
        self._wakes.clear()
        timer = self._issue_timer
        if timer is not None:
            timer.cancel()
            self._issue_timer = None
        self._check_done()

    def _check_done(self) -> None:
        if self._thinking == 0 and self._in_flight == 0 \
                and self._done is not None:
            done = self._done
            self._done = None
            done.succeed()


class _Slot:
    """One exact-mode client: its own RNG, site, quota and guard."""

    __slots__ = ("site", "rng", "issued", "cycle_started", "stalled")

    def __init__(self, site: Optional[Domain], rng: random.Random):
        self.site = site
        self.rng = rng
        self.issued = 0
        self.cycle_started = 0.0
        self.stalled = 0


class _ExactCohort:
    """k reference clients multiplexed through one wake heap.

    Equivalence mode: every slot replays ``ClosedLoopScenario._client``
    step for step — same fork, same draw order, same quota/deadline
    checks in the same places — but all k think timers share one
    armed kernel :class:`Timeout` over a ``(wake, order, slot)`` heap.
    With exponential think times wake instants are almost surely
    distinct, so heap order is wake order and the merged drive is
    byte-identical to k independent client generators (the pinning
    tests hold it to that).
    """

    def __init__(self, scenario: "CohortScenario", sim: Simulator,
                 request: RequestFn, slots: List[_Slot],
                 stats: LoadStats, counter: List[int]):
        self.scenario = scenario
        self.sim = sim
        self.request = request
        self.slots = slots
        self.stats = stats
        self.counter = counter
        self.deadline: Optional[float] = None
        self._heap: list = []
        self._order = itertools.count()
        self._armed: Optional[Timeout] = None
        self._armed_at = 0.0
        self._live = len(slots)
        self._in_flight = 0
        self._done: Optional[Event] = None

    def run(self) -> Generator:
        scenario = self.scenario
        if scenario.duration is not None:
            self.deadline = self.sim.now + scenario.duration
        for slot in self.slots:
            arrival = self._begin_cycle(slot)
            if arrival is not None:
                self._launch(slot, arrival)
        self._maybe_arm()
        if self._live > 0 or self._in_flight > 0:
            self._done = self.sim.event()
            yield self._done

    # -- the reference client loop, split at its yield points ------------

    def _begin_cycle(self, slot: _Slot) -> Optional[Arrival]:
        """Top of the reference loop: quota check, think draw; either
        parks the slot on the wake heap (returns None) or reaches the
        issue point and returns the arrival to run."""
        scenario = self.scenario
        sim = self.sim
        if scenario.requests_per_client is not None \
                and slot.issued >= scenario.requests_per_client:
            self._retire(slot)
            return None
        slot.cycle_started = sim.now
        delay = scenario._think_delay(slot.rng)
        if delay > 0:
            self._park(slot, sim.now + delay)
            return None
        if self.deadline is not None and sim.now >= self.deadline:
            self._retire(slot)
            return None
        return self._issue(slot)

    def _issue(self, slot: _Slot) -> Arrival:
        scenario = self.scenario
        if scenario.mix is not None:
            rank, kind = scenario.mix.draw(slot.rng)
        else:
            rank, kind = 0, "read"
        index = self.counter[0]
        self.counter[0] += 1
        arrival = Arrival(index, self.sim.now, slot.site, rank, kind)
        self.stats.note_issued()
        slot.issued += 1
        return arrival

    def _launch(self, slot: _Slot, arrival: Arrival) -> None:
        self._in_flight += 1
        self.sim.process(self._run_one(slot, arrival))

    def _run_one(self, slot: _Slot, arrival: Arrival) -> Generator:
        sim = self.sim
        while True:
            yield from measured(sim, self.request, arrival, self.stats)
            if self.deadline is not None:
                if sim.now == slot.cycle_started:
                    slot.stalled += 1
                    if slot.stalled >= 1000:
                        raise ValueError(
                            "duration-bound closed loop made no "
                            "simulated-time progress for 1000 cycles "
                            "(zero think time and zero-time requests "
                            "can never reach the deadline)")
                else:
                    slot.stalled = 0
            arrival = self._begin_cycle(slot)
            if arrival is None:
                break
        self._in_flight -= 1
        self._check_done()

    # -- the shared wake timer --------------------------------------------

    def _park(self, slot: _Slot, wake: float) -> None:
        heappush(self._heap, (wake, next(self._order), slot))
        armed = self._armed
        if armed is None or wake < self._armed_at:
            if armed is not None:
                armed.cancel()
            self._arm(wake)

    def _arm(self, wake: float) -> None:
        timer = self.sim.timeout_at(wake)
        timer.add_callback(self._on_wake)
        self._armed = timer
        self._armed_at = wake

    def _maybe_arm(self) -> None:
        if self._heap:
            self._arm(self._heap[0][0])
        else:
            self._armed = None

    def _on_wake(self, _event: Event) -> None:
        self._armed = None
        sim = self.sim
        heap = self._heap
        now = sim.now
        while heap and heap[0][0] <= now:
            _wake, _order, slot = heappop(heap)
            # The reference's post-sleep deadline check.
            if self.deadline is not None and now >= self.deadline:
                self._retire(slot)
                continue
            self._launch(slot, self._issue(slot))
        self._maybe_arm()
        self._check_done()

    # -- lifecycle --------------------------------------------------------

    def _retire(self, slot: _Slot) -> None:
        self._live -= 1

    def _check_done(self) -> None:
        if self._live == 0 and self._in_flight == 0 \
                and self._done is not None:
            done = self._done
            self._done = None
            done.succeed()


class CohortScenario(Scenario):
    """A closed-loop population driven as per-site aggregated cohorts.

    The constructor vocabulary of :class:`~repro.workloads.scenario
    .ClosedLoopScenario` (clients, think_time, requests_per_client /
    duration, sites, mix, think, phases), plus:

    * ``cohort_size`` — at most this many clients share one driver;
      clients are placed round-robin over ``sites`` exactly like the
      reference scenario and grouped per site.
    * ``equivalence`` — ``True`` runs the exact per-client replay
      (:class:`_ExactCohort`: one RNG fork per client in client-index
      order, byte-identical to ``ClosedLoopScenario`` for exponential
      think); ``False`` (default) runs the O(1)-per-cohort
      order-statistics engine (:class:`AggregatedPopulation`, one fork
      per cohort).
    * ``profile`` — an optional :class:`DiurnalProfile` scaling the
      statistical cohorts' issue rate over the drive (exponential
      think only).

    Statistical mode trades per-client attribution (every cohort
    pools its quota and draws think times from one stream) for state
    that no longer grows with the population — the only O(k) cost
    left is the requests the k clients actually make.
    """

    def __init__(self, clients: int, think_time: float,
                 requests_per_client: Optional[int] = None,
                 sites: Optional[Sequence[Domain]] = None,
                 mix: Optional[RequestMix] = None,
                 think: str = "exponential",
                 label: str = "cohort",
                 duration: Optional[float] = None,
                 phases: Optional[Sequence[Tuple[float, str]]] = None,
                 cohort_size: int = 4096,
                 equivalence: bool = False,
                 profile: Optional[DiurnalProfile] = None):
        if clients < 1:
            raise ValueError("need at least one client")
        if (requests_per_client is None) == (duration is None):
            raise ValueError("bound the clients with either "
                             "requests_per_client or duration")
        if requests_per_client is not None and requests_per_client < 1:
            raise ValueError("need at least one request per client")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        if think_time < 0:
            raise ValueError("think time cannot be negative")
        if think not in ("exponential", "fixed"):
            raise ValueError("think must be 'exponential' or 'fixed'")
        if cohort_size < 1:
            raise ValueError("cohort_size must be >= 1")
        if profile is not None:
            if equivalence:
                raise ValueError("profiles apply to statistical "
                                 "cohorts only")
            if think != "exponential" or think_time == 0.0:
                raise ValueError("activity profiles need exponential "
                                 "think times")
        self.clients = clients
        self.think_time = think_time
        self.requests_per_client = requests_per_client
        self.duration = duration
        self.sites = list(sites) if sites is not None else None
        self.mix = mix
        self.think = think
        self.label = label
        self.cohort_size = cohort_size
        self.equivalence = equivalence
        self.profile = profile
        self.phases = self._validated_phases(phases)

    @property
    def count(self) -> Optional[int]:
        if self.requests_per_client is None:
            return None
        return self.clients * self.requests_per_client

    def _think_delay(self, rng: random.Random) -> float:
        # Identical to ClosedLoopScenario._think_delay (equivalence
        # mode replays it draw for draw).
        if self.think_time == 0.0:
            return 0.0
        if self.think == "fixed":
            return self.think_time
        return rng.expovariate(1.0 / self.think_time)

    def build(self, sim: Simulator, request: RequestFn,
              rng: random.Random, stats: LoadStats) -> List[Generator]:
        counter = [0]
        site_count = len(self.sites) if self.sites else 1
        drivers: List[Generator] = []
        if self.equivalence:
            # Fork per client in client-index order — the same RNG
            # tree ClosedLoopScenario.build grows, so slot i's draws
            # are bit-identical to reference client i's.
            rngs = [self._fork(rng) for _ in range(self.clients)]
            for site_index in range(site_count):
                site = self.sites[site_index] if self.sites else None
                slots = [_Slot(site, rngs[client])
                         for client in range(site_index, self.clients,
                                             site_count)]
                for low in range(0, len(slots), self.cohort_size):
                    cohort = _ExactCohort(
                        self, sim, request,
                        slots[low:low + self.cohort_size], stats, counter)
                    drivers.append(cohort.run())
            return drivers
        for site_index in range(site_count):
            # Round-robin placement head-count, computed directly.
            total = (self.clients // site_count
                     + (1 if site_index < self.clients % site_count
                        else 0))
            site = self.sites[site_index] if self.sites else None
            while total > 0:
                size = min(total, self.cohort_size)
                total -= size
                cohort = AggregatedPopulation(
                    sim, request, self._fork(rng), site, size,
                    self.think_time, stats, counter, mix=self.mix,
                    think=self.think,
                    requests_per_client=self.requests_per_client,
                    duration=self.duration, profile=self.profile)
                drivers.append(cohort.run())
        return drivers
