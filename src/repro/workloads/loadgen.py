"""Open-loop load generation for scaling experiments (§3.1).

The paper's efficiency argument starts from demand: "a potentially
very large number of people interested in a particular software
package".  Superdistribution-style workloads are defined by sudden,
heavy-tailed spikes — a release announcement turns a quiet package
into a flash crowd within seconds — and a *closed* loop of simulated
clients (each waiting for its previous download) cannot express that:
a saturated server slows the clients down, which politely throttles
the offered load exactly when the experiment needs it to keep rising.

This module drives **open-loop** load: arrivals happen on a schedule
that does not care how the system is coping, which is how demand works
on the real Internet.  It is built to be cheap enough for 10⁵+
requests per run on the fast-path kernel.

Three pieces:

* **Arrival schedules** — :class:`UniformSchedule` (deterministic
  constant rate), :class:`PoissonSchedule` (memoryless arrivals at a
  constant rate) and :class:`FlashCrowdSchedule` (piecewise-constant
  Poisson: a base rate, then a spike at ``peak_rate``).  All yield
  absolute simulation times and are deterministic per supplied RNG.
* **Request population** — optional Zipf object popularity (via
  :class:`.zipf.ZipfSampler`) and per-request site placement drawn
  from a topology's sites, so load lands where clients live.
* **The driver** — :class:`LoadGenerator` spawns one simulation
  process per arrival, measures each request's latency, and accounts
  successes, application failures and errors in :class:`LoadStats` —
  a bundle of telemetry-registry instruments whose latency histogram
  streams in O(1) per request (no sample list at 10⁵+ scale).  Runs
  are bounded by ``count`` or by ``duration`` (simulated seconds).

Typical use::

    stats = LoadStats()
    gen = LoadGenerator(world.sim, PoissonSchedule(rate=500.0),
                        request=do_one, count=100_000,
                        rng=world.rng_for("load"),
                        sites=topology.sites, stats=stats)
    elapsed = world.run_until(world.sim.process(gen.run()))
    print(stats.summary(), stats.throughput(elapsed))

where ``do_one(arrival)`` is a generator performing one request
against the system under test; it may use ``arrival.site`` (a
:class:`~repro.sim.topology.Domain`) and ``arrival.rank`` (a Zipf
popularity rank, 0 = hottest).  Return ``False`` to record an
application-level failure; any exception is recorded under its type
name.  The driver never waits for a request to finish before issuing
the next one — that is the point.
"""

from __future__ import annotations

import itertools
import random
from typing import (Any, Callable, Dict, Generator, Iterator, List,
                    Optional, Sequence)

from ..analysis.telemetry import MetricsRegistry
from ..sim.kernel import Event, Simulator
from ..sim.topology import Domain
from .zipf import ZipfSampler

__all__ = [
    "Arrival",
    "ArrivalSchedule",
    "UniformSchedule",
    "PoissonSchedule",
    "BurstSchedule",
    "FlashCrowdSchedule",
    "LoadStats",
    "LoadGenerator",
    "measured",
]


class Arrival:
    """One scheduled request: when, from where, for what."""

    __slots__ = ("index", "time", "site", "rank", "kind")

    def __init__(self, index: int, time: float,
                 site: Optional[Domain], rank: int, kind: str = "read"):
        self.index = index
        self.time = time
        #: where the request originates: a Domain, a site-path string
        #: (trace replays without a resolved topology), or None.
        self.site = site
        #: object rank / index this request targets (0 = hottest).
        self.rank = rank
        #: request kind, "read" or "write" (traces and mixes set it).
        self.kind = kind

    def __repr__(self) -> str:
        if self.site is None:
            where = "-"
        else:
            where = getattr(self.site, "path", self.site)
        return ("Arrival(#%d %.3fs %s obj%d @ %s)"
                % (self.index, self.time, self.kind, self.rank, where))


class ArrivalSchedule:
    """Produces absolute arrival times from ``start`` onward.

    ``count=None`` yields an unbounded stream — the duration-bound
    driver slices it by simulated time instead of by request count.
    """

    def times(self, count: Optional[int], start: float,
              rng: random.Random) -> Iterator[float]:
        raise NotImplementedError


class UniformSchedule(ArrivalSchedule):
    """Deterministic constant-rate arrivals: exactly ``rate`` req/s.

    No randomness in the spacing — useful when an experiment sweeps
    offered load and wants the x-axis to be exact.
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def times(self, count: Optional[int], start: float,
              rng: random.Random) -> Iterator[float]:
        indices = itertools.count() if count is None else range(count)
        for index in indices:
            yield start + index / self.rate


class PoissonSchedule(ArrivalSchedule):
    """Memoryless arrivals at ``rate`` req/s (exponential gaps).

    The classic open-loop model of many independent users.
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def times(self, count: Optional[int], start: float,
              rng: random.Random) -> Iterator[float]:
        now = start
        produced = 0
        while count is None or produced < count:
            now += rng.expovariate(self.rate)
            yield now
            produced += 1


class BurstSchedule(ArrivalSchedule):
    """All arrivals at once: a synchronized burst at ``start``.

    The degenerate open-loop case — every request is issued at the
    same instant, e.g. a tool pushing a batch of updates concurrently.
    """

    def times(self, count: Optional[int], start: float,
              rng: random.Random) -> Iterator[float]:
        if count is None:
            # Every burst arrival shares one instant; an open-ended
            # burst would issue forever without advancing time.
            raise ValueError("BurstSchedule needs a count, not a duration")
        for _ in range(count):
            yield start


class FlashCrowdSchedule(ArrivalSchedule):
    """A quiet base rate with a superdistribution-style demand spike.

    Piecewise-constant Poisson process: arrivals at ``base_rate``
    until ``spike_start`` (relative to the schedule's start), then
    ``peak_rate`` for ``spike_duration`` seconds, then ``base_rate``
    again until ``count`` arrivals have been produced.
    """

    def __init__(self, base_rate: float, peak_rate: float,
                 spike_start: float, spike_duration: float):
        if base_rate <= 0 or peak_rate <= 0:
            raise ValueError("rates must be positive")
        if spike_start < 0 or spike_duration <= 0:
            raise ValueError("spike must lie in the future and last")
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.spike_start = spike_start
        self.spike_duration = spike_duration

    def rate_at(self, offset: float) -> float:
        """Instantaneous arrival rate ``offset`` seconds in."""
        if self.spike_start <= offset < self.spike_start + self.spike_duration:
            return self.peak_rate
        return self.base_rate

    def _next_boundary(self, offset: float) -> Optional[float]:
        """The next rate-change instant after ``offset``, if any."""
        if offset < self.spike_start:
            return self.spike_start
        spike_end = self.spike_start + self.spike_duration
        if offset < spike_end:
            return spike_end
        return None

    def times(self, count: Optional[int], start: float,
              rng: random.Random) -> Iterator[float]:
        # Exact piecewise-constant Poisson sampling: a gap that would
        # cross a rate boundary is discarded and redrawn at the new
        # rate from the boundary (valid by memorylessness).  Without
        # this, one long base-rate gap could leap clean over the
        # spike window and the flash crowd would never happen.
        now = start
        produced = 0
        while count is None or produced < count:
            offset = now - start
            gap = rng.expovariate(self.rate_at(offset))
            boundary = self._next_boundary(offset)
            if boundary is not None and offset + gap >= boundary:
                now = start + boundary
                continue
            now += gap
            yield now
            produced += 1


class LoadStats:
    """Throughput / latency / drop accounting for one load run.

    A bundle of :class:`~repro.analysis.telemetry.MetricsRegistry`
    instruments: issued/ok/failed counters, an error counter, and a
    streaming :class:`~repro.analysis.telemetry.Histogram` of request
    latency (O(1) per request, bounded-error quantiles — no sample
    list however long the soak).  Pass the world's registry
    (``LoadStats(registry=world.metrics)``) to make the load metrics
    visible to its phase windows alongside kernel/network/server
    instruments; the default is a private registry.  Several stats
    bundles can share one registry — each claims a unique prefix.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 prefix: str = "load", max_error: float = 0.01):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.prefix = self.registry.unique_prefix(prefix)
        self._issued = 0
        self._ok = 0
        self._failed = 0
        #: exception-type name -> count, for requests that raised.
        self.errors: Dict[str, int] = {}
        self.registry.counter(self.prefix + ".issued",
                              fn=lambda: self._issued)
        self.registry.counter(self.prefix + ".ok", fn=lambda: self._ok)
        self.registry.counter(self.prefix + ".failed",
                              fn=lambda: self._failed)
        self.registry.counter(self.prefix + ".errors",
                              fn=lambda: sum(self.errors.values()))
        self.latency = self.registry.histogram(self.prefix + ".latency",
                                               max_error=max_error)

    # -- recording (the accounting contract of ``measured``) ------------

    def note_issued(self) -> None:
        self._issued += 1

    def note_ok(self, latency: float) -> None:
        self._ok += 1
        self.latency.record(latency)

    def note_failed(self, error: Optional[str] = None) -> None:
        self._failed += 1
        if error is not None:
            self.errors[error] = self.errors.get(error, 0) + 1

    # -- reading ---------------------------------------------------------

    @property
    def issued(self) -> int:
        return self._issued

    @property
    def ok(self) -> int:
        return self._ok

    @property
    def failed(self) -> int:
        return self._failed

    @property
    def finished(self) -> int:
        return self._ok + self._failed

    @property
    def in_flight(self) -> int:
        return self._issued - self.finished

    def throughput(self, elapsed: float) -> float:
        """Completed-OK requests per second of simulated time.

        0.0 for an empty or instantaneous run — a soak that completed
        nothing must still report cleanly.
        """
        if elapsed <= 0:
            return 0.0
        return self._ok / elapsed

    def summary(self) -> Dict[str, Any]:
        """Counts plus latency summary; all-zero when nothing ran."""
        out: Dict[str, Any] = {"issued": self._issued, "ok": self._ok,
                               "failed": self._failed}
        out.update({"mean": self.latency.mean, "p50": self.latency.p(50),
                    "p95": self.latency.p(95)})
        return out

    def phase_summary(self, window) -> Dict[str, Any]:
        """This bundle's activity inside one
        :class:`~repro.analysis.telemetry.PhaseWindow`: count deltas,
        the latency histogram of completions in the window, and
        throughput over the window's span."""
        latency = window.delta(self.latency.name)
        duration = window.duration or 0.0
        ok = window.delta(self.prefix + ".ok")
        return {
            "phase": window.label,
            "duration": duration,
            "issued": window.delta(self.prefix + ".issued"),
            "ok": ok,
            "failed": window.delta(self.prefix + ".failed"),
            "errors": window.delta(self.prefix + ".errors"),
            "throughput": ok / duration if duration > 0 else 0.0,
            "mean": latency.mean,
            "p50": latency.p(50),
            "p95": latency.p(95),
        }


class LoadGenerator:
    """Open-loop driver: issue requests on schedule, never wait.

    Each arrival spawns its own simulation process running
    ``request(arrival)``; the driver sleeps only between arrival
    times, then waits for the stragglers.  ``sites`` (Domains or site
    path strings resolved against ``topology``) are sampled uniformly
    per request; ``popularity`` (a :class:`ZipfSampler`) assigns each
    request an object rank.  Both are optional — a single-site,
    single-object workload needs neither.

    The run is bounded either by ``count`` (exactly that many
    arrivals) or by ``duration`` (issue arrivals until the schedule
    passes ``start + duration`` of simulated time — the open-ended
    soak mode, where the request total is an outcome, not an input).
    """

    def __init__(self, sim: Simulator,
                 schedule: Optional[ArrivalSchedule],
                 request: Callable[[Arrival], Generator],
                 count: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 sites: Optional[Sequence[Domain]] = None,
                 popularity: Optional[ZipfSampler] = None,
                 stats: Optional[LoadStats] = None,
                 arrivals: Optional[Sequence[Arrival]] = None,
                 mix: Optional[Any] = None,
                 duration: Optional[float] = None):
        if arrivals is not None:
            # A prebuilt arrival stream (trace replay, request mixes)
            # replaces the schedule/sites/popularity drawing entirely.
            if duration is not None:
                raise ValueError("duration does not apply to prebuilt "
                                 "arrivals")
            self._prebuilt: Optional[List[Arrival]] = list(arrivals)
            if count is None:
                count = len(self._prebuilt)
            elif count != len(self._prebuilt):
                raise ValueError("count does not match the arrival list")
        else:
            if schedule is None:
                raise ValueError("need a schedule or prebuilt arrivals")
            if (count is None) == (duration is None):
                raise ValueError(
                    "bound the run with either count or duration")
            self._prebuilt = None
        if count is not None and count < 1:
            raise ValueError("count must be >= 1")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        self.sim = sim
        self.schedule = schedule
        self.request = request
        self.count = count
        self.duration = duration
        self.rng = rng or random.Random(0)
        self.sites: Optional[List[Domain]] = (list(sites) if sites is not None
                                              else None)
        self.popularity = popularity
        #: optional request mix: an object with ``draw(rng) -> (rank,
        #: kind)`` (see :class:`.scenario.RequestMix`); takes
        #: precedence over ``popularity`` and also sets arrival kinds.
        self.mix = mix
        self.stats = stats if stats is not None else LoadStats()
        # Completion is tracked per generator, not via `stats`: a
        # LoadStats may be shared across several runs to aggregate,
        # which must not make a later run think it finished early.
        # The target is unknown until the (possibly duration-cut)
        # arrival loop ends.
        self._finished = 0
        self._target: Optional[int] = None
        self._idle: Optional[Event] = None

    def arrivals(self) -> Iterator[Arrival]:
        """The lazily generated arrival stream (consumed by ``run``)."""
        if self._prebuilt is not None:
            return iter(self._prebuilt)
        return self._drawn_arrivals()

    def _drawn_arrivals(self) -> Iterator[Arrival]:
        times = self.schedule.times(self.count, self.sim.now, self.rng)
        for index, time in enumerate(times):
            site = (self.sites[self.rng.randrange(len(self.sites))]
                    if self.sites else None)
            if self.mix is not None:
                rank, kind = self.mix.draw(self.rng)
            else:
                rank = self.popularity.sample() if self.popularity else 0
                kind = "read"
            yield Arrival(index, time, site, rank, kind)

    def run(self) -> Generator[Event, Any, float]:
        """The driver process; returns elapsed simulated seconds.

        ``elapsed = yield from gen.run()`` inside a process, or
        ``sim.process(gen.run())`` to run it standalone.
        """
        start = self.sim.now
        deadline = (start + self.duration if self.duration is not None
                    else None)
        issued = 0
        for arrival in self.arrivals():
            if deadline is not None and arrival.time > deadline:
                break
            if arrival.time > self.sim.now:
                yield self.sim.timeout(arrival.time - self.sim.now)
            self.stats.note_issued()
            issued += 1
            self.sim.process(self._measure(arrival))
        self._target = issued
        if self._finished < issued:
            # Wait for in-flight stragglers — woken exactly once by the
            # last completion, no polling loop.
            self._idle = self.sim.event()
            yield self._idle
        return self.sim.now - start

    def _measure(self, arrival: Arrival) -> Generator:
        yield from measured(self.sim, self.request, arrival, self.stats)
        self._finished += 1
        if self._idle is not None and self._target is not None \
                and self._finished >= self._target:
            self._idle.succeed()
            self._idle = None


def measured(sim: Simulator, request: Callable[[Arrival], Generator],
             arrival: Arrival, stats: LoadStats) -> Generator:
    """One measured request — THE accounting contract for all drivers
    (open loop, closed loop, trace replay): ``False`` ⇒ failed, an
    exception ⇒ counted under its type name, anything else ⇒ ok with
    latency recorded."""
    started = sim.now
    try:
        result = yield from request(arrival)
    except Exception as exc:  # noqa: BLE001 - accounted, not hidden
        stats.note_failed(type(exc).__name__)
    else:
        if result is False:
            stats.note_failed()
        else:
            stats.note_ok(sim.now - started)
