"""Open-loop load generation for scaling experiments (§3.1).

The paper's efficiency argument starts from demand: "a potentially
very large number of people interested in a particular software
package".  Superdistribution-style workloads are defined by sudden,
heavy-tailed spikes — a release announcement turns a quiet package
into a flash crowd within seconds — and a *closed* loop of simulated
clients (each waiting for its previous download) cannot express that:
a saturated server slows the clients down, which politely throttles
the offered load exactly when the experiment needs it to keep rising.

This module drives **open-loop** load: arrivals happen on a schedule
that does not care how the system is coping, which is how demand works
on the real Internet.  It is built to be cheap enough for 10⁵+
requests per run on the fast-path kernel.

Three pieces:

* **Arrival schedules** — :class:`UniformSchedule` (deterministic
  constant rate), :class:`PoissonSchedule` (memoryless arrivals at a
  constant rate) and :class:`FlashCrowdSchedule` (piecewise-constant
  Poisson: a base rate, then a spike at ``peak_rate``).  All yield
  absolute simulation times and are deterministic per supplied RNG.
* **Request population** — optional Zipf object popularity (via
  :class:`.zipf.ZipfSampler`) and per-request site placement drawn
  from a topology's sites, so load lands where clients live.
* **The driver** — :class:`LoadGenerator` spawns one simulation
  process per arrival, measures each request's latency, and accounts
  successes, application failures and errors in :class:`LoadStats`.

Typical use::

    stats = LoadStats()
    gen = LoadGenerator(world.sim, PoissonSchedule(rate=500.0),
                        request=do_one, count=100_000,
                        rng=world.rng_for("load"),
                        sites=topology.sites, stats=stats)
    elapsed = world.run_until(world.sim.process(gen.run()))
    print(stats.summary(), stats.throughput(elapsed))

where ``do_one(arrival)`` is a generator performing one request
against the system under test; it may use ``arrival.site`` (a
:class:`~repro.sim.topology.Domain`) and ``arrival.rank`` (a Zipf
popularity rank, 0 = hottest).  Return ``False`` to record an
application-level failure; any exception is recorded under its type
name.  The driver never waits for a request to finish before issuing
the next one — that is the point.
"""

from __future__ import annotations

import random
from typing import (Any, Callable, Dict, Generator, Iterator, List,
                    Optional, Sequence)

from ..analysis.metrics import Series
from ..sim.kernel import Event, Simulator
from ..sim.topology import Domain
from .zipf import ZipfSampler

__all__ = [
    "Arrival",
    "ArrivalSchedule",
    "UniformSchedule",
    "PoissonSchedule",
    "BurstSchedule",
    "FlashCrowdSchedule",
    "LoadStats",
    "LoadGenerator",
    "measured",
]


class Arrival:
    """One scheduled request: when, from where, for what."""

    __slots__ = ("index", "time", "site", "rank", "kind")

    def __init__(self, index: int, time: float,
                 site: Optional[Domain], rank: int, kind: str = "read"):
        self.index = index
        self.time = time
        #: where the request originates: a Domain, a site-path string
        #: (trace replays without a resolved topology), or None.
        self.site = site
        #: object rank / index this request targets (0 = hottest).
        self.rank = rank
        #: request kind, "read" or "write" (traces and mixes set it).
        self.kind = kind

    def __repr__(self) -> str:
        if self.site is None:
            where = "-"
        else:
            where = getattr(self.site, "path", self.site)
        return ("Arrival(#%d %.3fs %s obj%d @ %s)"
                % (self.index, self.time, self.kind, self.rank, where))


class ArrivalSchedule:
    """Produces absolute arrival times from ``start`` onward."""

    def times(self, count: int, start: float,
              rng: random.Random) -> Iterator[float]:
        raise NotImplementedError


class UniformSchedule(ArrivalSchedule):
    """Deterministic constant-rate arrivals: exactly ``rate`` req/s.

    No randomness in the spacing — useful when an experiment sweeps
    offered load and wants the x-axis to be exact.
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def times(self, count: int, start: float,
              rng: random.Random) -> Iterator[float]:
        for index in range(count):
            yield start + index / self.rate


class PoissonSchedule(ArrivalSchedule):
    """Memoryless arrivals at ``rate`` req/s (exponential gaps).

    The classic open-loop model of many independent users.
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def times(self, count: int, start: float,
              rng: random.Random) -> Iterator[float]:
        now = start
        for _ in range(count):
            now += rng.expovariate(self.rate)
            yield now


class BurstSchedule(ArrivalSchedule):
    """All arrivals at once: a synchronized burst at ``start``.

    The degenerate open-loop case — every request is issued at the
    same instant, e.g. a tool pushing a batch of updates concurrently.
    """

    def times(self, count: int, start: float,
              rng: random.Random) -> Iterator[float]:
        for _ in range(count):
            yield start


class FlashCrowdSchedule(ArrivalSchedule):
    """A quiet base rate with a superdistribution-style demand spike.

    Piecewise-constant Poisson process: arrivals at ``base_rate``
    until ``spike_start`` (relative to the schedule's start), then
    ``peak_rate`` for ``spike_duration`` seconds, then ``base_rate``
    again until ``count`` arrivals have been produced.
    """

    def __init__(self, base_rate: float, peak_rate: float,
                 spike_start: float, spike_duration: float):
        if base_rate <= 0 or peak_rate <= 0:
            raise ValueError("rates must be positive")
        if spike_start < 0 or spike_duration <= 0:
            raise ValueError("spike must lie in the future and last")
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.spike_start = spike_start
        self.spike_duration = spike_duration

    def rate_at(self, offset: float) -> float:
        """Instantaneous arrival rate ``offset`` seconds in."""
        if self.spike_start <= offset < self.spike_start + self.spike_duration:
            return self.peak_rate
        return self.base_rate

    def _next_boundary(self, offset: float) -> Optional[float]:
        """The next rate-change instant after ``offset``, if any."""
        if offset < self.spike_start:
            return self.spike_start
        spike_end = self.spike_start + self.spike_duration
        if offset < spike_end:
            return spike_end
        return None

    def times(self, count: int, start: float,
              rng: random.Random) -> Iterator[float]:
        # Exact piecewise-constant Poisson sampling: a gap that would
        # cross a rate boundary is discarded and redrawn at the new
        # rate from the boundary (valid by memorylessness).  Without
        # this, one long base-rate gap could leap clean over the
        # spike window and the flash crowd would never happen.
        now = start
        produced = 0
        while produced < count:
            offset = now - start
            gap = rng.expovariate(self.rate_at(offset))
            boundary = self._next_boundary(offset)
            if boundary is not None and offset + gap >= boundary:
                now = start + boundary
                continue
            now += gap
            yield now
            produced += 1


class LoadStats:
    """Throughput / latency / drop accounting for one load run."""

    def __init__(self):
        self.issued = 0
        self.ok = 0
        self.failed = 0
        #: exception-type name -> count, for requests that raised.
        self.errors: Dict[str, int] = {}
        self.latency = Series("latency")

    @property
    def finished(self) -> int:
        return self.ok + self.failed

    @property
    def in_flight(self) -> int:
        return self.issued - self.finished

    def throughput(self, elapsed: float) -> float:
        """Completed-OK requests per second of simulated time."""
        if elapsed <= 0:
            raise ValueError("elapsed must be positive")
        return self.ok / elapsed

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"issued": self.issued, "ok": self.ok,
                               "failed": self.failed}
        if self.latency.count:
            out.update({"mean": self.latency.mean,
                        "p95": self.latency.p(95)})
        return out


class LoadGenerator:
    """Open-loop driver: issue requests on schedule, never wait.

    Each arrival spawns its own simulation process running
    ``request(arrival)``; the driver sleeps only between arrival
    times, then waits for the stragglers.  ``sites`` (Domains or site
    path strings resolved against ``topology``) are sampled uniformly
    per request; ``popularity`` (a :class:`ZipfSampler`) assigns each
    request an object rank.  Both are optional — a single-site,
    single-object workload needs neither.
    """

    def __init__(self, sim: Simulator,
                 schedule: Optional[ArrivalSchedule],
                 request: Callable[[Arrival], Generator],
                 count: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 sites: Optional[Sequence[Domain]] = None,
                 popularity: Optional[ZipfSampler] = None,
                 stats: Optional[LoadStats] = None,
                 arrivals: Optional[Sequence[Arrival]] = None,
                 mix: Optional[Any] = None):
        if arrivals is not None:
            # A prebuilt arrival stream (trace replay, request mixes)
            # replaces the schedule/sites/popularity drawing entirely.
            self._prebuilt: Optional[List[Arrival]] = list(arrivals)
            if count is None:
                count = len(self._prebuilt)
            elif count != len(self._prebuilt):
                raise ValueError("count does not match the arrival list")
        else:
            if schedule is None:
                raise ValueError("need a schedule or prebuilt arrivals")
            if count is None:
                raise ValueError("count is required with a schedule")
            self._prebuilt = None
        if count < 1:
            raise ValueError("count must be >= 1")
        self.sim = sim
        self.schedule = schedule
        self.request = request
        self.count = count
        self.rng = rng or random.Random(0)
        self.sites: Optional[List[Domain]] = (list(sites) if sites is not None
                                              else None)
        self.popularity = popularity
        #: optional request mix: an object with ``draw(rng) -> (rank,
        #: kind)`` (see :class:`.scenario.RequestMix`); takes
        #: precedence over ``popularity`` and also sets arrival kinds.
        self.mix = mix
        self.stats = stats if stats is not None else LoadStats()
        # Completion is tracked per generator, not via `stats`: a
        # LoadStats may be shared across several runs to aggregate,
        # which must not make a later run think it finished early.
        self._finished = 0
        self._idle: Optional[Event] = None

    def arrivals(self) -> Iterator[Arrival]:
        """The lazily generated arrival stream (consumed by ``run``)."""
        if self._prebuilt is not None:
            return iter(self._prebuilt)
        return self._drawn_arrivals()

    def _drawn_arrivals(self) -> Iterator[Arrival]:
        times = self.schedule.times(self.count, self.sim.now, self.rng)
        for index, time in enumerate(times):
            site = (self.sites[self.rng.randrange(len(self.sites))]
                    if self.sites else None)
            if self.mix is not None:
                rank, kind = self.mix.draw(self.rng)
            else:
                rank = self.popularity.sample() if self.popularity else 0
                kind = "read"
            yield Arrival(index, time, site, rank, kind)

    def run(self) -> Generator[Event, Any, float]:
        """The driver process; returns elapsed simulated seconds.

        ``elapsed = yield from gen.run()`` inside a process, or
        ``sim.process(gen.run())`` to run it standalone.
        """
        start = self.sim.now
        for arrival in self.arrivals():
            if arrival.time > self.sim.now:
                yield self.sim.timeout(arrival.time - self.sim.now)
            self.stats.issued += 1
            self.sim.process(self._measure(arrival))
        if self._finished < self.count:
            # Wait for in-flight stragglers — woken exactly once by the
            # last completion, no polling loop.
            self._idle = self.sim.event()
            yield self._idle
        return self.sim.now - start

    def _measure(self, arrival: Arrival) -> Generator:
        yield from measured(self.sim, self.request, arrival, self.stats)
        self._finished += 1
        if self._idle is not None and self._finished >= self.count:
            self._idle.succeed()
            self._idle = None


def measured(sim: Simulator, request: Callable[[Arrival], Generator],
             arrival: Arrival, stats: LoadStats) -> Generator:
    """One measured request — THE accounting contract for all drivers
    (open loop, closed loop, trace replay): ``False`` ⇒ failed, an
    exception ⇒ counted under its type name, anything else ⇒ ok with
    latency recorded."""
    started = sim.now
    try:
        result = yield from request(arrival)
    except Exception as exc:  # noqa: BLE001 - accounted, not hidden
        stats.failed += 1
        name = type(exc).__name__
        stats.errors[name] = stats.errors.get(name, 0) + 1
    else:
        if result is False:
            stats.failed += 1
        else:
            stats.ok += 1
            stats.latency.add(sim.now - started)
