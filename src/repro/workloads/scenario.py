"""Unified scenario engine: one abstraction for every way load is made.

The paper's evidence is workload-driven — the departmental web-trace
study (§3.1) and the flash-crowd / partitioning scenarios all hinge on
heterogeneous, time-varying request streams.  Before this module each
experiment built its own request loop; now they all describe *what*
the workload is as a :class:`Scenario` and let the engine drive it
through :class:`~repro.workloads.loadgen.LoadGenerator`-style
accounting into one shared :class:`LoadStats`.

Four scenario families:

* :class:`OpenLoopScenario` — scheduled arrivals (uniform / Poisson /
  burst / flash crowd) that never wait for the system, optionally with
  a :class:`RequestMix` giving per-object popularity weights and
  read/write kinds.
* :class:`TraceScenario` — replay of a recorded or synthetic trace:
  a :class:`~repro.workloads.population.RequestStream`, a list of
  :class:`TraceEvent`, or a CSV/JSONL trace file written by
  :func:`save_trace`.  Same seed + same trace ⇒ identical stats.
* :class:`ClosedLoopScenario` — a population of think-time clients;
  each waits for its own previous request before thinking and issuing
  the next.  The classic interactive-user model, for experiments where
  per-request sequencing matters (GLS lookups, name resolution).
* :class:`HybridScenario` — any combination of the above running
  concurrently against the same system and stats: e.g. a closed-loop
  population of regulars plus an open-loop flash crowd.

Open- and closed-loop scenarios are bounded either by request
``count`` or by ``duration`` (simulated seconds — the open-ended soak
mode, where the request total is an outcome of the run).

:class:`Soak` composes any scenario with
:class:`~repro.sim.failures.FailureInjector` faults (host
crash/restart, partitions) and end-of-run invariant checks — the
long-haul harness behind ``examples/soak.py``.  Every soak is sliced
into telemetry *phase windows* (pre-fault / during-fault / recovered)
on the stats bundle's :class:`~repro.analysis.telemetry
.MetricsRegistry`, so the report can answer "what was p95 latency
*while* the partition was up?" without bespoke counters.

A small corpus of recorded traces is committed under
:data:`TRACE_DIR` (see ``traces/README.md``) for cross-PR replay
regression tests; :func:`bundled_trace` resolves a corpus entry.

Every scenario is driven the same way::

    stats = LoadStats()
    elapsed = world.run_until(world.sim.process(
        scenario.drive(world.sim, do_one, rng=world.rng_for("load"),
                       stats=stats)), limit=1e9)

where ``do_one(arrival)`` is a generator performing one request; the
arrival carries ``site``, ``rank`` (object index) and ``kind``
("read"/"write").
"""

from __future__ import annotations

import csv
import json
import pathlib
import random
from typing import (Any, Callable, Dict, Generator, Iterable, List,
                    Optional, Sequence, Tuple, Union)

from ..sim.failures import FailureInjector
from ..sim.kernel import Simulator
from ..sim.topology import Domain, Topology
from ..sim.transport import Host
from ..sim.world import World
from .loadgen import (Arrival, ArrivalSchedule, LoadGenerator, LoadStats,
                      measured)
from .population import RequestStream
from .zipf import ZipfSampler

__all__ = [
    "TRACE_DIR",
    "TraceEvent",
    "bundled_trace",
    "record_stream",
    "save_trace",
    "load_trace",
    "RequestMix",
    "Scenario",
    "OpenLoopScenario",
    "TraceScenario",
    "ClosedLoopScenario",
    "HybridScenario",
    "Soak",
    "SoakReport",
]

RequestFn = Callable[[Arrival], Generator]

#: The committed trace regression corpus: small recorded workloads
#: replayed identically across runs and PRs (see traces/README.md for
#: how to record a new one with :func:`save_trace`).
TRACE_DIR = pathlib.Path(__file__).parent / "traces"


def bundled_trace(name: str) -> pathlib.Path:
    """Path of a committed regression trace (``mixed_small.jsonl``,
    ...); raises if the corpus does not contain it."""
    path = TRACE_DIR / name
    if not path.exists():
        raise FileNotFoundError("no bundled trace %r under %s"
                                % (name, TRACE_DIR))
    return path


# -- trace format -----------------------------------------------------------

class TraceEvent:
    """One line of a trace: relative time, kind, object, origin site."""

    __slots__ = ("time", "kind", "object_index", "site")

    def __init__(self, time: float, kind: str, object_index: int,
                 site: Union[Domain, str, None] = None):
        self.time = time
        self.kind = kind
        self.object_index = object_index
        self.site = site

    @property
    def site_path(self) -> Optional[str]:
        if self.site is None:
            return None
        return getattr(self.site, "path", self.site)

    def __repr__(self) -> str:
        return ("TraceEvent(%.3fs %s obj%d @ %s)"
                % (self.time, self.kind, self.object_index,
                   self.site_path or "-"))


def record_stream(stream: Iterable) -> List[TraceEvent]:
    """Adapt a :class:`RequestStream` (or any iterable of objects with
    ``time``/``kind``/``object_index``/``site``) into trace events."""
    return [TraceEvent(request.time, request.kind, request.object_index,
                       request.site)
            for request in stream]


def save_trace(path: Union[str, pathlib.Path],
               events: Iterable[TraceEvent]) -> None:
    """Write a trace file; format picked by suffix (.csv or .jsonl).

    The recorder half of trace replay: synthesize a workload once
    (e.g. via :class:`~repro.workloads.population.ClientPopulation`
    and :func:`record_stream`), save it, and replay the identical
    stream across runs and PRs.
    """
    path = pathlib.Path(path)
    if path.suffix == ".csv":
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time", "kind", "object", "site"])
            for event in events:
                writer.writerow(["%r" % event.time, event.kind,
                                 event.object_index, event.site_path or ""])
    elif path.suffix == ".jsonl":
        with path.open("w") as fh:
            for event in events:
                fh.write(json.dumps({
                    "time": event.time, "kind": event.kind,
                    "object": event.object_index,
                    "site": event.site_path}) + "\n")
    else:
        raise ValueError("unknown trace format %r (use .csv or .jsonl)"
                         % path.suffix)


def load_trace(path: Union[str, pathlib.Path]) -> List[TraceEvent]:
    """Read a trace file written by :func:`save_trace`."""
    path = pathlib.Path(path)
    events: List[TraceEvent] = []
    if path.suffix == ".csv":
        with path.open(newline="") as fh:
            for row in csv.DictReader(fh):
                events.append(TraceEvent(float(row["time"]), row["kind"],
                                         int(row["object"]),
                                         row["site"] or None))
    elif path.suffix == ".jsonl":
        with path.open() as fh:
            for line in fh:
                if not line.strip():
                    continue
                raw = json.loads(line)
                events.append(TraceEvent(float(raw["time"]), raw["kind"],
                                         int(raw["object"]),
                                         raw.get("site")))
    else:
        raise ValueError("unknown trace format %r (use .csv or .jsonl)"
                         % path.suffix)
    return events


# -- request mixes ----------------------------------------------------------

class RequestMix:
    """Per-object popularity weights with a read/write kind mix.

    Replaces the single-object request pool: each draw picks an object
    index (Zipf(``alpha``) by default, or explicit ``weights``) and a
    kind ("write" with that object's ``write_fraction`` probability).
    Stateless per draw — determinism comes from the caller's RNG, so a
    mix can be shared between scenarios without coupling their draws.
    """

    def __init__(self, object_count: int, alpha: float = 1.0,
                 weights: Optional[Sequence[float]] = None,
                 write_fraction: Union[float, Sequence[float]] = 0.0):
        self.object_count = object_count
        self._popularity = ZipfSampler(
            object_count, alpha,
            weights=list(weights) if weights is not None else None)
        if isinstance(write_fraction, (int, float)):
            write_fraction = [float(write_fraction)] * object_count
        elif len(write_fraction) != object_count:
            raise ValueError("write_fraction must cover every object")
        if any(not 0.0 <= f <= 1.0 for f in write_fraction):
            raise ValueError("write fractions must be in [0, 1]")
        self.write_fraction = list(write_fraction)

    def probability(self, rank: int) -> float:
        return self._popularity.probability(rank)

    def draw(self, rng: random.Random) -> Tuple[int, str]:
        """One (object index, kind) draw from the caller's RNG."""
        rank = self._popularity.sample(rng)
        kind = ("write" if rng.random() < self.write_fraction[rank]
                else "read")
        return rank, kind


# -- the scenario abstraction -----------------------------------------------

class Scenario:
    """A declarative description of one load pattern.

    Subclasses implement :meth:`build`, returning the generator
    processes that jointly drive the load; :meth:`drive` is the
    engine: it spawns them, waits for all of them (and their
    in-flight requests), and returns the elapsed simulated seconds.

    Any scenario can carry **phase marks** (:attr:`phases`, exposed as
    a ``phases=`` constructor argument on the open- and closed-loop
    scenarios): a sequence of ``(offset_seconds, label)`` pairs, each
    opening a named phase window on the stats bundle's
    :class:`~repro.analysis.telemetry.MetricsRegistry` that many
    seconds after the drive starts.  Consecutive marks tile the run
    exactly like a :class:`Soak`'s automatic fault slicing — but
    without having to wrap the scenario in a ``Soak`` — so
    ``stats.phase_summary(window)`` can answer "what was p95 during
    the spike?" for a plain load run.  The windows land in
    ``stats.registry.phases`` when the drive finishes (a phase someone
    else left open is closed first, and marks beyond the end of the
    run are dropped).
    """

    label = "scenario"
    #: Optional ``[(offset_seconds, label), ...]`` phase marks.
    phases: Optional[List[Tuple[float, str]]] = None

    def build(self, sim: Simulator, request: RequestFn,
              rng: random.Random, stats: LoadStats) -> List[Generator]:
        raise NotImplementedError

    def drive(self, sim: Simulator, request: RequestFn,
              rng: Optional[random.Random] = None,
              stats: Optional[LoadStats] = None
              ) -> Generator[Any, Any, float]:
        """The driver process: ``elapsed = yield from sc.drive(...)``,
        or spawn it via ``sim.process(sc.drive(...))``."""
        rng = rng if rng is not None else random.Random(0)
        stats = stats if stats is not None else LoadStats()
        start = sim.now
        phase_proc = None
        if self.phases:
            # Close any foreign open phase so this scenario's windows
            # are cleanly attributable (mirrors Soak.run).  Spawned
            # *before* the load drivers: an offset-0 mark must open
            # its window before the first arrival is issued.
            stats.registry.end_phase(now=sim.now)
            phase_proc = sim.process(
                self._phase_driver(sim, stats.registry, start))
        processes = [sim.process(driver)
                     for driver in self.build(sim, request, rng, stats)]
        for process in processes:
            yield process
        if phase_proc is not None:
            if phase_proc.alive:  # marks beyond the end of the run
                phase_proc.kill()
            stats.registry.end_phase(now=sim.now)
        return sim.now - start

    def _phase_driver(self, sim: Simulator, registry,
                      start: float) -> Generator:
        for offset, label in self.phases:
            when = start + offset
            if when > sim.now:
                yield sim.timeout_at(when)
            registry.phase(label, now=sim.now)

    @staticmethod
    def _validated_phases(
            phases: Optional[Sequence[Tuple[float, str]]]
    ) -> Optional[List[Tuple[float, str]]]:
        """Normalise ``phases=``: non-negative offsets, sorted."""
        if phases is None:
            return None
        marks: List[Tuple[float, str]] = []
        for offset, label in phases:
            offset = float(offset)
            if offset < 0:
                raise ValueError("phase offsets are relative to the "
                                 "start of the drive; %r is negative"
                                 % offset)
            marks.append((offset, str(label)))
        marks.sort(key=lambda mark: mark[0])
        return marks or None

    @staticmethod
    def _fork(rng: random.Random) -> random.Random:
        """An independent child RNG: concurrent sub-drivers must not
        interleave draws from one stream (event order would couple
        their randomness)."""
        return random.Random(rng.getrandbits(64))


class OpenLoopScenario(Scenario):
    """Scheduled arrivals that never wait for the system.

    A thin declarative wrapper over :class:`LoadGenerator`: any
    :class:`~repro.workloads.loadgen.ArrivalSchedule` plus optional
    site placement and a :class:`RequestMix` (or ``popularity``
    sampler) for multi-object workloads.

    Bound the run with either ``count`` (exactly that many arrivals)
    or ``duration`` (arrivals until that much simulated time has
    passed — open-ended soaks stop on the clock; :attr:`count` is then
    ``None`` because the total is an outcome of the run).

    ``phases=[(0.0, "warmup"), (5.0, "spike"), ...]`` marks named
    telemetry phase windows at offsets from the start of the drive —
    no :class:`Soak` wrapper needed (see :class:`Scenario`).
    """

    def __init__(self, schedule: ArrivalSchedule, count: Optional[int] = None,
                 sites: Optional[Sequence[Domain]] = None,
                 mix: Optional[RequestMix] = None,
                 popularity: Optional[Any] = None,
                 label: str = "open-loop",
                 duration: Optional[float] = None,
                 phases: Optional[Sequence[Tuple[float, str]]] = None):
        if (count is None) == (duration is None):
            raise ValueError("bound the scenario with either count "
                             "or duration")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        self.schedule = schedule
        self.count = count
        self.duration = duration
        self.sites = list(sites) if sites is not None else None
        self.mix = mix
        self.popularity = popularity
        self.label = label
        #: ``[(offset, label), ...]`` marks opening named phase
        #: windows on the stats registry (see :class:`Scenario`).
        self.phases = self._validated_phases(phases)

    def build(self, sim: Simulator, request: RequestFn,
              rng: random.Random, stats: LoadStats) -> List[Generator]:
        generator = LoadGenerator(sim, self.schedule, request, self.count,
                                  rng=self._fork(rng), sites=self.sites,
                                  popularity=self.popularity,
                                  stats=stats, mix=self.mix,
                                  duration=self.duration)
        return [generator.run()]


class TraceScenario(Scenario):
    """Replay a trace through the engine.

    Two pacing modes:

    * ``"trace"`` (default) — open-loop on the trace's own timestamps:
      event times are relative to the start of the run and each
      becomes an arrival at ``sim.now + time``, overlapping exactly as
      the recorded clients did.
    * ``"sequential"`` — closed-loop, as fast as possible: each
      request is issued when the previous one finishes, in trace
      order.  For A/B comparisons where queueing effects would drown
      the per-request signal.

    Arrivals carry the trace's site, object index (as
    ``arrival.rank``) and kind.  Sites are resolved against
    ``topology`` when one is supplied; otherwise Domains pass through
    as-is and plain path strings are handed to the request callable
    unresolved (site-path keyed helpers like
    ``GdnDeployment.browser_pool`` accept both).
    """

    def __init__(self, events: Iterable[TraceEvent],
                 topology: Optional[Topology] = None,
                 pacing: str = "trace",
                 label: str = "trace"):
        self.events = list(events)
        if not self.events:
            raise ValueError("trace is empty")
        if pacing not in ("trace", "sequential"):
            raise ValueError("pacing must be 'trace' or 'sequential'")
        self.topology = topology
        self.pacing = pacing
        self.label = label

    @classmethod
    def from_stream(cls, stream: RequestStream, pacing: str = "trace",
                    label: str = "trace") -> "TraceScenario":
        """Replay a synthesized :class:`RequestStream` (webtrace,
        population) — the bridge from the §3.1 generators."""
        return cls(record_stream(stream), pacing=pacing, label=label)

    @classmethod
    def from_file(cls, path: Union[str, pathlib.Path],
                  topology: Optional[Topology] = None) -> "TraceScenario":
        """Replay a recorded CSV/JSONL trace file."""
        return cls(load_trace(path), topology=topology,
                   label="trace:%s" % pathlib.Path(path).name)

    @property
    def count(self) -> int:
        return len(self.events)

    def arrivals(self, sim: Simulator) -> List[Arrival]:
        start = sim.now
        arrivals = []
        for index, event in enumerate(self.events):
            site = event.site
            if self.topology is not None and isinstance(site, str):
                site = self.topology.site(site)
            arrivals.append(Arrival(index, start + event.time, site,
                                    event.object_index, event.kind))
        arrivals.sort(key=lambda a: a.time)
        return arrivals

    def build(self, sim: Simulator, request: RequestFn,
              rng: random.Random, stats: LoadStats) -> List[Generator]:
        arrivals = self.arrivals(sim)
        if self.pacing == "sequential":
            return [self._sequential(sim, request, arrivals, stats)]
        generator = LoadGenerator(sim, None, request, arrivals=arrivals,
                                  rng=self._fork(rng), stats=stats)
        return [generator.run()]

    @staticmethod
    def _sequential(sim: Simulator, request: RequestFn,
                    arrivals: List[Arrival], stats: LoadStats) -> Generator:
        for arrival in arrivals:
            stats.note_issued()
            yield from measured(sim, request, arrival, stats)


class ClosedLoopScenario(Scenario):
    """A population of think-time clients.

    Each client loops: think (an exponential or fixed delay of mean
    ``think_time``), issue one request, *wait for it to finish*.  A
    saturated system slows the clients down — exactly the feedback an
    open loop refuses to model, and the right model for sequenced
    interactions.  Clients are placed round-robin over ``sites``;
    objects come from ``mix``.

    Bound each client with ``requests_per_client`` (a fixed quota) or
    ``duration`` (clients keep looping until that much simulated time
    has passed, then finish their in-flight request and stop — the
    open-ended soak mode; :attr:`count` is then ``None``).

    ``phases=`` marks named telemetry phase windows at offsets from
    the start of the drive, as on :class:`OpenLoopScenario`.
    """

    def __init__(self, clients: int, think_time: float,
                 requests_per_client: Optional[int] = None,
                 sites: Optional[Sequence[Domain]] = None,
                 mix: Optional[RequestMix] = None,
                 think: str = "exponential",
                 label: str = "closed-loop",
                 duration: Optional[float] = None,
                 phases: Optional[Sequence[Tuple[float, str]]] = None):
        if clients < 1:
            raise ValueError("need at least one client")
        if (requests_per_client is None) == (duration is None):
            raise ValueError("bound the clients with either "
                             "requests_per_client or duration")
        if requests_per_client is not None and requests_per_client < 1:
            raise ValueError("need at least one request per client")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        if think_time < 0:
            raise ValueError("think time cannot be negative")
        if think not in ("exponential", "fixed"):
            raise ValueError("think must be 'exponential' or 'fixed'")
        self.clients = clients
        self.think_time = think_time
        self.requests_per_client = requests_per_client
        self.duration = duration
        self.sites = list(sites) if sites is not None else None
        self.mix = mix
        self.think = think
        self.label = label
        #: ``[(offset, label), ...]`` marks opening named phase
        #: windows on the stats registry (see :class:`Scenario`).
        self.phases = self._validated_phases(phases)

    @property
    def count(self) -> Optional[int]:
        if self.requests_per_client is None:
            return None
        return self.clients * self.requests_per_client

    def build(self, sim: Simulator, request: RequestFn,
              rng: random.Random, stats: LoadStats) -> List[Generator]:
        counter = [0]
        return [self._client(client_index, sim, request, self._fork(rng),
                             stats, counter)
                for client_index in range(self.clients)]

    def _think_delay(self, rng: random.Random) -> float:
        if self.think_time == 0.0:
            return 0.0
        if self.think == "fixed":
            return self.think_time
        return rng.expovariate(1.0 / self.think_time)

    def _client(self, client_index: int, sim: Simulator,
                request: RequestFn, rng: random.Random, stats: LoadStats,
                counter: List[int]) -> Generator:
        site = (self.sites[client_index % len(self.sites)]
                if self.sites else None)
        deadline = (sim.now + self.duration if self.duration is not None
                    else None)
        issued = 0
        stalled_cycles = 0
        while True:
            if self.requests_per_client is not None \
                    and issued >= self.requests_per_client:
                break
            cycle_started = sim.now
            delay = self._think_delay(rng)
            if delay > 0:
                yield sim.timeout(delay)
            if deadline is not None and sim.now >= deadline:
                break
            if self.mix is not None:
                rank, kind = self.mix.draw(rng)
            else:
                rank, kind = 0, "read"
            index = counter[0]
            counter[0] += 1
            arrival = Arrival(index, sim.now, site, rank, kind)
            stats.note_issued()
            issued += 1
            # Closed loop: measure inline — the client *is* the waiter.
            yield from measured(sim, request, arrival, stats)
            if deadline is not None:
                # A duration bound only ever trips on the simulated
                # clock; zero think time plus zero-time requests would
                # spin here forever.  Surface the livelock instead.
                if sim.now == cycle_started:
                    stalled_cycles += 1
                    if stalled_cycles >= 1000:
                        raise ValueError(
                            "duration-bound closed loop made no "
                            "simulated-time progress for 1000 cycles "
                            "(zero think time and zero-time requests "
                            "can never reach the deadline)")
                else:
                    stalled_cycles = 0


class HybridScenario(Scenario):
    """Several scenarios running concurrently against one system.

    The §3.1 picture in one run: a closed-loop population of regulars
    browsing with think times *plus* an open-loop flash crowd that
    does not care how the system is coping — all accounted in the
    same :class:`LoadStats`.
    """

    def __init__(self, scenarios: Sequence[Scenario],
                 label: str = "hybrid"):
        if not scenarios:
            raise ValueError("need at least one scenario")
        self.scenarios = list(scenarios)
        self.label = label

    @property
    def count(self) -> Optional[int]:
        """Total requests, or ``None`` if any member is duration-bound
        (its total is only known after the run)."""
        counts = [scenario.count for scenario in self.scenarios]
        if any(count is None for count in counts):
            return None
        return sum(counts)

    def build(self, sim: Simulator, request: RequestFn,
              rng: random.Random, stats: LoadStats) -> List[Generator]:
        drivers: List[Generator] = []
        for scenario in self.scenarios:
            drivers.extend(scenario.build(sim, request, self._fork(rng),
                                          stats))
        return drivers


# -- soak runs: load + faults + invariants + phase windows ------------------

class SoakReport:
    """Outcome of one :class:`Soak` run.

    Besides the run totals, carries the closed
    :class:`~repro.analysis.telemetry.PhaseWindow` per phase
    (pre-fault / during-fault / recovered), so latency, throughput and
    error counts can be reported for each phase separately —
    :meth:`phase_rows` gives the numbers, :meth:`phase_table` the
    rendered table.
    """

    def __init__(self, stats: LoadStats, elapsed: float,
                 fault_log: List[tuple],
                 failures: List[Tuple[str, str]],
                 invariants_checked: int,
                 phases: Optional[List[Any]] = None):
        self.stats = stats
        self.elapsed = elapsed
        self.fault_log = fault_log
        self.failures = failures
        self.invariants_checked = invariants_checked
        #: Closed PhaseWindows tiling the run, in order.
        self.phases = list(phases or [])

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict[str, Any]:
        """Run totals; all-zero (never raising) when nothing completed."""
        out = dict(self.stats.summary())
        out.update({"elapsed": self.elapsed,
                    "throughput": self.stats.throughput(self.elapsed),
                    "faults": len(self.fault_log),
                    "invariants": self.invariants_checked,
                    "violations": len(self.failures)})
        return out

    def phase_rows(self) -> List[Dict[str, Any]]:
        """Per-phase stats dicts, sourced solely from registry windows."""
        return [self.stats.phase_summary(window) for window in self.phases]

    def phase_table(self) -> str:
        """The per-phase report the ROADMAP asked for: throughput,
        latency quantiles and error counts during vs after a fault."""
        from ..analysis.tables import Table, format_rate, format_seconds
        table = Table(["phase", "span", "issued", "ok", "failed",
                       "throughput", "p50 latency", "p95 latency"],
                      title="per-phase telemetry "
                            "(MetricsRegistry windows)")
        for row in self.phase_rows():
            table.add_row(row["phase"], format_seconds(row["duration"]),
                          row["issued"], row["ok"], row["failed"],
                          format_rate(row["throughput"]),
                          format_seconds(row["p50"]),
                          format_seconds(row["p95"]))
        return table.render()


class Soak:
    """Sustained load + fault injection + invariants + phase windows.

    Wraps any :class:`Scenario` with a
    :class:`~repro.sim.failures.FailureInjector` schedule (declare
    faults before :meth:`run`; times are absolute simulation times)
    and named invariant checks evaluated after the load drains and the
    system settles.  An invariant is a callable returning ``False`` or
    raising to signal violation; anything else passes.  Invariants may
    be **window-scoped** (``invariant(..., phase="during-fault")``):
    the check then receives that phase's closed window and can assert
    on in-window deltas instead of run totals.

    The run is automatically sliced into phase windows on the stats
    bundle's registry: ``pre-fault`` until the first scheduled fault
    begins, ``during-fault`` until the last one ends (restart /
    partition heal), and ``recovered`` to the end of the settle
    period.  A fault-free soak gets a single ``steady`` phase.  Extra
    boundaries can be added with :meth:`mark_phase`.  Create the stats
    as ``LoadStats(registry=world.metrics)`` to capture kernel,
    network and server instruments in the same windows.
    """

    def __init__(self, world: World, scenario: Scenario,
                 request: RequestFn,
                 rng: Optional[random.Random] = None,
                 stats: Optional[LoadStats] = None,
                 settle: float = 5.0):
        self.world = world
        self.scenario = scenario
        self.request = request
        self.rng = rng if rng is not None else world.rng_for("soak")
        self.stats = stats if stats is not None \
            else LoadStats(registry=world.metrics)
        self.settle = settle
        self.injector = FailureInjector(world)
        self.invariants: List[Tuple[str, Callable, Optional[str]]] = []
        self._fault_spans: List[Tuple[float, float]] = []
        self._extra_marks: List[Tuple[float, str]] = []

    # -- fault schedule (thin FailureInjector passthroughs) -------------

    def crash_restart(self, host: Host, crash_at: float, restart_at: float,
                      recover: Optional[Callable[[], None]] = None) -> None:
        self.injector.crash_restart(host, crash_at, restart_at, recover)
        self._fault_spans.append((crash_at, restart_at))

    def partition(self, domain: Domain, start: float,
                  duration: float) -> None:
        self.injector.partition_domain(domain, start, duration)
        self._fault_spans.append((start, start + duration))

    def loss_window(self, level, probability: float, start: float,
                    end: float) -> None:
        """Transient datagram loss across ``level`` boundaries; the
        prior loss rate is restored when the window closes."""
        self.injector.loss_window(level, probability, start, end)
        self._fault_spans.append((start, end))

    def mark_phase(self, when: float, label: str) -> None:
        """Open a custom phase window at absolute time ``when``."""
        self._extra_marks.append((when, label))

    # -- invariants ------------------------------------------------------

    def invariant(self, name: str, check: Callable,
                  phase: Optional[str] = None) -> None:
        """Register an invariant checked after the run settles.

        Plain invariants take no arguments.  With ``phase=`` the
        invariant is **window-scoped**: ``check`` receives the closed
        :class:`~repro.analysis.telemetry.PhaseWindow` of the named
        phase (``"during-fault"``, ``"recovered"``, or a
        :meth:`mark_phase` label) so it can assert on what happened
        *inside* that window — e.g. "error rate during the partition
        stayed under 30%" via ``stats.phase_summary(window)``.  A
        window-scoped invariant fails if the run produced no phase
        with that label.
        """
        self.invariants.append((name, check, phase))

    def serve_stale_invariant(self, caches: Sequence = (),
                              max_error_rate: float = 0.05,
                              require_stale_hits: bool = True,
                              phase: str = "during-fault",
                              name: str = "serve-stale-availability"
                              ) -> None:
        """The flash-crowd availability invariant (GLS partition).

        Window-scoped on the fault phase: requests issued while the
        location service is partitioned must still mostly succeed —
        the failed fraction stays at or below ``max_error_rate`` —
        and, when ``require_stale_hits`` is set and metrics-bound
        :class:`~repro.gdn.cache.GlsLookupCache` instances are given,
        at least one of them must have answered from a stale entry
        inside the window (proof the availability came from
        serve-stale, not from bindings that never expired).

        With serve-stale off the same soak fails this invariant:
        every expired binding turns into upstream GLS timeouts and
        503s for the duration of the partition.
        """
        caches = list(caches)

        def check(window):
            row = self.stats.phase_summary(window)
            issued = row["issued"]
            if not issued:
                raise AssertionError("no requests issued during %r"
                                     % phase)
            rate = row["failed"] / issued
            if rate > max_error_rate:
                raise AssertionError(
                    "error rate %.1f%% during %r exceeds %.1f%% "
                    "(failed %d of %d)"
                    % (rate * 100, phase, max_error_rate * 100,
                       row["failed"], issued))
            if require_stale_hits:
                bound = [cache for cache in caches
                         if getattr(cache, "metrics_prefix", None)]
                stale = sum(
                    window.delta(cache.metrics_prefix + ".stale_served")
                    for cache in bound)
                if not stale:
                    raise AssertionError(
                        "no stale entries served during %r (%d "
                        "cache(s) inspected)" % (phase, len(bound)))
            return True

        self.invariant(name, check, phase=phase)

    def chunked_transfer_invariant(self, downloader,
                                   refetch_bound: float = 1.0,
                                   min_completed: Optional[int] = None
                                   ) -> None:
        """The resilient-transfer invariants (crash/partition soaks).

        Registers three named checks against a
        :class:`~repro.gdn.transfer.ChunkedDownloader`:

        * ``transfer-completes`` — every started transfer finished
          (or at least ``min_completed`` did, when given): the fault
          did not turn downloads into permanent failures;
        * ``no-duplicate-chunk-application`` — no chunk was applied
          to a reassembly twice, across crash/resume boundaries;
        * ``refetch-bounded`` — bytes re-fetched stayed at or below
          ``refetch_bound`` × bytes applied: resumption actually
          saved the work already done.

        A no-resume downloader under the same fault schedule fails
        these — restart-from-zero re-fetches every verified chunk
        until the retry budget runs dry.
        """
        def completes():
            wanted = (downloader.transfers_started
                      if min_completed is None else min_completed)
            done = downloader.transfers_completed
            if done < wanted:
                raise AssertionError(
                    "%d of %d transfers completed (%d failed, budget "
                    "exhausted %d time(s))"
                    % (done, wanted, downloader.transfers_failed,
                       downloader.budget_exhausted))
            return True

        def no_duplicates():
            if downloader.duplicate_applications:
                raise AssertionError(
                    "%d duplicate chunk application(s)"
                    % downloader.duplicate_applications)
            return True

        def refetch_bounded():
            ratio = downloader.refetch_ratio()
            if ratio > refetch_bound:
                raise AssertionError(
                    "re-fetched %.2fx the applied bytes (bound %.2fx: "
                    "%d refetched vs %d applied)"
                    % (ratio, refetch_bound, downloader.bytes_refetched,
                       downloader.bytes_applied))
            return True

        self.invariant("transfer-completes", completes)
        self.invariant("no-duplicate-chunk-application", no_duplicates)
        self.invariant("refetch-bounded", refetch_bounded)

    # -- the run ---------------------------------------------------------

    def _phase_marks(self) -> List[Tuple[float, str]]:
        marks = list(self._extra_marks)
        if self._fault_spans:
            marks.append((min(start for start, _ in self._fault_spans),
                          "during-fault"))
            marks.append((max(end for _, end in self._fault_spans),
                          "recovered"))
        return sorted(marks)

    def _phase_driver(self, marks: List[Tuple[float, str]]) -> Generator:
        registry = self.stats.registry
        for when, label in marks:
            if when > self.world.now:
                yield self.world.sim.timeout(when - self.world.now)
            registry.phase(label, now=self.world.now)

    def run(self, limit: float = 1e9) -> SoakReport:
        registry = self.stats.registry
        marks = self._phase_marks()
        # A phase someone else left open (e.g. an experiment's setup
        # window) is closed first, so it is appended *before* the
        # count and the report's phases are the soak's own.
        registry.end_phase(now=self.world.now)
        phases_before = len(registry.phases)
        registry.phase("pre-fault" if marks else "steady",
                       now=self.world.now)
        if marks:
            self.world.sim.process(self._phase_driver(marks))
        driver = self.world.sim.process(
            self.scenario.drive(self.world.sim, self.request,
                                rng=self.rng, stats=self.stats))
        elapsed = self.world.run_until(driver, limit=limit)
        if self.settle > 0:
            self.world.run(until=self.world.now + self.settle)
        registry.end_phase(now=self.world.now)
        phases = registry.phases[phases_before:]
        failures: List[Tuple[str, str]] = []
        for name, check, phase in self.invariants:
            if phase is None:
                targets: List[Any] = [None]
            else:
                # Every window carrying the label is checked (repeated
                # mark_phase labels produce several); a violation in
                # any one of them fails the invariant.
                targets = [w for w in phases if w.label == phase]
                if not targets:
                    failures.append(
                        (name, "no phase window labelled %r (phases: %s)"
                         % (phase, [w.label for w in phases])))
                    continue
            for window in targets:
                try:
                    outcome = check() if window is None else check(window)
                except Exception as exc:  # noqa: BLE001 - reported
                    failures.append(
                        (name, "%s: %s" % (type(exc).__name__, exc)))
                    break
                if outcome is False:
                    failures.append((name, "returned False"))
                    break
        return SoakReport(self.stats, elapsed, list(self.injector.log),
                          failures, len(self.invariants), phases=phases)
