"""Attribute-based package search (paper §2/§8, future work implemented).

"we would like the GDN to support some form of attribute-based search,
such that people can look for a software package with some specific
functionality" (§5); §8 lists "a more powerful mechanism for
attribute-based search" as a planned functional addition.

The search service is a directory daemon: moderator tools register
each package's attributes (category, description keywords, licence…)
when they create or update it, and anyone can query by attribute
equality or keyword.  Queries return object names, which then resolve
through the normal GNS → GLS → bind path — search never bypasses the
naming architecture.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..sim.rpc import RpcContext, RpcServer
from ..sim.transport import Host
from ..sim.world import World

__all__ = ["SearchService", "SEARCH_PORT"]

SEARCH_PORT = 7300


class SearchService:
    """An inverted index over package attributes."""

    def __init__(self, world: World, host: Host, port: int = SEARCH_PORT,
                 channel_factory: Optional[Callable] = None,
                 authorizer: Optional[Callable[[RpcContext], bool]] = None):
        self.world = world
        self.host = host
        self.port = port
        self.channel_factory = channel_factory
        #: Gate for register/unregister; queries are always open.
        self.authorizer = authorizer
        #: object name -> attributes.
        self._attributes: Dict[str, Dict[str, str]] = {}
        #: (key, value) -> set of object names.
        self._index: Dict[tuple, Set[str]] = {}
        self._server: Optional[RpcServer] = None
        self.registrations = 0
        self.queries = 0
        self.rejected = 0

    def start(self) -> None:
        server = RpcServer(self.host, self.port,
                           channel_factory=self.channel_factory)
        server.register("register", self._handle_register)
        server.register("unregister", self._handle_unregister)
        server.register("search", self._handle_search)
        server.register("attributes", self._handle_attributes)
        server.start()
        self._server = server

    def stop(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None

    # -- index maintenance ---------------------------------------------------

    def _authorize(self, ctx: RpcContext) -> None:
        if self.authorizer is not None and not self.authorizer(ctx):
            self.rejected += 1
            raise PermissionError(
                "principal %r may not modify the search index"
                % (ctx.peer_principal,))

    def _unindex(self, name: str) -> None:
        for key, value in self._attributes.get(name, {}).items():
            names = self._index.get((key, value.lower()))
            if names is not None:
                names.discard(name)
                if not names:
                    del self._index[(key, value.lower())]

    def _handle_register(self, ctx: RpcContext, args: dict) -> dict:
        self._authorize(ctx)
        name = args["name"]
        attributes = {str(k): str(v)
                      for k, v in args.get("attributes", {}).items()}
        self._unindex(name)
        self._attributes[name] = attributes
        for key, value in attributes.items():
            self._index.setdefault((key, value.lower()), set()).add(name)
        self.registrations += 1
        return {"indexed": name, "attributes": len(attributes)}

    def _handle_unregister(self, ctx: RpcContext, args: dict) -> dict:
        self._authorize(ctx)
        name = args["name"]
        self._unindex(name)
        existed = self._attributes.pop(name, None) is not None
        return {"removed": existed}

    # -- queries -----------------------------------------------------------------

    def _handle_search(self, ctx: RpcContext, args: dict) -> dict:
        """Equality query: all packages matching every given attribute.

        ``{"query": {"category": "graphics"}}`` → sorted object names.
        """
        self.queries += 1
        query = args.get("query", {})
        if not query:
            return {"matches": sorted(self._attributes)}
        candidate_sets: List[Set[str]] = []
        for key, value in query.items():
            candidate_sets.append(
                set(self._index.get((str(key), str(value).lower()), set())))
        matches = set.intersection(*candidate_sets) if candidate_sets \
            else set()
        return {"matches": sorted(matches)}

    def _handle_attributes(self, ctx: RpcContext, args: dict) -> dict:
        name = args["name"]
        attributes = self._attributes.get(name)
        if attributes is None:
            return {"found": False, "attributes": {}}
        return {"found": True, "attributes": dict(attributes)}
