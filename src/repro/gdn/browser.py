"""User browsers and access-point selection (paper §4).

"Users communicate with only one GDN-HTTPD, in particular, with the
one nearest to them.  This HTTPD is the user's access point to the
GDN.  We currently require users to manually select this HTTPD, using
a list published on a central web site."  :func:`nearest_access_point`
is that list-plus-manual-choice, automated; the :class:`Browser` keeps
one (TLS) connection to its access point and issues GET requests.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Tuple

from ..sim.rpc import RpcChannel, RpcFault
from ..sim.topology import Topology
from ..sim.transport import ConnectionClosed, Host
from ..sim.world import World
from .httpd import GdnHttpd

__all__ = ["Browser", "nearest_access_point", "HttpResponse"]


def nearest_access_point(host: Host, httpds: List[GdnHttpd]) -> GdnHttpd:
    """Pick the topologically nearest HTTPD from the published list."""
    if not httpds:
        raise ValueError("no access points published")
    return min(
        httpds,
        key=lambda httpd: (int(Topology.separation(host.site,
                                                   httpd.host.site)),
                           httpd.host.name))


class HttpResponse:
    """What a browser got back, plus client-side timing."""

    def __init__(self, status: int, body, headers: dict, elapsed: float):
        self.status = status
        self.body = body
        self.headers = headers
        self.elapsed = elapsed

    @property
    def ok(self) -> bool:
        return self.status == 200

    def __repr__(self) -> str:
        return "HttpResponse(%d, %.1f ms)" % (self.status,
                                              self.elapsed * 1000)


class Browser:
    """A user's browser bound to one access point."""

    def __init__(self, world: World, host: Host, access_point: GdnHttpd,
                 channel_wrapper: Optional[Callable] = None):
        self.world = world
        self.host = host
        self.access_point = access_point
        self.channel_wrapper = channel_wrapper
        self._channel: Optional[RpcChannel] = None
        self.requests_made = 0
        self.bytes_received = 0

    def _open_channel(self) -> Generator[object, object, RpcChannel]:
        if self._channel is not None and not self._channel.conn.closed \
                and not getattr(self._channel.conn, "broken", False):
            return self._channel
        channel = yield from RpcChannel.open(
            self.host, self.access_point.host, self.access_point.port,
            channel_wrapper=self.channel_wrapper)
        self._channel = channel
        return channel

    def get(self, path: str, timeout: Optional[float] = None
            ) -> Generator[object, object, HttpResponse]:
        """``response = yield from browser.get("/gdn/apps/Gimp")``

        ``timeout`` guards the request (:class:`~repro.sim.rpc.RpcTimeout`
        on expiry) — chunked transfers use it to bound each chunk fetch
        so a crashed access point can't hang the download.
        """
        start = self.world.now
        channel = yield from self._open_channel()
        try:
            reply = yield from channel.call("http", {"method": "GET",
                                                     "path": path},
                                            timeout=timeout)
        except ConnectionClosed:
            # Reconnect once: the access point may have restarted.
            self._channel = None
            channel = yield from self._open_channel()
            reply = yield from channel.call("http", {"method": "GET",
                                                     "path": path},
                                            timeout=timeout)
        self.requests_made += 1
        body = reply.get("body", b"")
        self.bytes_received += (len(body)
                                if isinstance(body, (bytes, str)) else 0)
        return HttpResponse(reply.get("status", 0), body,
                            reply.get("headers", {}),
                            self.world.now - start)

    def download(self, object_name: str, file_path: str
                 ) -> Generator[object, object, HttpResponse]:
        """Fetch one file of a package through the access point."""
        response = yield from self.get("/gdn%s/files/%s"
                                       % (object_name, file_path))
        return response

    def close(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
