"""The GDN maintainer tool (paper §2, future work implemented).

"In the future we intend to introduce a fourth group, the GDN
maintainers.  A GDN maintainer is allowed to manage just the contents
of a package.  He or she would typically be the person that also
maintains the software package (i.e., fixes bugs, etc.)."

A maintainer holds credentials with the ``maintainer`` role plus a
per-package grant in the principal registry; object servers then accept
their state-modifying invocations *only* for the packages they
maintain.  The tool itself is a content-management subset of the
moderator tool: it can change files and attributes, never replication
scenarios or names.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..core.ids import ObjectId
from ..core.runtime import Runtime
from ..sim.transport import Host
from ..sim.world import World

__all__ = ["MaintainerTool", "MaintenanceError"]


class MaintenanceError(Exception):
    """Raised when a maintenance operation fails."""


class MaintainerTool:
    """Content management for the packages one principal maintains."""

    def __init__(self, world: World, host: Host, runtime: Runtime,
                 name_service):
        self.world = world
        self.host = host
        self.runtime = runtime
        self.name_service = name_service
        self.updates_applied = 0

    def _bind(self, object_name: str) -> Generator:
        oid_hex = yield from self.name_service.resolve(object_name)
        representative = yield from self.runtime.bind(
            ObjectId.from_hex(oid_hex))
        return representative

    def update_contents(self, object_name: str,
                        add_files: Optional[Dict[str, bytes]] = None,
                        del_files: Optional[List[str]] = None
                        ) -> Generator[object, object, int]:
        """Apply content changes; returns the new package version.

        Raises :class:`MaintenanceError` if any change is refused —
        e.g. this maintainer does not maintain ``object_name``.
        """
        representative = yield from self._bind(object_name)
        version = 0
        try:
            for path in sorted(del_files or []):
                yield from representative.invoke("delFile", {"path": path})
            for path in sorted(add_files or {}):
                version = yield from representative.invoke(
                    "addFile", {"path": path, "data": add_files[path]})
        except Exception as exc:  # noqa: BLE001 - refusals cross the wire
            raise MaintenanceError(
                "update of %r refused: %s" % (object_name, exc)) from exc
        self.updates_applied += 1
        return version

    def set_attribute(self, object_name: str, key: str, value: str
                      ) -> Generator:
        representative = yield from self._bind(object_name)
        try:
            yield from representative.invoke("setAttribute",
                                             {"key": key, "value": value})
        except Exception as exc:  # noqa: BLE001
            raise MaintenanceError(
                "update of %r refused: %s" % (object_name, exc)) from exc

    def restore_file(self, object_name: str, path: str, version: int
                     ) -> Generator:
        """Roll one file back to a retained earlier version (§8's
        version-management facility)."""
        representative = yield from self._bind(object_name)
        try:
            restored = yield from representative.invoke(
                "restoreFile", {"path": path, "version": version})
        except Exception as exc:  # noqa: BLE001
            raise MaintenanceError(
                "restore of %r refused: %s" % (object_name, exc)) from exc
        return restored
