"""The moderator tool (paper §4, §6.1).

"A GDN moderator can add, update and delete package DSOs from the GDN,
using a special tool."  Creating a package follows §6.1's procedure
exactly:

1. the moderator defines the replication scenario (protocol + which
   object servers host replicas);
2. a "create first replica" command goes to one object server in the
   scenario; the GLS allocates the object identifier during contact-
   address registration and the OID comes back to the tool;
3. the remaining servers receive "bind to DSO <OID>, create replica"
   commands;
4. the package's name is registered with the GNS Naming Authority.

All tool traffic runs over two-way-authenticated TLS channels, so
object servers and the naming authority see the moderator's principal
and can enforce §6.1's authorization requirements.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..core.ids import ContactAddress, ObjectId
from ..core.runtime import Runtime
from ..sim import rpc
from ..sim.transport import Host
from ..sim.world import World
from .package import PACKAGE_IMPL_ID
from .scenario import ReplicationScenario

__all__ = ["ModeratorTool", "ModerationError"]


class ModerationError(Exception):
    """Raised when a moderation operation fails."""


class ModeratorTool:
    """One moderator's command-line tool, as a driveable object."""

    def __init__(self, world: World, host: Host, runtime: Runtime,
                 gos_registry: Dict[str, Tuple[str, int]],
                 authority_endpoint: Tuple[str, int],
                 name_service,
                 channel_wrapper: Optional[Callable] = None,
                 impl_id: str = PACKAGE_IMPL_ID,
                 search_endpoint: Optional[Tuple[str, int]] = None):
        """``gos_registry`` maps object-server names to (host, port);
        ``name_service`` resolves object names (a GlobeNameService);
        ``search_endpoint`` (optional) is the attribute-search service
        packages are indexed in."""
        self.world = world
        self.host = host
        self.runtime = runtime
        self.gos_registry = dict(gos_registry)
        self.authority_endpoint = tuple(authority_endpoint)
        self.name_service = name_service
        self.channel_wrapper = channel_wrapper
        self.impl_id = impl_id
        self.search_endpoint = (tuple(search_endpoint)
                                if search_endpoint else None)
        #: Local catalog of packages this moderator manages:
        #: object name -> {"oid": hex, "scenario": ReplicationScenario}.
        self.catalog: Dict[str, dict] = {}
        self.packages_created = 0
        self.packages_removed = 0

    # -- plumbing ---------------------------------------------------------

    def _gos_call(self, gos_name: str, method: str, args: dict
                  ) -> Generator:
        try:
            host_name, port = self.gos_registry[gos_name]
        except KeyError:
            raise ModerationError("unknown object server %r" % gos_name)
        target = self.world.hosts[host_name]
        try:
            reply = yield from rpc.call(
                self.host, target, port, method, args,
                channel_wrapper=self.channel_wrapper)
        except rpc.RpcFault as fault:
            raise ModerationError("%s on %s failed: %s"
                                  % (method, gos_name, fault))
        return reply

    def _authority_call(self, method: str, args: dict) -> Generator:
        host_name, port = self.authority_endpoint
        target = self.world.hosts[host_name]
        try:
            reply = yield from rpc.call(
                self.host, target, port, method, args,
                channel_wrapper=self.channel_wrapper)
        except rpc.RpcFault as fault:
            raise ModerationError("%s failed: %s" % (method, fault))
        return reply

    # -- operations -----------------------------------------------------------

    def _search_call(self, method: str, args: dict) -> Generator:
        if self.search_endpoint is None:
            return None
        host_name, port = self.search_endpoint
        target = self.world.hosts[host_name]
        try:
            reply = yield from rpc.call(
                self.host, target, port, method, args,
                channel_wrapper=self.channel_wrapper)
        except rpc.RpcFault as fault:
            raise ModerationError("%s failed: %s" % (method, fault))
        return reply

    @staticmethod
    def _implied_attributes(object_name: str) -> Dict[str, str]:
        """Attributes implied by the hierarchical name (§5: "the first
        part of the name gives some information about what a software
        package does")."""
        parts = [part for part in object_name.split("/") if part]
        attributes = {"name": parts[-1].lower()}
        if len(parts) >= 2:
            attributes["category"] = parts[-2].lower()
        if len(parts) >= 3:
            attributes["section"] = parts[0].lower()
        return attributes

    def create_package(self, object_name: str, files: Dict[str, bytes],
                       scenario: ReplicationScenario,
                       attributes: Optional[Dict[str, str]] = None
                       ) -> Generator[object, object, ObjectId]:
        """Create, populate, replicate and name a new package DSO.

        ``oid = yield from tool.create_package("/apps/Gimp", files, sc)``
        """
        if object_name in self.catalog:
            raise ModerationError("package %r already exists" % object_name)
        # Step 1-2: first replica; the GLS allocates the OID.
        created = yield from self._gos_call(
            scenario.master_gos, "create_object",
            {"impl_id": self.impl_id, "protocol": scenario.protocol,
             "role": scenario.master_role})
        oid = ObjectId.from_hex(created["oid"])
        master_ca = created["ca"]
        # Populate contents and attributes through the object's own
        # methods *before* creating the other replicas: each joining
        # replica then fetches the complete state exactly once, instead
        # of receiving one state push per mutation.
        representative = yield from self.runtime.bind(oid, refresh=True)
        for path in sorted(files):
            yield from representative.invoke(
                "addFile", {"path": path, "data": files[path]})
        all_attributes = self._implied_attributes(object_name)
        all_attributes.update(attributes or {})
        for key in sorted(all_attributes):
            yield from representative.invoke(
                "setAttribute", {"key": key, "value": all_attributes[key]})
        # Step 3: additional replicas bind to the DSO.
        for gos_name in scenario.slave_gos:
            yield from self._gos_call(
                gos_name, "create_replica",
                {"oid": oid.hex, "impl_id": self.impl_id,
                 "protocol": scenario.protocol,
                 "role": scenario.slave_role, "master": master_ca})
        # Step 4: register the name, then index searchable attributes.
        yield from self._authority_call(
            "add_name", {"name": object_name, "oid": oid.hex})
        yield from self._search_call(
            "register", {"name": object_name,
                         "attributes": all_attributes})
        self.catalog[object_name] = {"oid": oid.hex, "scenario": scenario,
                                     "master_ca": master_ca,
                                     "attributes": all_attributes}
        self.packages_created += 1
        return oid

    def add_replica(self, object_name: str, gos_name: str
                    ) -> Generator:
        """Adapt a package's replication scenario by adding a replica.

        §3.1: "the information's replication scenario should adapt to
        changes in its popularity" — this is the adaptation primitive:
        one more "bind to DSO, create replica" command, after which the
        GLS starts answering nearby lookups with the new address.
        """
        entry = self.catalog.get(object_name)
        if entry is None:
            raise ModerationError(
                "this tool does not manage %r" % object_name)
        scenario: ReplicationScenario = entry["scenario"]
        if scenario.protocol == "client_server":
            raise ModerationError(
                "client/server objects hold a single copy; republish "
                "with master/slave to replicate %r" % object_name)
        if gos_name in scenario.slave_gos or gos_name == scenario.master_gos:
            raise ModerationError("%s already hosts %r"
                                  % (gos_name, object_name))
        yield from self._gos_call(
            gos_name, "create_replica",
            {"oid": entry["oid"], "impl_id": self.impl_id,
             "protocol": scenario.protocol, "role": scenario.slave_role,
             "master": entry["master_ca"]})
        scenario.slave_gos.append(gos_name)

    def drop_replica(self, object_name: str, gos_name: str) -> Generator:
        """Shrink a scenario: remove one (non-master) replica."""
        entry = self.catalog.get(object_name)
        if entry is None:
            raise ModerationError(
                "this tool does not manage %r" % object_name)
        scenario: ReplicationScenario = entry["scenario"]
        if gos_name not in scenario.slave_gos:
            raise ModerationError("%s hosts no removable replica of %r"
                                  % (gos_name, object_name))
        yield from self._gos_call(gos_name, "remove_replica",
                                  {"oid": entry["oid"]})
        scenario.slave_gos.remove(gos_name)

    def update_package(self, object_name: str,
                       add_files: Optional[Dict[str, bytes]] = None,
                       del_files: Optional[List[str]] = None,
                       attributes: Optional[Dict[str, str]] = None
                       ) -> Generator[object, object, int]:
        """Modify a package's contents; returns the new version."""
        oid_hex = yield from self._resolve(object_name)
        oid = ObjectId.from_hex(oid_hex)
        representative = yield from self.runtime.bind(oid)
        version = 0
        for path in sorted(del_files or []):
            yield from representative.invoke("delFile", {"path": path})
        for path in sorted(add_files or {}):
            version = yield from representative.invoke(
                "addFile", {"path": path, "data": add_files[path]})
        for key in sorted(attributes or {}):
            yield from representative.invoke(
                "setAttribute", {"key": key, "value": attributes[key]})
        return version

    def remove_package(self, object_name: str) -> Generator:
        """Unname and remove all replicas of a package."""
        entry = self.catalog.get(object_name)
        if entry is None:
            raise ModerationError(
                "this tool does not manage %r" % object_name)
        # Remove the name first so new binds stop immediately.
        yield from self._authority_call("remove_name",
                                        {"name": object_name})
        yield from self._search_call("unregister", {"name": object_name})
        scenario: ReplicationScenario = entry["scenario"]
        for gos_name in [scenario.master_gos] + scenario.slave_gos:
            yield from self._gos_call(gos_name, "remove_replica",
                                      {"oid": entry["oid"]})
        self.runtime.unbind(ObjectId.from_hex(entry["oid"]))
        del self.catalog[object_name]
        self.packages_removed += 1

    def _resolve(self, object_name: str) -> Generator:
        entry = self.catalog.get(object_name)
        if entry is not None:
            return entry["oid"]
        oid_hex = yield from self.name_service.resolve(object_name)
        return oid_hex
