"""Replication scenarios and per-object scenario assignment (§3.1).

"We use the term replication scenario to denote a specification of how
(using what replication protocol) and where (which machines should host
replicas) information or objects should be replicated."

The :class:`ScenarioAdvisor` reproduces the policy conclusion of the
Pierre et al. study the paper builds on: choose each object's scenario
from its own usage pattern — popularity, update rate, and where its
readers are — instead of one site-wide scheme.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["ReplicationScenario", "ObjectUsage", "ScenarioAdvisor"]


class ReplicationScenario:
    """How and where one DSO is replicated."""

    def __init__(self, protocol: str, master_gos: str,
                 slave_gos: Optional[List[str]] = None,
                 cache_ttl: Optional[float] = None):
        if protocol not in ("client_server", "master_slave", "active"):
            raise ValueError("unknown replication protocol %r" % protocol)
        self.protocol = protocol
        self.master_gos = master_gos
        self.slave_gos = list(slave_gos or [])
        #: TTL for caching representatives in HTTPDs/proxies; None
        #: disables caching for this object.
        self.cache_ttl = cache_ttl
        if protocol == "client_server" and self.slave_gos:
            raise ValueError("client/server allows no extra replicas")

    @property
    def master_role(self) -> str:
        return "server" if self.protocol == "client_server" else "master"

    @property
    def slave_role(self) -> str:
        return "replica" if self.protocol == "active" else "slave"

    @property
    def replica_count(self) -> int:
        return 1 + len(self.slave_gos)

    @classmethod
    def single_server(cls, gos: str,
                      cache_ttl: Optional[float] = None
                      ) -> "ReplicationScenario":
        return cls("client_server", gos, cache_ttl=cache_ttl)

    @classmethod
    def master_slave(cls, master: str, slaves: List[str],
                     cache_ttl: Optional[float] = None
                     ) -> "ReplicationScenario":
        return cls("master_slave", master, slaves, cache_ttl=cache_ttl)

    def __repr__(self) -> str:
        return ("ReplicationScenario(%s @ %s + %d slaves, ttl=%s)"
                % (self.protocol, self.master_gos, len(self.slave_gos),
                   self.cache_ttl))


class ObjectUsage:
    """Observed (or predicted) usage pattern of one object."""

    def __init__(self, reads_by_region: Optional[Dict[str, int]] = None,
                 writes: int = 0, size: int = 0):
        self.reads_by_region = dict(reads_by_region or {})
        self.writes = writes
        self.size = size

    @property
    def reads(self) -> int:
        return sum(self.reads_by_region.values())

    @property
    def read_write_ratio(self) -> float:
        return self.reads / max(1, self.writes)

    def hot_regions(self, min_share: float = 0.10) -> List[str]:
        """Regions contributing at least ``min_share`` of the reads."""
        total = max(1, self.reads)
        return sorted(region
                      for region, count in self.reads_by_region.items()
                      if count / total >= min_share)


class ScenarioAdvisor:
    """Per-object scenario assignment from usage patterns.

    The decision mirrors the replication cost model of §3.1: replicas
    save wide-area read traffic proportional to remote demand but cost
    update traffic proportional to write rate × state size, plus disk.
    Heuristic:

    * cold objects: a single server near their busiest region;
    * read-mostly popular objects: a master plus slaves in every hot
      region, and long cache TTLs in front;
    * write-heavy objects: keep replicas few and caches short-lived so
      consistency traffic does not dominate.
    """

    def __init__(self, gos_by_region: Dict[str, str],
                 home_region: Optional[str] = None,
                 popularity_threshold: int = 50,
                 ratio_threshold: float = 10.0):
        """``gos_by_region`` maps a region path (e.g. ``"r0"``) to the
        name of an object server in that region."""
        if not gos_by_region:
            raise ValueError("need at least one object server")
        self.gos_by_region = dict(gos_by_region)
        self.home_region = home_region or sorted(gos_by_region)[0]
        self.popularity_threshold = popularity_threshold
        self.ratio_threshold = ratio_threshold

    def _busiest_region(self, usage: ObjectUsage) -> str:
        candidates = {region: count
                      for region, count in usage.reads_by_region.items()
                      if region in self.gos_by_region}
        if not candidates:
            return self.home_region
        # Deterministic tie-break by region name.
        return max(sorted(candidates), key=lambda r: candidates[r])

    def recommend(self, usage: ObjectUsage) -> ReplicationScenario:
        busiest = self._busiest_region(usage)
        home_gos = self.gos_by_region[busiest]
        if usage.reads < self.popularity_threshold:
            # Cold: one copy, placed with its readers; modest caching.
            return ReplicationScenario.single_server(home_gos,
                                                     cache_ttl=60.0)
        if usage.read_write_ratio >= self.ratio_threshold:
            # Hot and read-mostly: replicas in every hot region.
            slaves = [self.gos_by_region[region]
                      for region in usage.hot_regions()
                      if region in self.gos_by_region
                      and self.gos_by_region[region] != home_gos]
            return ReplicationScenario.master_slave(
                home_gos, slaves, cache_ttl=600.0)
        # Hot but write-heavy: single authoritative copy, short caches.
        return ReplicationScenario.single_server(home_gos, cache_ttl=10.0)
