"""The package DSO: semantics subobject for software packages (§2, §4).

"All data stored in the GDN is stored in distributed shared objects …
every software package is contained in a package DSO."  A package is a
named collection of files, possibly large.  Method names follow the
paper's API (``listContents``, ``getFileContents``, …) rather than
PEP 8, because they are part of the reproduced interface.

Beyond the paper's minimum (add/list/retrieve), the semantics include
the two "possible functional additions" from §8 in simple form:
attribute-based search support via package attributes, and version
management via a monotonically increasing content version plus
per-file digests (which also serve the §6.1 integrity requirement —
users can verify what they downloaded).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..core.idl import mutating, read_only
from ..core.subobjects import SemanticsSubobject

__all__ = ["PackageSemantics", "PACKAGE_IMPL_ID", "HISTORY_RETENTION",
           "DEFAULT_CHUNK_SIZE"]

#: Implementation-repository id for the package DSO implementation.
PACKAGE_IMPL_ID = "gdn.package"

#: Default chunk granularity for manifest/chunk retrieval (bytes).
DEFAULT_CHUNK_SIZE = 8192

#: How many superseded file contents are retained for restoreFile
#: (§8's version-management facility, bounded so state stays small).
HISTORY_RETENTION = 8


class PackageSemantics(SemanticsSubobject):
    """Files + metadata of one distributable software package."""

    def __init__(self):
        self._files: Dict[str, bytes] = {}
        self._attributes: Dict[str, str] = {}
        self._content_version = 0
        #: Op log: one entry per mutation (version, op, path, digest).
        self._history: List[dict] = []
        #: Superseded contents, keyed "path@version", bounded FIFO.
        self._retained: Dict[str, bytes] = {}
        self._retained_order: List[str] = []

    # -- version management (§8 future work, implemented) --------------------

    def _log(self, op: str, path: str, data: Optional[bytes]) -> None:
        self._content_version += 1
        entry = {"version": self._content_version, "op": op, "path": path}
        if data is not None:
            entry["size"] = len(data)
            entry["digest"] = hashlib.sha256(data).hexdigest()
        self._history.append(entry)

    def _retain(self, path: str, data: bytes, version: int) -> None:
        """Keep contents superseded *by* mutation ``version``, bounded."""
        key = "%s@%d" % (path, version)
        self._retained[key] = data
        self._retained_order.append(key)
        while len(self._retained_order) > HISTORY_RETENTION:
            evicted = self._retained_order.pop(0)
            self._retained.pop(evicted, None)

    # -- modification (moderator/maintainer-only by GDN policy) ---------------

    @mutating
    def addFile(self, path: str, data: bytes) -> int:
        """Add or replace a file; returns the new content version."""
        if not path or path.startswith("/"):
            raise ValueError("file paths are relative, got %r" % path)
        if not isinstance(data, bytes):
            raise ValueError("file contents must be bytes")
        previous = self._files.get(path)
        self._files[path] = data
        self._log("add", path, data)
        if previous is not None:
            self._retain(path, previous, self._content_version)
        return self._content_version

    @mutating
    def delFile(self, path: str) -> bool:
        """Remove a file; True if it existed."""
        previous = self._files.pop(path, None)
        if previous is None:
            return False
        self._log("del", path, None)
        self._retain(path, previous, self._content_version)
        return True

    @mutating
    def restoreFile(self, path: str, version: int) -> int:
        """Restore a file to its contents as of just before ``version``.

        ``version`` names the mutation that superseded the wanted
        contents (as listed by ``getHistory``).  Only the last few
        superseded contents are retained; restoring anything older
        raises.  The restore itself is a new versioned write.
        """
        key = "%s@%d" % (path, version)
        data = self._retained.get(key)
        if data is None:
            raise KeyError("no retained contents for %s at version %d"
                           % (path, version))
        return self.addFile(path, data)

    @mutating
    def setAttribute(self, key: str, value: str) -> None:
        """Set a searchable package attribute (e.g. ``category``)."""
        self._attributes[key] = value
        self._log("attr", key, None)

    # -- retrieval (open to all GDN users) -------------------------------------

    @read_only
    def listContents(self) -> List[dict]:
        """Names and sizes of the files in the package."""
        return [{"path": path, "size": len(data)}
                for path, data in sorted(self._files.items())]

    @read_only
    def getFileContents(self, path: str) -> bytes:
        try:
            return self._files[path]
        except KeyError:
            raise KeyError("no file %r in this package" % path) from None

    @read_only
    def getFileDigest(self, path: str) -> str:
        """SHA-256 of a file — lets users check download integrity."""
        return hashlib.sha256(self.getFileContents(path)).hexdigest()

    @read_only
    def getFileManifest(self, path: str,
                        chunk_size: int = DEFAULT_CHUNK_SIZE) -> dict:
        """Chunk map for a resumable download of one file.

        Per-chunk digests let the client verify each chunk as it
        arrives (and skip re-fetching verified chunks on resume); the
        whole-file digest and content version let it detect a file
        that changed under an in-progress transfer.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        data = self.getFileContents(path)
        chunks = [data[offset:offset + chunk_size]
                  for offset in range(0, len(data), chunk_size)] or [b""]
        return {
            "path": path,
            "size": len(data),
            "chunk_size": chunk_size,
            "chunk_count": len(chunks),
            "chunk_digests": [hashlib.sha256(chunk).hexdigest()
                              for chunk in chunks],
            "digest": hashlib.sha256(data).hexdigest(),
            "version": self._content_version,
        }

    @read_only
    def getFileChunk(self, path: str, index: int,
                     chunk_size: int = DEFAULT_CHUNK_SIZE) -> bytes:
        """One chunk of a file, by manifest index."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        data = self.getFileContents(path)
        count = max(1, -(-len(data) // chunk_size))
        if not 0 <= index < count:
            raise IndexError("chunk %d out of range (file has %d chunks)"
                             % (index, count))
        return data[index * chunk_size:(index + 1) * chunk_size]

    @read_only
    def getAttribute(self, key: str) -> Optional[str]:
        return self._attributes.get(key)

    @read_only
    def getAttributes(self) -> Dict[str, str]:
        return dict(self._attributes)

    @read_only
    def getVersion(self) -> int:
        return self._content_version

    @read_only
    def getHistory(self) -> List[dict]:
        """The mutation log: version, operation, path, size, digest."""
        return [dict(entry) for entry in self._history]

    @read_only
    def totalSize(self) -> int:
        return sum(len(data) for data in self._files.values())

    # -- state management (replication / persistence) -----------------------------

    def snapshot_state(self) -> dict:
        return {
            "files": dict(self._files),
            "attributes": dict(self._attributes),
            "version": self._content_version,
            "history": [dict(entry) for entry in self._history],
            "retained": dict(self._retained),
            "retained_order": list(self._retained_order),
        }

    def restore_state(self, state: dict) -> None:
        self._files = dict(state["files"])
        self._attributes = dict(state.get("attributes", {}))
        self._content_version = state.get("version", 0)
        self._history = [dict(entry) for entry in state.get("history", [])]
        self._retained = dict(state.get("retained", {}))
        self._retained_order = list(state.get("retained_order", []))

    def replication_state(self) -> dict:
        """State shipped to slaves and caches.

        Excludes the retained (superseded) file contents: they exist to
        serve ``restoreFile``, which is a *write* and therefore always
        executes at the master — slaves never need them, and shipping
        them would multiply every state transfer by the retention
        depth.
        """
        state = self.snapshot_state()
        state["retained"] = {}
        state["retained_order"] = []
        return state
