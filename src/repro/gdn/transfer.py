"""Resilient chunked transfer: budgeted downloads that survive faults.

The GDN ships large free-software packages across an unreliable wide
area (§1, §6.1), yet a whole-file ``GET`` is all-or-nothing: a crash
or partition mid-download wastes everything already received.  This
module fetches large files as per-chunk requests against the
manifest/chunk endpoints (``PackageSemantics.getFileManifest`` /
``getFileChunk``, exposed through the GOS and the GDN-HTTPD URL
scheme), verifying each chunk against its manifest digest as it
arrives, and records progress in a :class:`ResumeToken` that survives
the client: a browser that crashes or loses its replica mid-transfer
re-binds — possibly to a *different* replica via the GLS, including a
serve-stale cached binding — and resumes from the last verified chunk
instead of restarting.

Retries follow a shared :class:`~repro.sim.retry.RetryPolicy`
(exponential backoff with seeded deterministic jitter by default) and
an optional :class:`~repro.sim.retry.RetryBudget` charged for every
retry *and* every re-fetch of a chunk that was already fetched once —
so a transfer that keeps restarting from zero exhausts its budget,
while a resuming transfer spends only what the fault actually cost.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Generator, Optional

from ..sim.retry import ExponentialBackoff, RetryBudget, RetryPolicy
from ..sim.rpc import RpcTimeout
from ..sim.transport import ConnectionClosed, TransportError
from ..sim.world import World
from .browser import Browser

__all__ = ["ChunkedDownloader", "ResumeToken", "TransferError",
           "IntegrityError", "TransferBudgetExhausted"]

#: Transient failures worth retrying: the access point may restart, the
#: client's domain may heal, the HTTPD may fail over to another replica.
_RETRYABLE = (RpcTimeout, ConnectionClosed, TransportError)


class TransferError(Exception):
    """A chunked transfer failed for good."""


class IntegrityError(TransferError):
    """Reassembled data does not match the manifest digest."""


class TransferBudgetExhausted(TransferError):
    """The retry budget denied a retry or re-fetch; transfer abandoned."""


class ResumeToken:
    """Persistent transfer progress: manifest + verified chunks.

    The token is the client's crash-survivable state: serialise it
    with :meth:`to_wire` after each verified chunk (the downloader's
    ``checkpoint`` callback is the hook), and hand the deserialised
    token to a *fresh* downloader call after a crash to resume.

    ``fetched_ever`` records every chunk index whose bytes arrived at
    least once — it is never cleared, even when verified progress is
    discarded, so re-fetch accounting (and the budget charges that
    keep restart-from-zero expensive) survives resume boundaries.
    """

    def __init__(self, object_name: str, file_path: str,
                 chunk_size: Optional[int] = None):
        self.object_name = object_name
        self.file_path = file_path
        #: Requested chunk granularity (None = server default).
        self.chunk_size = chunk_size
        self.manifest: Optional[dict] = None
        self.chunks: dict = {}          # index -> verified bytes
        self.fetched_ever: set = set()  # indexes fetched at least once

    @property
    def chunk_count(self) -> Optional[int]:
        return (self.manifest["chunk_count"]
                if self.manifest is not None else None)

    @property
    def complete(self) -> bool:
        count = self.chunk_count
        return count is not None and len(self.chunks) == count

    def assemble(self) -> bytes:
        if not self.complete:
            raise TransferError(
                "transfer incomplete: %d of %s chunks verified"
                % (len(self.chunks), self.chunk_count))
        return b"".join(self.chunks[index]
                        for index in range(self.chunk_count))

    def to_wire(self) -> dict:
        return {
            "object_name": self.object_name,
            "file_path": self.file_path,
            "chunk_size": self.chunk_size,
            "manifest": dict(self.manifest) if self.manifest else None,
            "chunks": {str(index): data
                       for index, data in self.chunks.items()},
            "fetched_ever": sorted(self.fetched_ever),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "ResumeToken":
        token = cls(wire["object_name"], wire["file_path"],
                    wire.get("chunk_size"))
        token.manifest = (dict(wire["manifest"])
                          if wire.get("manifest") else None)
        token.chunks = {int(index): data
                        for index, data in wire.get("chunks", {}).items()}
        token.fetched_ever = set(wire.get("fetched_ever", []))
        return token

    def __repr__(self) -> str:
        return ("ResumeToken(%s:%s, %d/%s chunks)"
                % (self.object_name, self.file_path, len(self.chunks),
                   self.chunk_count if self.manifest else "?"))


class ChunkedDownloader:
    """Budgeted, resumable per-chunk downloads through a browser.

    One instance serves any number of transfers (telemetry and the
    retry budget aggregate across them).  ``resume=False`` discards a
    token's verified chunks at the start of each call — the
    restart-from-zero discipline the Soak scenarios use to show why
    resumption matters: every re-fetched byte charges the budget.
    """

    def __init__(self, world: World, policy: Optional[RetryPolicy] = None,
                 budget: Optional[RetryBudget] = None, resume: bool = True,
                 chunk_size: Optional[int] = None):
        self.world = world
        self.policy = policy if policy is not None else ExponentialBackoff(
            timeout=3.0, retries=5, base=0.2, multiplier=2.0,
            max_delay=5.0, jitter=0.5)
        self.budget = budget if budget is not None else self.policy.budget
        self.resume = resume
        self.chunk_size = chunk_size
        # -- telemetry (plain ints, function-backed via bind_metrics) --
        self.transfers_started = 0
        self.transfers_completed = 0
        self.transfers_failed = 0
        self.chunks_ok = 0
        self.chunks_retried = 0
        self.resumes = 0
        self.integrity_failures = 0
        self.budget_exhausted = 0
        self.duplicate_applications = 0
        self.bytes_fetched = 0
        self.bytes_refetched = 0
        self.bytes_applied = 0
        self._inflight_transfers = 0
        self._inflight_chunks = 0

    def bind_metrics(self, registry, prefix: str) -> None:
        for name in ("transfers_started", "transfers_completed",
                     "transfers_failed", "chunks_ok", "chunks_retried",
                     "resumes", "integrity_failures", "budget_exhausted",
                     "duplicate_applications", "bytes_fetched",
                     "bytes_refetched", "bytes_applied"):
            registry.counter("%s.%s" % (prefix, name),
                             fn=lambda n=name: getattr(self, n))
        registry.gauge(prefix + ".inflight_transfers",
                       fn=lambda: self._inflight_transfers)
        registry.gauge(prefix + ".inflight_chunks",
                       fn=lambda: self._inflight_chunks)
        if self.budget is not None:
            self.budget.bind_metrics(registry, prefix + ".budget")

    def refetch_ratio(self) -> float:
        """Re-fetched bytes per applied byte (0.0 = nothing wasted)."""
        return self.bytes_refetched / max(1, self.bytes_applied)

    # -- the transfer ------------------------------------------------------

    def download(self, browser: Browser, object_name: str, file_path: str,
                 token: Optional[ResumeToken] = None,
                 checkpoint: Optional[Callable[[ResumeToken], None]] = None
                 ) -> Generator:
        """``data, token = yield from downloader.download(...)``.

        ``token`` resumes a prior transfer (from :meth:`ResumeToken.
        to_wire` saved by a previous ``checkpoint`` callback);
        ``checkpoint(token)`` fires after the manifest and after each
        verified chunk, so the caller can persist progress at exactly
        the granularity resumption needs.  Raises a
        :class:`TransferError` subclass when the transfer cannot
        finish.
        """
        self.transfers_started += 1
        self._inflight_transfers += 1
        try:
            result = yield from self._download(browser, object_name,
                                               file_path, token, checkpoint)
        except TransferError:
            self.transfers_failed += 1
            raise
        finally:
            self._inflight_transfers -= 1
        self.transfers_completed += 1
        return result

    def _download(self, browser: Browser, object_name: str, file_path: str,
                  token: Optional[ResumeToken],
                  checkpoint: Optional[Callable]) -> Generator:
        if token is None:
            token = ResumeToken(object_name, file_path, self.chunk_size)
        elif (token.object_name, token.file_path) != (object_name,
                                                      file_path):
            raise TransferError("token is for %s:%s, not %s:%s"
                                % (token.object_name, token.file_path,
                                   object_name, file_path))
        elif not self.resume:
            # Restart-from-zero: verified progress is discarded but
            # fetched_ever survives, so every re-fetch stays visible to
            # the budget — this is what makes no-resume transfers
            # exhaust it under repeated faults.
            token.chunks.clear()
            token.manifest = None
        elif token.manifest is not None or token.chunks:
            self.resumes += 1

        # Jitter keyed by the *downloading* host: distinct clients
        # desynchronize, one client replays deterministically.
        rng_box = [None]

        def jitter():
            if rng_box[0] is None:
                rng_box[0] = self.policy.make_rng(browser.host.name)
            return rng_box[0]

        if token.manifest is None:
            suffix = ("?chunk_size=%d" % token.chunk_size
                      if token.chunk_size else "")
            manifest = yield from self._fetch(
                browser, "/gdn%s/manifest/%s%s"
                % (object_name, file_path, suffix), jitter)
            if not isinstance(manifest, dict) or "chunk_digests" not in \
                    manifest:
                raise TransferError("malformed manifest for %s:%s"
                                    % (object_name, file_path))
            token.manifest = manifest
            if checkpoint is not None:
                checkpoint(token)
        manifest = token.manifest

        for index in range(manifest["chunk_count"]):
            if index in token.chunks:
                continue  # verified in a previous incarnation: skip
            data = yield from self._fetch_chunk(browser, token, index,
                                                jitter)
            if index in token.chunks:
                # Must be unreachable: chunks are fetched sequentially
                # and each index is applied exactly once.  The counter
                # is the Soak invariant's witness.
                self.duplicate_applications += 1
                continue
            token.chunks[index] = data
            self.bytes_applied += len(data)
            if checkpoint is not None:
                checkpoint(token)

        data = token.assemble()
        if hashlib.sha256(data).hexdigest() != manifest["digest"]:
            self.integrity_failures += 1
            raise IntegrityError(
                "%s:%s reassembled to a different digest (file changed "
                "mid-transfer?)" % (object_name, file_path))
        return data, token

    def _fetch_chunk(self, browser: Browser, token: ResumeToken,
                     index: int, jitter: Callable) -> Generator:
        """Fetch + verify one chunk under the retry/budget discipline."""
        manifest = token.manifest
        url = ("/gdn%s/chunk/%d/%s?chunk_size=%d"
               % (token.object_name, index, token.file_path,
                  manifest["chunk_size"]))
        expected = manifest["chunk_digests"][index]
        refetch = index in token.fetched_ever
        if refetch and not self._spend():
            raise TransferBudgetExhausted(
                "budget denied re-fetch of chunk %d of %s:%s"
                % (index, token.object_name, token.file_path))
        for integrity_round in range(self.policy.attempts):
            data = yield from self._fetch(browser, url, jitter,
                                          chunk=True)
            self.bytes_fetched += len(data)
            if refetch:
                self.bytes_refetched += len(data)
            refetch = True  # any further round is a re-fetch
            token.fetched_ever.add(index)
            if hashlib.sha256(data).hexdigest() == expected:
                self.chunks_ok += 1
                return data
            # A stale replica (or a file mutated under the transfer)
            # served different bytes: retryable — the HTTPD rebinds on
            # failure and bindings are soft state, so a later attempt
            # can reach a fresh replica.
            self.integrity_failures += 1
            self.chunks_retried += 1
            if not self._spend():
                raise TransferBudgetExhausted(
                    "budget denied integrity re-fetch of chunk %d of "
                    "%s:%s" % (index, token.object_name, token.file_path))
            delay = self.policy.retry_delay(integrity_round + 1, jitter)
            if delay > 0.0:
                yield self.world.sim.timeout(delay)
        raise IntegrityError(
            "chunk %d of %s:%s failed verification %d times"
            % (index, token.object_name, token.file_path,
               self.policy.attempts))

    def _fetch(self, browser: Browser, url: str, jitter: Callable,
               chunk: bool = False) -> Generator:
        """One guarded GET with policy-driven retries.

        Transient failures (timeout, closed channel, unreachable
        access point, 503 from a replica-less HTTPD) retry under the
        policy's backoff and the budget; anything else is fatal.
        """
        policy = self.policy
        last_error: Optional[Exception] = None
        for attempt in range(policy.attempts):
            if attempt:
                if chunk:
                    self.chunks_retried += 1
                if not self._spend():
                    raise TransferBudgetExhausted(
                        "budget denied retry of %s" % url)
                delay = policy.retry_delay(attempt, jitter)
                if delay > 0.0:
                    yield self.world.sim.timeout(delay)
            self._inflight_chunks += 1
            try:
                response = yield from browser.get(url,
                                                  timeout=policy.timeout)
            except _RETRYABLE as exc:
                last_error = exc
                continue
            finally:
                self._inflight_chunks -= 1
            if response.status == 200:
                return response.body
            if response.status == 503:
                # Replicas unreachable right now; rebind-and-retry.
                last_error = TransferError("503 for %s" % url)
                continue
            raise TransferError("HTTP %d for %s" % (response.status, url))
        raise TransferError("no reply for %s after %d attempts (%s)"
                            % (url, policy.attempts, last_error))

    def _spend(self) -> bool:
        if self.budget is None:
            return True
        if self.budget.spend(self.world.now):
            return True
        self.budget_exhausted += 1
        return False
