"""GDN-enabled HTTPDs (paper §4).

"We use URLs that have embedded in them the name of a package DSO.
The GDN-HTTPD extracts this object name and binds to the DSO.  The
HTTPD then invokes the appropriate method(s) on the package DSO's newly
created local representative.  For example, it could call
listContents() to obtain the list of files contained in the package,
which is subsequently reformatted into HTML … If the URL designates a
particular file in the package, the HTTPD calls the getFileContents()
method and sends back the returned content."

URL scheme::

    /gdn<object-name>                  package page (HTML listing)
    /gdn<object-name>/files/<path>     raw file download

The local representative installed during binding "may act as a
replica for the DSO" — realised with a caching representative whose
TTL comes from a per-object cache policy.  HTTP runs over the RPC
framing of the simulator (one ``http`` method), with an optional
server-authenticated TLS factory in front (Figure 4 arrow 1).
"""

from __future__ import annotations

import html
import urllib.parse
from typing import Callable, Dict, Generator, Optional, Tuple

from ..core.ids import ObjectId
from ..core.replication.base import ReplicationError
from ..core.runtime import BindError, Runtime
from ..core.subobjects import RemoteInvocationError
from ..gns.gns import GnsError
from ..sim.rpc import RpcContext, RpcFault, RpcServer, RpcTimeout
from ..sim.serde import encoded_size
from ..sim.transport import Host, TransportError
from ..sim.world import World

#: Failures that mean "the replica I bound to is gone or unreachable"
#: — worth one rebind-and-retry before giving up.
_REBINDABLE = (ReplicationError, RpcFault, RpcTimeout, TransportError)

__all__ = ["GdnHttpd", "HTTP_PORT", "parse_gdn_url",
           "parse_transfer_url", "render_listing"]

HTTP_PORT = 8080

#: Default freshness window for HTTPD-side caching representatives.
DEFAULT_CACHE_TTL = 300.0


def parse_gdn_url(path: str) -> Tuple[str, Optional[str]]:
    """Split a GDN URL path into (object name, optional file path).

    >>> parse_gdn_url("/gdn/apps/graphics/Gimp/files/bin/gimp")
    ('/apps/graphics/Gimp', 'bin/gimp')
    """
    if not path.startswith("/gdn/"):
        raise ValueError("not a GDN URL: %r" % path)
    rest = path[len("/gdn"):]
    if "/files/" in rest:
        object_name, _sep, file_path = rest.partition("/files/")
        return object_name, file_path
    return rest.rstrip("/"), None


def parse_transfer_url(path: str) -> Optional[tuple]:
    """Parse a chunked-transfer URL; None if ``path`` is not one.

    Transfer URL scheme (rides alongside ``/files/``)::

        /gdn<object-name>/manifest/<path>[?chunk_size=N]
        /gdn<object-name>/chunk/<index>/<path>[?chunk_size=N]

    Returns ``("manifest", object_name, file_path, None, chunk_size)``
    or ``("chunk", object_name, file_path, index, chunk_size)``, with
    ``chunk_size`` None when the query string leaves it defaulted.

    >>> parse_transfer_url("/gdn/apps/Gimp/manifest/bin/gimp")
    ('manifest', '/apps/Gimp', 'bin/gimp', None, None)
    >>> parse_transfer_url("/gdn/apps/Gimp/chunk/3/bin/gimp?chunk_size=512")
    ('chunk', '/apps/Gimp', 'bin/gimp', 3, 512)
    """
    if not path.startswith("/gdn/"):
        return None
    parsed = urllib.parse.urlparse(path)
    rest = parsed.path[len("/gdn"):]
    chunk_size = None
    query = urllib.parse.parse_qs(parsed.query)
    if "chunk_size" in query:
        try:
            chunk_size = int(query["chunk_size"][0])
        except ValueError:
            raise ValueError("bad chunk_size in %r" % path) from None
    if "/manifest/" in rest:
        object_name, _sep, file_path = rest.partition("/manifest/")
        if not file_path:
            raise ValueError("transfer URL names no file: %r" % path)
        return ("manifest", object_name, file_path, None, chunk_size)
    if "/chunk/" in rest:
        object_name, _sep, tail = rest.partition("/chunk/")
        index_text, _sep, file_path = tail.partition("/")
        if not file_path:
            raise ValueError("transfer URL names no file: %r" % path)
        try:
            index = int(index_text)
        except ValueError:
            raise ValueError("bad chunk index in %r" % path) from None
        return ("chunk", object_name, file_path, index, chunk_size)
    return None


def render_listing(object_name: str, entries: list) -> str:
    """Reformat a listContents() result into an HTML page (§4)."""
    rows = "\n".join(
        "<tr><td><a href=\"/gdn%s/files/%s\">%s</a></td>"
        "<td align=\"right\">%d</td></tr>"
        % (html.escape(object_name), html.escape(entry["path"]),
           html.escape(entry["path"]), entry["size"])
        for entry in entries)
    return (
        "<html><head><title>GDN: %s</title></head><body>\n"
        "<h1>Package %s</h1>\n"
        "<table><tr><th>File</th><th>Size</th></tr>\n%s\n</table>\n"
        "<p><i>Served by the Globe Distribution Network</i></p>"
        "</body></html>"
        % (html.escape(object_name), html.escape(object_name), rows))


class GdnHttpd:
    """A GDN-enabled HTTP daemon bound to one host."""

    def __init__(self, world: World, host: Host, runtime: Runtime,
                 name_service, port: int = HTTP_PORT,
                 channel_factory: Optional[Callable] = None,
                 cache_policy: Optional[Callable[[str],
                                                 Optional[float]]] = None,
                 is_gdn_host: bool = True,
                 search_endpoint: Optional[Tuple[str, int]] = None,
                 concurrency: Optional[int] = None,
                 service_time: float = 0.0):
        """``cache_policy(object_name)`` returns the cache TTL for a
        package (None = bind as a pure client proxy).  ``is_gdn_host``
        is False for GDN-proxy servers running on user machines (§4) —
        functionally identical, but they hold no GDN credentials, so
        object servers treat them as anonymous users."""
        self.world = world
        self.host = host
        self.runtime = runtime
        self.name_service = name_service
        self.port = port
        self.channel_factory = channel_factory
        self.cache_policy = cache_policy or (lambda _name: DEFAULT_CACHE_TTL)
        self.is_gdn_host = is_gdn_host
        self.search_endpoint = (tuple(search_endpoint)
                                if search_endpoint else None)
        #: Finite-capacity serving: worker pool size and per-request
        #: CPU time (§3.1: multiple machines are needed for load).
        self.concurrency = concurrency
        self.service_time = service_time
        self._server: Optional[RpcServer] = None
        self.requests_served = 0
        self.bytes_served = 0
        self.errors = 0

    def start(self) -> None:
        server = RpcServer(self.host, self.port,
                           channel_factory=self.channel_factory,
                           concurrency=self.concurrency,
                           service_time=self.service_time)
        server.register("http", self._handle_http)
        server.start()
        self._server = server

    def stop(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None

    def bind_metrics(self, registry, prefix: str) -> None:
        """Expose serving counters (plus the runtime's GLS-lookup
        cache, when one is wired) as function-backed instruments."""
        registry.counter(prefix + ".requests_served",
                         fn=lambda: self.requests_served)
        registry.counter(prefix + ".bytes_served",
                         fn=lambda: self.bytes_served)
        registry.counter(prefix + ".errors", fn=lambda: self.errors)
        cache = getattr(self.runtime, "lookup_cache", None)
        if cache is not None:
            # No-op if the deployment already bound the shared
            # per-host cache under its canonical prefix.
            cache.bind_metrics(registry, prefix + ".gls_cache")

    # -- request handling ------------------------------------------------------

    def _handle_http(self, ctx: RpcContext, args: dict) -> Generator:
        self.requests_served += 1
        method = args.get("method", "GET")
        path = args.get("path", "/")
        if method != "GET":
            self.errors += 1
            return _response(405, "method not allowed")
        if path.startswith("/gdn-search"):
            reply = yield from self._handle_search(path)
            return reply
        try:
            transfer = parse_transfer_url(path)
        except ValueError:
            self.errors += 1
            return _response(404, "bad transfer URL: %s" % path)
        if transfer is not None:
            reply = yield from self._handle_transfer(*transfer)
            return reply
        try:
            object_name, file_path = parse_gdn_url(path)
        except ValueError:
            self.errors += 1
            return _response(404, "not a GDN URL: %s" % path)
        try:
            oid_hex = yield from self.name_service.resolve(object_name)
        except GnsError:
            self.errors += 1
            return _response(404, "unknown package %s" % object_name)
        oid = ObjectId.from_hex(oid_hex)
        ttl = self.cache_policy(object_name)
        if file_path is None:
            method, args = "listContents", {}
        else:
            method, args = "getFileContents", {"path": file_path}
        try:
            value = yield from self._invoke_with_rebind(oid, ttl, method,
                                                        args)
        except BindError:
            self.errors += 1
            return _response(503, "package currently unreachable")
        except _REBINDABLE:
            self.errors += 1
            return _response(503, "package replicas unreachable")
        except RemoteInvocationError:
            self.errors += 1
            return _response(404, "no file %s in %s"
                             % (file_path, object_name))
        if file_path is None:
            body = render_listing(object_name, value)
            self.bytes_served += len(body)
            return _response(200, body, content_type="text/html")
        self.bytes_served += len(value)
        return _response(200, value,
                         content_type="application/octet-stream")

    def _handle_transfer(self, kind: str, object_name: str, file_path: str,
                         index: Optional[int],
                         chunk_size: Optional[int]) -> Generator:
        """Serve a chunked-transfer request (manifest or one chunk).

        Same binding/rebind discipline as whole-file GETs, so a chunk
        fetch transparently fails over to another replica — the
        property resumable downloads lean on mid-crash.
        """
        try:
            oid_hex = yield from self.name_service.resolve(object_name)
        except GnsError:
            self.errors += 1
            return _response(404, "unknown package %s" % object_name)
        oid = ObjectId.from_hex(oid_hex)
        ttl = self.cache_policy(object_name)
        if kind == "manifest":
            method, args = "getFileManifest", {"path": file_path}
        else:
            method, args = "getFileChunk", {"path": file_path,
                                            "index": index}
        if chunk_size is not None:
            args["chunk_size"] = chunk_size
        try:
            value = yield from self._invoke_with_rebind(oid, ttl, method,
                                                        args)
        except BindError:
            self.errors += 1
            return _response(503, "package currently unreachable")
        except _REBINDABLE:
            self.errors += 1
            return _response(503, "package replicas unreachable")
        except RemoteInvocationError:
            self.errors += 1
            return _response(404, "no such file or chunk: %s in %s"
                             % (file_path, object_name))
        if kind == "manifest":
            self.bytes_served += encoded_size(value)
            return _response(200, value, content_type="application/json")
        self.bytes_served += len(value)
        return _response(200, value,
                         content_type="application/octet-stream")

    def _handle_search(self, path: str) -> Generator:
        """Attribute-based search (§8): ``/gdn-search?category=graphics``.

        Queries the search service and renders matching packages as a
        page of links into the GDN namespace.
        """
        if self.search_endpoint is None:
            self.errors += 1
            return _response(503, "no search service configured")
        parsed = urllib.parse.urlparse(path)
        query = {key: values[0] for key, values
                 in urllib.parse.parse_qs(parsed.query).items()}
        from ..sim import rpc as _rpc
        host_name, port = self.search_endpoint
        target = self.world.hosts[host_name]
        try:
            reply = yield from _rpc.call(
                self.host, target, port, "search", {"query": query},
                channel_wrapper=self.runtime.channel_wrapper)
        except _rpc.RpcError:
            self.errors += 1
            return _response(503, "search service unreachable")
        matches = reply.get("matches", [])
        items = "\n".join(
            "<li><a href=\"/gdn%s\">%s</a></li>"
            % (html.escape(name), html.escape(name)) for name in matches)
        body = ("<html><head><title>GDN search</title></head><body>\n"
                "<h1>%d package(s) matching %s</h1>\n<ul>\n%s\n</ul>"
                "</body></html>"
                % (len(matches), html.escape(repr(query)), items))
        self.bytes_served += len(body)
        return _response(200, body, content_type="text/html")

    def _invoke_with_rebind(self, oid, ttl, method: str,
                            args: dict) -> Generator:
        """Invoke through the (possibly cached) binding; on transport
        or replication failure, rebind once via a fresh GLS lookup and
        retry — the replica may have moved or been removed (§3.4
        bindings are soft state)."""
        representative = yield from self.runtime.bind(oid, cache_ttl=ttl)
        try:
            value = yield from representative.invoke(method, args)
            return value
        except _REBINDABLE:
            representative = yield from self.runtime.bind(
                oid, cache_ttl=ttl, refresh=True)
            value = yield from representative.invoke(method, args)
            return value


def _response(status: int, body, content_type: str = "text/plain") -> dict:
    return {"status": status, "body": body,
            "headers": {"content-type": content_type,
                        "server": "GDN-HTTPD/1.0"}}
