"""Whole-GDN deployment builder (Figure 3, end to end).

Wires every system of the reproduction together the way the paper's
architecture diagram does: DNS infrastructure carrying the GDN Zone,
the GLS directory-node tree, implementation repositories, a fleet of
Globe Object Servers, GDN-enabled HTTPDs (colocated with the object
servers in the first versions, §4), GDN proxies on user machines,
the GNS Naming Authority, moderator tools, and browsers — under the
§6.2/§6.3 security configuration when ``secure=True`` (two-way TLS
between GDN hosts, server-side TLS toward user machines, TSIG on zone
updates, HMAC-authenticated GLS registrations).

Experiments and examples construct one :class:`GdnDeployment`, add
components at chosen sites, and drive simulated users against it.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple, Union

from ..core.repository import Implementation, ImplementationRepository
from ..core.runtime import Runtime
from ..gls.tree import GlsTree
from ..gls.service import GlsClient
from ..gns.authority import AUTHORITY_PORT, NamingAuthority
from ..gns.dns.records import ResourceRecord, RRType
from ..gns.dns.resolver import CachingResolver
from ..gns.dns.server import DNS_PORT, AuthoritativeServer
from ..gns.dns.tsig import TsigKey, TsigKeyring
from ..gns.gns import DEFAULT_GDN_ZONE, GlobeNameService
from ..gos.server import DEFAULT_GOS_PORT, GlobeObjectServer
from ..security.acl import GdnPolicy, PrincipalRegistry, Role, role_attribute
from ..security.certs import CertificateAuthority, Credentials
from ..security.tls import CostModel, client_wrapper, server_factory
from ..sim.network import LinkParameters
from ..sim.stable import DiskStore
from ..sim.topology import Domain, Topology
from ..sim.transport import Host
from ..sim.world import World
from .browser import Browser, nearest_access_point
from .cache import GlsLookupCache
from .httpd import HTTP_PORT, GdnHttpd
from .moderator import ModeratorTool
from .package import PACKAGE_IMPL_ID, PackageSemantics

__all__ = ["GdnDeployment", "BrowserPool"]


class GdnDeployment:
    """One fully wired Globe Distribution Network."""

    def __init__(self, topology: Optional[Topology] = None, seed: int = 0,
                 secure: bool = True, encryption: bool = True,
                 gls_partition: Union[int, Dict[str, int]] = 1,
                 batch_window: float = 0.2,
                 link_params: Optional[LinkParameters] = None,
                 tls_costs: Optional[CostModel] = None,
                 package_code_size: int = 80_000,
                 gls_cache: Union[bool, Dict, None] = None,
                 retry_policy=None):
        """``gls_cache`` turns on the flash-crowd GLS-lookup cache for
        every GDN host (``True`` = defaults, a dict = keyword options
        for :class:`~repro.gdn.cache.GlsLookupCache`, e.g.
        ``{"ttl": 30.0, "serve_stale": True}``).  ``None`` (the
        default) keeps the direct-lookup path byte-identical to the
        uncached reference deployment.

        ``retry_policy`` (a :class:`~repro.sim.retry.RetryPolicy`)
        governs every GLS client stub created by this deployment —
        e.g. ``ExponentialBackoff(...)`` desynchronizes lookup retries
        during partitions.  ``None`` keeps the fixed legacy discipline
        byte-identical."""
        self.world = World(topology=topology or Topology.balanced(2, 2, 2, 2),
                           params=link_params, seed=seed)
        self.secure = secure
        self.encryption = encryption
        self.tls_costs = tls_costs or CostModel()
        self.disk = DiskStore()
        self.zone = DEFAULT_GDN_ZONE

        # -- security infrastructure (§6) --------------------------------
        self.ca: Optional[CertificateAuthority] = None
        self.registry: Optional[PrincipalRegistry] = None
        self.policy: Optional[GdnPolicy] = None
        self.public_trust: Optional[Credentials] = None
        self.gls_key: Optional[bytes] = None
        self._credentials: Dict[str, Credentials] = {}
        if secure:
            pki_rng = self.world.rng_for("gdn-pki")
            self.ca = CertificateAuthority("gdn-ca", pki_rng)
            self.registry = PrincipalRegistry()
            self.policy = GdnPolicy(self.registry)
            # Browsers carry only the root certificate (trust anchor).
            self.public_trust = Credentials.issue_for(
                "public-trust", self.ca, pki_rng)
            self.gls_key = b"gdn-gls-shared-key"
        self.tsig_key = TsigKey("gdn-key", b"gdn-zone-update-secret")
        self.retry_policy = retry_policy

        # -- naming + location infrastructure -------------------------------
        self._build_dns()
        self.gls = GlsTree(self.world, partition=gls_partition,
                           auth_key=self.gls_key, disk=self.disk)
        self.repository = ImplementationRepository(self.world)
        self.repository.register(Implementation(
            PACKAGE_IMPL_ID, PackageSemantics,
            code_size=package_code_size))
        self._add_repository_hosts()
        self._build_authority(batch_window)
        self._build_search()

        # -- flash-crowd serving layer (GLS-lookup cache) ------------------
        if gls_cache is None or gls_cache is False:
            self._cache_options: Optional[Dict] = None
        elif gls_cache is True:
            self._cache_options = {}
        else:
            self._cache_options = dict(gls_cache)
        self.lookup_caches: Dict[str, GlsLookupCache] = {}

        # -- application component registries -----------------------------------
        self.object_servers: Dict[str, GlobeObjectServer] = {}
        self.httpds: List[GdnHttpd] = []
        self.moderators: Dict[str, ModeratorTool] = {}
        self.browsers: Dict[str, Browser] = {}

    # -- infrastructure construction -----------------------------------------

    @property
    def metrics(self):
        """The world's :class:`MetricsRegistry` — every component added
        through this deployment binds its instruments here."""
        return self.world.metrics

    def _regions(self) -> List[Domain]:
        return list(self.world.topology.world.children.values())

    @staticmethod
    def _first_site(domain: Domain) -> Domain:
        return next(domain.sites())

    def _build_dns(self) -> None:
        world = self.world
        regions = self._regions()
        keyring = TsigKeyring()
        keyring.add(self.tsig_key)

        root_host = world.host("dns-root", self._first_site(regions[0]))
        self.dns_root = AuthoritativeServer(world, root_host)
        from ..gns.dns.zone import Zone
        root_zone = Zone("", primary_host=root_host.name)
        tld = self.zone.split(".")[-1]
        tld_site = self._first_site(regions[min(1, len(regions) - 1)])
        tld_host = world.host("dns-tld", tld_site)
        root_zone.add_record(ResourceRecord(tld, RRType.NS, 86400,
                                            tld_host.name))
        self.dns_root.add_primary_zone(root_zone)
        self.dns_root.start()

        self.dns_tld = AuthoritativeServer(world, tld_host)
        tld_zone = Zone(tld, primary_host=tld_host.name)
        primary_host = world.host("dns-gdn-primary",
                                  self._first_site(regions[0]))
        tld_zone.add_record(ResourceRecord(self.zone, RRType.NS, 3600,
                                           primary_host.name))
        self.dns_secondaries: List[AuthoritativeServer] = []
        secondary_endpoints = []
        for index, region in enumerate(regions[1:], start=1):
            sec_host = world.host("dns-gdn-sec%d" % index,
                                  self._first_site(region))
            tld_zone.add_record(ResourceRecord(self.zone, RRType.NS, 3600,
                                               sec_host.name))
            secondary_endpoints.append((sec_host.name, DNS_PORT))
            secondary = AuthoritativeServer(world, sec_host, keyring=keyring)
            secondary.add_secondary_zone(self.zone,
                                         (primary_host.name, DNS_PORT))
            secondary.start()
            self.dns_secondaries.append(secondary)
        self.dns_tld.add_primary_zone(tld_zone)
        self.dns_tld.start()

        self.dns_primary = AuthoritativeServer(world, primary_host,
                                               keyring=keyring)
        gdn_zone = Zone(self.zone, primary_host=primary_host.name)
        self.dns_primary.add_primary_zone(gdn_zone,
                                          secondaries=secondary_endpoints)
        self.dns_primary.start()
        self.root_hints = [(root_host.name, DNS_PORT)]

    def _add_repository_hosts(self) -> None:
        for index, region in enumerate(self._regions()):
            host = self.world.host("implrepo-%d" % index,
                                   self._first_site(region))
            self.repository.add_repository_host(host)

    def _build_authority(self, batch_window: float) -> None:
        host = self.world.host("gns-authority",
                               self._first_site(self._regions()[0]))
        factory = None
        authorizer = None
        if self.secure:
            credentials = self._gdn_host_credentials(host)
            factory = server_factory(credentials, client_auth="required",
                                     encryption=self.encryption,
                                     costs=self.tls_costs)
            authorizer = self.policy.authority_authorizer
        self.authority = NamingAuthority(
            self.world, host, primary=self.dns_primary.endpoint,
            tsig_key=self.tsig_key, zone=self.zone,
            channel_factory=factory, authorizer=authorizer,
            batch_window=batch_window)
        self.authority.start()

    def _build_search(self) -> None:
        from .search import SearchService

        host = self.world.host("gdn-search",
                               self._first_site(self._regions()[0]))
        factory = None
        authorizer = None
        if self.secure:
            credentials = self._gdn_host_credentials(host)
            factory = server_factory(credentials, client_auth="optional",
                                     encryption=self.encryption,
                                     costs=self.tls_costs)
            authorizer = self.policy.authority_authorizer
        self.search = SearchService(self.world, host,
                                    channel_factory=factory,
                                    authorizer=authorizer)
        self.search.start()

    # -- credentials -----------------------------------------------------------

    def _gdn_host_credentials(self, host: Host) -> Credentials:
        if not self.secure:
            raise ValueError("deployment is not secured")
        if host.name not in self._credentials:
            credentials = Credentials.issue_for(
                host.name, self.ca, self.world.rng_for("cred-%s" % host.name),
                role_attribute(Role.GDN_HOST))
            self.registry.grant(host.name, Role.GDN_HOST)
            self._credentials[host.name] = credentials
        return self._credentials[host.name]

    def _gdn_client_wrapper(self, host: Host) -> Optional[Callable]:
        """Two-way TLS wrapper for a GDN host's outbound channels."""
        if not self.secure:
            return None
        return client_wrapper(credentials=self._gdn_host_credentials(host),
                              encryption=self.encryption,
                              costs=self.tls_costs)

    def _anonymous_wrapper(self) -> Optional[Callable]:
        """One-way (server-auth) TLS wrapper for user machines."""
        if not self.secure:
            return None
        return client_wrapper(trust=self.public_trust,
                              encryption=self.encryption,
                              costs=self.tls_costs)

    # -- component factories ------------------------------------------------------

    def _gls_client(self, host: Host, authenticated: bool) -> GlsClient:
        return GlsClient(self.world, host, self.gls,
                         auth_key=self.gls_key if authenticated else None,
                         retry_policy=self.retry_policy)

    def _lookup_cache(self, host: Host,
                      upstream: GlsClient) -> Optional[GlsLookupCache]:
        """The host's GLS-lookup cache (None when caching is off).

        One cache per host, shared by every component there: wire
        lists are nearest-first *per fetching host*, so per-host is
        the widest safe sharing — and it means a colocated GOS's
        register/unregister invalidates the very entry its HTTPD
        serves, instead of waiting out a TTL."""
        if self._cache_options is None:
            return None
        cache = self.lookup_caches.get(host.name)
        if cache is None:
            cache = GlsLookupCache(self.world.sim, upstream,
                                   **self._cache_options)
            cache.bind_metrics(self.world.metrics,
                               prefix="gls_cache.%s" % host.name)
            self.lookup_caches[host.name] = cache
        return cache

    def _runtime(self, host: Host, gdn_host: bool,
                 binding_ttl: Optional[float] = None) -> Runtime:
        wrapper = (self._gdn_client_wrapper(host) if gdn_host
                   else self._anonymous_wrapper())
        client = self._gls_client(host, authenticated=gdn_host)
        return Runtime(self.world, host, client,
                       self.repository, channel_wrapper=wrapper,
                       binding_ttl=binding_ttl,
                       lookup_cache=self._lookup_cache(host, client))

    def _name_service(self, host: Host) -> GlobeNameService:
        resolver = CachingResolver(self.world, host, self.root_hints)
        return GlobeNameService(self.world, host, resolver, zone=self.zone)

    def add_gos(self, name: str, site: Union[str, Domain],
                port: int = DEFAULT_GOS_PORT) -> GlobeObjectServer:
        """Add a Globe Object Server at ``site``."""
        host = self.world.host(name, site)
        factory = None
        wrapper = None
        authorizer = None
        if self.secure:
            credentials = self._gdn_host_credentials(host)
            factory = server_factory(credentials, client_auth="optional",
                                     encryption=self.encryption,
                                     costs=self.tls_costs)
            wrapper = self._gdn_client_wrapper(host)
            authorizer = self.policy.gos_authorizer
        client = self._gls_client(host, authenticated=True)
        gos = GlobeObjectServer(
            self.world, host, self.repository,
            self._lookup_cache(host, client) or client, port=port,
            channel_factory=factory, channel_wrapper=wrapper,
            authorizer=authorizer, disk=self.disk,
            checkpoint_on_write=True)
        gos.start()
        gos.bind_metrics(self.world.metrics, prefix="gos.%s" % name)
        self.repository.preload(host, PACKAGE_IMPL_ID)
        self.object_servers[name] = gos
        return gos

    def add_httpd(self, name: str, site: Union[str, Domain, None] = None,
                  colocate_with: Optional[str] = None,
                  port: int = HTTP_PORT,
                  cache_policy: Optional[Callable] = None,
                  binding_ttl: Optional[float] = 300.0,
                  concurrency: Optional[int] = None,
                  service_time: float = 0.0) -> GdnHttpd:
        """Add a GDN-enabled HTTPD (optionally on a GOS host, §4).

        ``binding_ttl`` makes the daemon's DSO bindings soft state, so
        it periodically re-consults the GLS and notices replicas added
        or moved since it first bound."""
        if colocate_with is not None:
            host = self.object_servers[colocate_with].host
        elif site is not None:
            host = self.world.host(name, site)
        else:
            raise ValueError("need a site or a GOS to colocate with")
        factory = None
        if self.secure:
            credentials = self._gdn_host_credentials(host)
            factory = server_factory(credentials, client_auth="none",
                                     encryption=self.encryption,
                                     costs=self.tls_costs)
        httpd = GdnHttpd(self.world, host,
                         self._runtime(host, gdn_host=True,
                                       binding_ttl=binding_ttl),
                         self._name_service(host), port=port,
                         channel_factory=factory, cache_policy=cache_policy,
                         search_endpoint=(self.search.host.name,
                                          self.search.port),
                         concurrency=concurrency,
                         service_time=service_time)
        httpd.start()
        httpd.bind_metrics(self.world.metrics, prefix="httpd.%s" % name)
        self.httpds.append(httpd)
        return httpd

    def add_proxy(self, name: str, site: Union[str, Domain],
                  port: int = HTTP_PORT,
                  cache_policy: Optional[Callable] = None) -> GdnHttpd:
        """Add a GDN-proxy on a user machine (§4): same software, no
        GDN credentials, plain HTTP toward the local browser."""
        host = self.world.host(name, site)
        proxy = GdnHttpd(self.world, host,
                         self._runtime(host, gdn_host=False),
                         self._name_service(host), port=port,
                         channel_factory=None, cache_policy=cache_policy,
                         is_gdn_host=False)
        proxy.start()
        return proxy

    def add_moderator(self, name: str, site: Union[str, Domain]
                      ) -> ModeratorTool:
        """Add a moderator (tool + credentials + registry entry)."""
        host = self.world.host(name, site)
        wrapper = None
        if self.secure:
            credentials = Credentials.issue_for(
                name, self.ca, self.world.rng_for("cred-%s" % name),
                role_attribute(Role.MODERATOR))
            self.registry.grant(name, Role.MODERATOR)
            self._credentials[name] = credentials
            wrapper = client_wrapper(credentials=credentials,
                                     encryption=self.encryption,
                                     costs=self.tls_costs)
        gos_registry = {gos_name: (gos.host.name, gos.port)
                        for gos_name, gos in self.object_servers.items()}
        tool = ModeratorTool(
            self.world, host,
            Runtime(self.world, host,
                    self._gls_client(host, authenticated=False),
                    self.repository, channel_wrapper=wrapper),
            gos_registry,
            (self.authority.host.name, self.authority.port),
            self._name_service(host), channel_wrapper=wrapper,
            search_endpoint=(self.search.host.name, self.search.port))
        self.moderators[name] = tool
        return tool

    def add_maintainer(self, name: str, site: Union[str, Domain],
                       maintains: Optional[List[str]] = None):
        """Add a §2 maintainer: content rights on specific packages.

        ``maintains`` lists OIDs (hex) this principal may modify; more
        can be granted later with ``grant_maintainer``.
        """
        from .maintainer import MaintainerTool

        host = self.world.host(name, site)
        wrapper = None
        if self.secure:
            credentials = Credentials.issue_for(
                name, self.ca, self.world.rng_for("cred-%s" % name),
                role_attribute(Role.MAINTAINER))
            self._credentials[name] = credentials
            wrapper = client_wrapper(credentials=credentials,
                                     encryption=self.encryption,
                                     costs=self.tls_costs)
            for oid_hex in maintains or []:
                self.registry.grant_package(name, oid_hex)
        tool = MaintainerTool(
            self.world, host,
            Runtime(self.world, host,
                    self._gls_client(host, authenticated=False),
                    self.repository, channel_wrapper=wrapper),
            self._name_service(host))
        return tool

    def grant_maintainer(self, principal: str, oid_hex: str) -> None:
        """Administrator action: extend a maintainer's package set."""
        if self.registry is not None:
            self.registry.grant_package(principal, oid_hex)

    def add_browser(self, name: str, site: Union[str, Domain],
                    access_point: Optional[GdnHttpd] = None) -> Browser:
        """Add a user browser, bound to the nearest access point."""
        host = self.world.host(name, site)
        if access_point is None:
            access_point = nearest_access_point(host, self.httpds)
        browser = Browser(self.world, host, access_point,
                          channel_wrapper=self._anonymous_wrapper())
        self.browsers[name] = browser
        return browser

    def chunked_downloader(self, policy=None, budget=None,
                           resume: bool = True,
                           chunk_size: Optional[int] = None,
                           metrics_prefix: Optional[str] = "transfer"):
        """A :class:`~repro.gdn.transfer.ChunkedDownloader` for this
        deployment's browsers, instruments bound in the world registry
        under ``metrics_prefix`` (None skips binding — e.g. for a
        second, differently-configured downloader in one world)."""
        from .transfer import ChunkedDownloader

        downloader = ChunkedDownloader(self.world, policy=policy,
                                       budget=budget, resume=resume,
                                       chunk_size=chunk_size)
        if metrics_prefix is not None:
            downloader.bind_metrics(self.world.metrics, metrics_prefix)
        return downloader

    def browser_pool(self, prefix: str) -> "BrowserPool":
        """One long-lived browser per site, created on first use.

        Load drivers issue many requests per site; reusing a browser
        (and so its access-point channel) per site is how real users
        behave and keeps host creation out of the request hot path.
        """
        return BrowserPool(self, prefix)

    # -- canned layouts -------------------------------------------------------------

    def standard_fleet(self, gos_per_region: int = 1) -> None:
        """One (or more) GOS+HTTPD pairs per region — the paper's
        "machines all over the world" baseline layout."""
        for region in self._regions():
            sites = list(region.sites())
            for index in range(gos_per_region):
                site = sites[index % len(sites)]
                name = "gos-%s-%d" % (region.name, index)
                self.add_gos(name, site)
                self.add_httpd("httpd-%s-%d" % (region.name, index),
                               colocate_with=name)

    def gos_by_region(self) -> Dict[str, str]:
        """region path -> one object-server name (for ScenarioAdvisor)."""
        mapping: Dict[str, str] = {}
        for name, gos in sorted(self.object_servers.items()):
            region = gos.host.site.region()
            mapping.setdefault(region.path, name)
        return mapping

    def recover_gos(self, name: str) -> None:
        """Reboot recovery of an object-server machine (§4).

        Restarts the host if needed, reconstructs the GOS's replicas
        from stable storage, and restarts any colocated HTTPDs (whose
        in-memory bindings died with the address space).
        """
        gos = self.object_servers[name]
        host = gos.host
        if not host.up:
            host.restart()
        self.run(gos.recover(), host=host)
        for httpd in self.httpds:
            if httpd.host is host:
                httpd.runtime.unbind_all()
                httpd.start()

    # -- execution helpers -------------------------------------------------------

    def run(self, generator: Generator, host: Optional[Host] = None,
            limit: float = 1e7):
        """Run a generator as a process to completion."""
        process = (host.spawn(generator) if host is not None
                   else self.world.sim.process(generator))
        return self.world.run_until(process, limit=limit)

    def settle(self, duration: float = 5.0) -> None:
        """Let asynchronous machinery (pushes, transfers) drain."""
        self.world.run(until=self.world.now + duration)

    def initial_sync(self) -> None:
        """Complete initial DNS secondary transfers."""
        for secondary in self.dns_secondaries:
            self.run(secondary.initial_transfers(), host=secondary.host)


class BrowserPool:
    """A site -> :class:`Browser` cache shared by load drivers.

    Call it with a site (a Domain or site path) to get that site's
    long-lived browser, creating it on first use under a
    ``prefix``-derived host name; ``close()`` closes all of them.
    """

    def __init__(self, deployment: GdnDeployment, prefix: str):
        self._deployment = deployment
        self._prefix = prefix
        self._browsers: Dict[str, Browser] = {}

    def __call__(self, site: Union[str, Domain]) -> Browser:
        path = site if isinstance(site, str) else site.path
        browser = self._browsers.get(path)
        if browser is None:
            browser = self._deployment.add_browser(
                "%s-%s" % (self._prefix, path.replace("/", "-")), path)
            self._browsers[path] = browser
        return browser

    def close(self) -> None:
        for browser in self._browsers.values():
            browser.close()
