"""The Globe Distribution Network application (paper §2, §4)."""

from .browser import Browser, HttpResponse, nearest_access_point
from .deployment import GdnDeployment
from .httpd import (DEFAULT_CACHE_TTL, GdnHttpd, HTTP_PORT, parse_gdn_url,
                    render_listing)
from .maintainer import MaintainerTool, MaintenanceError
from .moderator import ModerationError, ModeratorTool
from .package import HISTORY_RETENTION, PACKAGE_IMPL_ID, PackageSemantics
from .scenario import ObjectUsage, ReplicationScenario, ScenarioAdvisor
from .search import SEARCH_PORT, SearchService

__all__ = [
    "Browser", "HttpResponse", "nearest_access_point",
    "GdnDeployment",
    "DEFAULT_CACHE_TTL", "GdnHttpd", "HTTP_PORT", "parse_gdn_url",
    "render_listing",
    "MaintainerTool", "MaintenanceError",
    "ModerationError", "ModeratorTool",
    "HISTORY_RETENTION", "PACKAGE_IMPL_ID", "PackageSemantics",
    "ObjectUsage", "ReplicationScenario", "ScenarioAdvisor",
    "SEARCH_PORT", "SearchService",
]
