"""Flash-crowd serving layer: the GLS-lookup cache (paper §1/§3.1).

The paper's premise is that flash crowds on free-software packages are
absorbed by replication — but replication only helps if the *lookup*
tier scales too.  Without a cache, every concurrent browser request
walks the full HTTPD → runtime → GLS path, so a 15× spike on one
object fires thousands of identical upstream lookups at the location
service.  This module puts a cache in front of the per-host
:class:`~repro.gls.service.GlsClient`:

* **TTL cache with negative caching and an LRU bound.**  Positive
  entries hold the contact-address wires a lookup returned (already
  nearest-first for this host); an *empty* lookup result is cached too
  (``negative_ttl``), so a flood of requests for an unregistered
  object fails fast instead of walking the GLS tree every time.
  Capacity is bounded; the least-recently-used entry is evicted.
* **Singleflight coalescing.**  N concurrent misses for one OID
  collapse into a single in-flight upstream lookup: the first miss
  becomes the *leader* and performs the lookup inside its own
  generator; later misses park on pre-defused kernel
  :class:`~repro.sim.kernel.Event` waiters (the RPC-channel idiom — a
  crashed waiter host cannot crash the simulation) and the leader fans
  the result out to all of them when it lands.
* **Serve-stale during partitions.**  When the upstream lookup times
  out or the transport fails (the GLS partition signature) and an
  expired positive entry is still within ``stale_window``, the stale
  entry is served — to the leader *and* every parked waiter — and
  flagged: the entry is marked stale and re-armed for
  ``stale_holdoff`` seconds so follow-up requests during the outage
  are answered immediately instead of queueing behind upstream
  timeouts.  Availability during a GLS partition therefore *improves*
  with serve-stale on (a named :class:`~repro.workloads.scenario.Soak`
  invariant; see ``Soak.serve_stale_invariant``).
* **Proactive refresh of hot entries.**  Per-entry hit counters drive
  warmup: when a popular entry (``hot_threshold`` hits within its TTL
  period) is read inside the last ``refresh_ahead`` fraction of its
  TTL, a background process refreshes it *before* it expires, so a
  flash crowd on a hot object never sees the miss latency cliff at
  the TTL boundary.

Telemetry follows the repo's pull-only discipline: plain-int counters
(``hits`` / ``misses`` / ``negative_hits`` / ``stale_served`` /
``coalesced`` / ``refreshes`` …) exposed as function-backed
instruments via :meth:`GlsLookupCache.bind_metrics`, plus occupancy /
in-flight / parked-waiter gauges that the benchmarks assert drain to
zero after a run.

The cache is *also* a location-service wrapper: ``register`` /
``unregister`` / ``close`` delegate to the upstream client, and a
registration change invalidates the corresponding entry — a replica
added or moved through this host is visible to its own lookups
immediately, not after a TTL.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generator, List, Optional

from ..sim.kernel import Event, Simulator, _PENDING
from ..sim.rpc import RpcTimeout
from ..sim.transport import TransportError

__all__ = ["GlsLookupCache"]

#: Upstream failures that mean "the GLS is unreachable" (a partition
#: or an outage) rather than "the GLS answered no" — the only failures
#: serve-stale may paper over.  A definitive fault reply
#: (:class:`~repro.gls.service.GlsError`) is an *answer* and is never
#: masked by a stale entry.
STALE_ELIGIBLE = (RpcTimeout, TransportError)


class _Entry:
    """One cached lookup result (positive or negative)."""

    __slots__ = ("key", "wires", "negative", "expires", "ttl", "hits",
                 "stale", "refreshing")

    def __init__(self, key: str):
        self.key = key
        self.wires: List[dict] = []
        self.negative = False
        self.expires = 0.0
        self.ttl = 0.0
        self.hits = 0           # hits within the current TTL period
        self.stale = False      # currently serving past its TTL
        self.refreshing = False  # a background refresh is in flight


class GlsLookupCache:
    """TTL/negative/serve-stale cache + singleflight over GLS lookups.

    ``upstream`` is anything exposing the
    :class:`~repro.gls.service.GlsClient` generator surface
    (``lookup`` mandatory; ``register``/``unregister``/``close``
    optional, delegated).  One cache serves one host's runtime — the
    cached wire lists are nearest-first *for the host that fetched
    them*, so sharing a cache across sites would hand browsers a
    wrong-distance replica ordering.
    """

    def __init__(self, sim: Simulator, upstream,
                 ttl: float = 60.0,
                 negative_ttl: float = 30.0,
                 capacity: int = 1024,
                 serve_stale: bool = False,
                 stale_window: float = 3600.0,
                 stale_holdoff: float = 5.0,
                 refresh_ahead: float = 0.2,
                 hot_threshold: int = 3):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 <= refresh_ahead < 1.0:
            raise ValueError("refresh_ahead is a fraction of the TTL")
        self.sim = sim
        self.upstream = upstream
        self.ttl = ttl
        self.negative_ttl = negative_ttl
        self.capacity = capacity
        self.serve_stale = serve_stale
        self.stale_window = stale_window
        self.stale_holdoff = stale_holdoff
        self.refresh_ahead = refresh_ahead
        self.hot_threshold = hot_threshold
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: key -> parked waiter Events behind that key's in-flight
        #: upstream lookup (the leader itself does not park).
        self._inflight: Dict[str, List[Event]] = {}
        self._waiting = 0
        self.metrics_prefix: Optional[str] = None
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0
        self.stale_served = 0
        self.coalesced = 0
        self.refreshes = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- telemetry -------------------------------------------------------

    def bind_metrics(self, registry, prefix: str = "gls_cache") -> None:
        """Expose the plain-int accounting as function-backed
        instruments (the lookup hot path never touches one).

        Idempotent: the first binding wins.  A cache shared by every
        component on a host (deployment wiring) is offered for binding
        by each of them; only one canonical prefix registers.
        """
        if self.metrics_prefix is not None:
            return
        self.metrics_prefix = prefix
        registry.counter(prefix + ".hits", fn=lambda: self.hits)
        registry.counter(prefix + ".misses", fn=lambda: self.misses)
        registry.counter(prefix + ".negative_hits",
                         fn=lambda: self.negative_hits)
        registry.counter(prefix + ".stale_served",
                         fn=lambda: self.stale_served)
        registry.counter(prefix + ".coalesced", fn=lambda: self.coalesced)
        registry.counter(prefix + ".refreshes", fn=lambda: self.refreshes)
        registry.counter(prefix + ".evictions", fn=lambda: self.evictions)
        registry.counter(prefix + ".invalidations",
                         fn=lambda: self.invalidations)
        registry.gauge(prefix + ".occupancy",
                       fn=lambda: len(self._entries))
        registry.gauge(prefix + ".inflight",
                       fn=lambda: len(self._inflight))
        registry.gauge(prefix + ".waiters", fn=lambda: self._waiting)
        upstream_lookups = getattr(self.upstream, "lookups", None)
        if upstream_lookups is not None:
            registry.counter(prefix + ".upstream_lookups",
                             fn=lambda: self.upstream.lookups)

    # -- the cached lookup ----------------------------------------------

    def lookup(self, oid_hex: str, ttl: Optional[float] = None,
               refresh: bool = False
               ) -> Generator[Any, Any, List[dict]]:
        """Contact addresses for an OID, served from cache when fresh.

        ``ttl`` overrides the cache default for the entry this lookup
        (re)fills — the HTTPD's per-object cache policy flows through
        :meth:`Runtime.bind(cache_ttl=...) <repro.core.runtime.Runtime
        .bind>` into the lookup-cache TTL, which is what makes the
        long-standing ``cache_ttl`` knob real at this tier.
        ``refresh=True`` bypasses a fresh entry *and* serve-stale (the
        caller is explicitly chasing a replica that moved), but still
        coalesces with any in-flight lookup for the key.
        """
        entry = self._entries.get(oid_hex)
        if entry is not None and not refresh \
                and self.sim.now < entry.expires:
            entry.hits += 1
            self._entries.move_to_end(oid_hex)
            if entry.stale:
                self.stale_served += 1
            elif entry.negative:
                self.negative_hits += 1
            else:
                self.hits += 1
                self._maybe_refresh(entry)
            return list(entry.wires)
        self.misses += 1
        waiters = self._inflight.get(oid_hex)
        if waiters is not None:
            # Singleflight: park behind the in-flight leader.  The
            # waiter is pre-defused so a failure fanned out after this
            # process died (host crash) passes silently, mirroring the
            # RPC pending-call discipline.
            self.coalesced += 1
            waiter = Event(self.sim)
            waiter._defused = True
            waiters.append(waiter)
            self._waiting += 1
            wires = yield waiter
            return list(wires)
        wires = yield from self._fetch(oid_hex, ttl,
                                       stale_ok=not refresh,
                                       count_self=True)
        return list(wires)

    def _fetch(self, oid_hex: str, ttl: Optional[float],
               stale_ok: bool, count_self: bool
               ) -> Generator[Any, Any, List[dict]]:
        """Leader path: one upstream lookup, fanned out to waiters.

        On an upstream-unreachable failure with serve-stale enabled and
        an eligible expired entry, the stale wires are served (and the
        entry re-armed for ``stale_holdoff``) instead of raising;
        otherwise the failure is fanned out to every parked waiter and
        re-raised.
        """
        waiters: List[Event] = []
        self._inflight[oid_hex] = waiters
        try:
            wires = yield from self.upstream.lookup(oid_hex)
        except BaseException as exc:
            if self._inflight.get(oid_hex) is waiters:
                del self._inflight[oid_hex]
            stale = None
            if stale_ok and self.serve_stale \
                    and isinstance(exc, STALE_ELIGIBLE):
                stale = self._stale_entry(oid_hex)
            if stale is not None:
                # Flag and re-arm: follow-up requests during the
                # outage are stale *hits* for the holdoff window, not
                # fresh upstream timeouts.
                stale.stale = True
                stale.expires = self.sim.now + self.stale_holdoff
                self.stale_served += len(waiters) + (1 if count_self
                                                     else 0)
                self._resolve(waiters, stale.wires)
                return list(stale.wires)
            # A process killed mid-lookup unwinds through here with a
            # non-Exception (GeneratorExit); waiters must still be
            # released, but never with something that would tear their
            # own generators down.
            failure = (exc if isinstance(exc, Exception) else
                       TransportError("lookup leader aborted for %r"
                                      % oid_hex))
            for waiter in waiters:
                if waiter._value is _PENDING:
                    self._waiting -= 1
                    waiter.fail(failure)
            raise
        if self._inflight.get(oid_hex) is waiters:
            del self._inflight[oid_hex]
        self._store(oid_hex, wires, ttl)
        self._resolve(waiters, wires)
        return wires

    def _resolve(self, waiters: List[Event], wires: List[dict]) -> None:
        for waiter in waiters:
            if waiter._value is _PENDING:
                self._waiting -= 1
                waiter.succeed(wires)

    def _stale_entry(self, oid_hex: str) -> Optional[_Entry]:
        """The expired-but-servable entry for a key, if any.

        Negative entries are never served stale: claiming "not found"
        while the GLS is unreachable would *reduce* availability."""
        entry = self._entries.get(oid_hex)
        if entry is None or entry.negative:
            return None
        if self.sim.now - entry.expires > self.stale_window:
            return None
        return entry

    def _store(self, oid_hex: str, wires: List[dict],
               ttl: Optional[float]) -> _Entry:
        wires = list(wires)
        negative = not wires
        ttl_value = (self.negative_ttl if negative
                     else (ttl if ttl is not None else self.ttl))
        entry = self._entries.get(oid_hex)
        if entry is None:
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            entry = _Entry(oid_hex)
            self._entries[oid_hex] = entry
        else:
            self._entries.move_to_end(oid_hex)
        entry.wires = wires
        entry.negative = negative
        entry.expires = self.sim.now + ttl_value
        entry.ttl = ttl_value
        entry.hits = 0
        entry.stale = False
        return entry

    # -- proactive refresh ------------------------------------------------

    def _maybe_refresh(self, entry: _Entry) -> None:
        """Warm a hot entry before its TTL expires (hit-counter
        driven); at most one background refresh per entry at a time."""
        if entry.refreshing or entry.ttl <= 0.0 \
                or entry.hits < self.hot_threshold \
                or entry.key in self._inflight:
            return
        if entry.expires - self.sim.now > self.refresh_ahead * entry.ttl:
            return
        entry.refreshing = True
        self.refreshes += 1
        self.sim.process(self._refresh(entry.key, entry.ttl))

    def _refresh(self, oid_hex: str, ttl: float) -> Generator:
        try:
            # Registered as the in-flight leader, so misses landing
            # after the entry expires coalesce onto the refresh.  A
            # failed refresh serves stale to those waiters (the cache
            # itself counts none: no request rode the leader) or fans
            # the failure out; either way the entry ages normally and
            # the next miss takes over.
            yield from self._fetch(oid_hex, ttl, stale_ok=True,
                                   count_self=False)
        except Exception:
            pass
        finally:
            entry = self._entries.get(oid_hex)
            if entry is not None:
                entry.refreshing = False

    # -- location-service passthroughs ------------------------------------

    def invalidate(self, oid_hex: str) -> bool:
        """Drop a cached entry (registration change); True if present."""
        if self._entries.pop(oid_hex, None) is not None:
            self.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()

    def register(self, oid_hex: Optional[str], ca_wire: dict,
                 store_level: int = 0) -> Generator[Any, Any, str]:
        """Delegate to the upstream client, then invalidate: a replica
        registered through this host must be visible to this host's
        next lookup, not after a TTL."""
        value = yield from self.upstream.register(oid_hex, ca_wire,
                                                  store_level)
        self.invalidate(value if oid_hex is None else oid_hex)
        return value

    def unregister(self, oid_hex: str, ca_wire: dict) -> Generator:
        value = yield from self.upstream.unregister(oid_hex, ca_wire)
        self.invalidate(oid_hex)
        return value

    def close(self) -> None:
        close = getattr(self.upstream, "close", None)
        if close is not None:
            close()
