"""TLS-style secure channels over simulated connections (paper §6.3).

"We replace all communication between GDN parties by integrity-
protected and authenticated communication … all TCP connections between
GDN parties are replaced by connections secured via the TLS protocol."

The handshake is a faithful miniature of TLS-with-RSA-key-transport:

1. ``hello``         client nonce, desired cipher options
2. ``server-hello``  server nonce + certificate (server always
                     authenticates: one-way mode, Figure 4 arrows 1/2)
3. ``key-exchange``  RSA-encrypted premaster secret (+ client
                     certificate and a transcript signature when the
                     server demands two-way authentication, arrow 3)
4. ``finished``      HMAC over the transcript under the derived keys

Data records carry sequence-numbered HMACs; tampering or replay raises
:class:`SecurityError` at the receiver.  Encryption itself is modelled
as a per-byte CPU cost (the payload is not actually scrambled — the
simulator has no on-path eavesdropper), which is exactly the knob the
paper worries about: "we are paying for something we do not need:
confidentiality".  ``encryption=False`` gives the integrity-only
variant for that ablation (experiment E4).

A :class:`SecureChannel` exposes ``send``/``recv``/``close`` plus
``peer_principal`` and is accepted anywhere a raw connection is (the
RPC layer's ``channel_wrapper``/``channel_factory`` hooks).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.marshal import pack
from ..sim.kernel import Event
from ..sim.serde import encoded_size
from ..sim.transport import Connection, ConnectionClosed
from .certs import Certificate, Credentials
from .crypto import hmac_sha256, sha256

__all__ = ["SecureChannel", "SecurityError", "HandshakeError", "CostModel",
           "client_wrapper", "server_factory"]

_MAC_SIZE = 32
_RECORD_OVERHEAD = 5  # TLS record header
#: Upper bound on a record's carried wire size ("w") the receiver
#: will believe without re-measuring — comfortably above any honest
#: record in this reproduction, far below what a spoofed declared
#: size would need to stall a recv pump meaningfully.
_MAX_CARRIED_RECORD_SIZE = 1 << 24  # 16 MiB


class SecurityError(Exception):
    """Integrity violation on an established channel."""


class HandshakeError(SecurityError):
    """Authentication failed while establishing a channel."""


class CostModel:
    """CPU costs of cryptographic operations (seconds).

    Defaults approximate year-2000 commodity hardware, where the
    paper's concern about "superfluous encryption" was real: ~8 ms per
    RSA private-key operation, ~20 MB/s symmetric encryption,
    ~100 MB/s HMAC.
    """

    def __init__(self, rsa_private_op: float = 0.008,
                 rsa_public_op: float = 0.0005,
                 encrypt_per_byte: float = 5.0e-8,
                 mac_per_byte: float = 1.0e-8):
        self.rsa_private_op = rsa_private_op
        self.rsa_public_op = rsa_public_op
        self.encrypt_per_byte = encrypt_per_byte
        self.mac_per_byte = mac_per_byte

    def record_cost(self, size: int, encryption: bool) -> float:
        cost = size * self.mac_per_byte
        if encryption:
            cost += size * self.encrypt_per_byte
        return cost


DEFAULT_COSTS = CostModel()

_EOF = object()


class SecureChannel:
    """An authenticated, integrity-protected channel over a connection."""

    def __init__(self, conn: Connection, send_key: bytes, recv_key: bytes,
                 peer_certificate: Optional[Certificate], encryption: bool,
                 costs: CostModel):
        self.conn = conn
        self.host = conn.local
        self.sim = conn.sim
        self.encryption = encryption
        self.costs = costs
        self.peer_certificate = peer_certificate
        #: Authenticated identity of the peer (None if unauthenticated).
        self.peer_principal = (peer_certificate.subject
                               if peer_certificate else None)
        self._send_key = send_key
        self._recv_key = recv_key
        self._seq_out = 0
        self._seq_in = 0
        self.closed = False
        self.records_sent = 0
        self.integrity_failures = 0
        self._outbox = self.sim.store()
        self._inbox = self.sim.store()
        self._pumps = [self.host.spawn(self._send_pump()),
                       self.host.spawn(self._recv_pump())]

    # -- data path ----------------------------------------------------------

    @property
    def broken(self) -> bool:
        return self.conn.broken

    def send(self, payload: Any, size: Optional[int] = None) -> int:
        """Queue an authenticated record; returns the charged size."""
        if self.closed:
            raise ConnectionClosed("send on closed secure channel")
        body = size if size is not None else encoded_size(payload)
        wire = body + _MAC_SIZE + _RECORD_OVERHEAD
        self._seq_out += 1
        mac = self._mac(self._send_key, self._seq_out, payload)
        # The record carries its own wire size ("w"): the sender
        # already measured the payload once, so the receiving pump
        # charges CPU from the carried size instead of re-walking the
        # nested payload per record.  ("w" is framing metadata — it is
        # not covered by the MAC; the receiver sanity-bounds it and
        # falls back to an honest walk when it is missing or forged.)
        frame = {"s": self._seq_out, "p": payload, "m": mac, "w": wire}
        self._outbox.put((frame, wire))
        return wire

    def recv(self) -> Event:
        """Event with the next verified payload; fails on close/tamper."""
        result = self.sim.event()
        result._defused = True
        inner = self._inbox.get()

        def on_item(event: Event) -> None:
            if result.triggered:
                return
            item = event._value
            if item is _EOF:
                self._inbox.put(_EOF)
                result.fail(ConnectionClosed("secure channel closed"))
            elif isinstance(item, SecurityError):
                result.fail(item)
            else:
                result.succeed(item)

        inner.add_callback(on_item)
        return result

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.conn.close()
        for pump in self._pumps:
            if pump.alive:
                pump.kill()
        self._inbox.put(_EOF)

    # -- internals ------------------------------------------------------------

    def _mac(self, key: bytes, seq: int, payload: Any) -> bytes:
        canonical = pack(payload) + seq.to_bytes(8, "big")
        return hmac_sha256(key, canonical)

    def _send_pump(self) -> Generator:
        while True:
            frame, wire = yield self._outbox.get()
            cost = self.costs.record_cost(wire, self.encryption)
            if cost > 0:
                yield self.sim.timeout(cost)
            try:
                self.conn.send(frame, size=wire)
                self.records_sent += 1
            except ConnectionClosed:
                self._inbox.put(_EOF)
                return

    def _recv_pump(self) -> Generator:
        while True:
            try:
                frame = yield self.conn.recv()
            except ConnectionClosed:
                self._inbox.put(_EOF)
                return
            # Trust the carried size only inside a sane range: "w" is
            # not MAC-covered, so an on-path attacker could otherwise
            # declare a petabyte record (stalling this pump — and all
            # legitimate records behind it — on a fabricated CPU
            # charge) or a negative one (free processing).  Out-of-
            # range or missing values pay the honest walk of what was
            # actually received, which an attacker cannot inflate.
            size = (frame.get("w") if isinstance(frame, dict) else None)
            if not (isinstance(size, int)
                    and 0 <= size <= _MAX_CARRIED_RECORD_SIZE):
                size = encoded_size(frame)
            cost = self.costs.record_cost(size, self.encryption)
            if cost > 0:
                yield self.sim.timeout(cost)
            if not isinstance(frame, dict) or "s" not in frame:
                self.integrity_failures += 1
                self._inbox.put(SecurityError("malformed record"))
                continue
            expected_seq = self._seq_in + 1
            mac = self._mac(self._recv_key, frame.get("s", -1),
                            frame.get("p"))
            if frame.get("s") != expected_seq or frame.get("m") != mac:
                self.integrity_failures += 1
                self._inbox.put(SecurityError(
                    "record failed integrity check (tamper or replay)"))
                continue
            self._seq_in = expected_seq
            self._inbox.put(frame["p"])


# ---------------------------------------------------------------------------
# Handshake
# ---------------------------------------------------------------------------


def _derive_keys(premaster: int, client_nonce: bytes, server_nonce: bytes):
    material = sha256(premaster.to_bytes(64, "big") + client_nonce
                      + server_nonce)
    return (sha256(material + b"c2s"), sha256(material + b"s2c"))


def client_wrapper(credentials: Optional[Credentials] = None,
                   trust: Optional[Credentials] = None,
                   expected_server: Optional[str] = None,
                   encryption: bool = True,
                   costs: CostModel = DEFAULT_COSTS):
    """Channel wrapper performing the client side of the handshake.

    ``credentials`` (optional) are offered when the server demands
    two-way authentication; ``trust`` supplies the root certificates
    when the client itself has no credentials (browsers).  Returns a
    function usable as ``channel_wrapper`` in the RPC layer.
    """
    verifier = credentials or trust
    if verifier is None:
        raise HandshakeError("client needs trust roots to verify servers")

    def wrap(conn: Connection) -> Generator[Any, Any, SecureChannel]:
        sim = conn.sim
        rng = conn.local.network.rng
        client_nonce = bytes(rng.getrandbits(8) for _ in range(16))
        conn.send({"type": "hello", "nonce": client_nonce,
                   "encryption": encryption}, size=48)
        try:
            server_hello = yield conn.recv()
        except ConnectionClosed:
            raise HandshakeError("server closed during handshake")
        if server_hello.get("type") == "alert":
            raise HandshakeError(server_hello.get("reason", "alert"))
        server_cert = Certificate.from_wire(server_hello["cert"])
        yield sim.timeout(costs.rsa_public_op)  # verify the certificate
        if not verifier.trusts(server_cert):
            conn.close()
            raise HandshakeError("untrusted server certificate %r"
                                 % server_cert.subject)
        if expected_server is not None \
                and server_cert.subject != expected_server:
            conn.close()
            raise HandshakeError(
                "server identity mismatch: expected %r, got %r"
                % (expected_server, server_cert.subject))
        server_nonce = server_hello["nonce"]
        negotiated_encryption = bool(server_hello.get("encryption",
                                                      encryption))
        premaster = rng.getrandbits(256)
        yield sim.timeout(costs.rsa_public_op)  # RSA-encrypt premaster
        encrypted = server_cert.public_key.encrypt_int(premaster)
        exchange = {"type": "key-exchange", "premaster": encrypted}
        size = 96
        client_auth = server_hello.get("client_auth", "none")
        if client_auth == "required" and credentials is None:
            conn.close()
            raise HandshakeError("server demands a client certificate")
        if client_auth in ("required", "optional") and credentials is not None:
            transcript = sha256(client_nonce + server_nonce)
            yield sim.timeout(costs.rsa_private_op)  # sign the transcript
            exchange["cert"] = credentials.certificate.to_wire()
            exchange["signature"] = credentials.keypair.sign(transcript)
            size += credentials.certificate.wire_size()
        conn.send(exchange, size=size)
        send_key, recv_key = _derive_keys(premaster, client_nonce,
                                          server_nonce)
        try:
            finished = yield conn.recv()
        except ConnectionClosed:
            raise HandshakeError("server rejected the handshake")
        if finished.get("type") == "alert":
            raise HandshakeError(finished.get("reason", "alert"))
        expected = hmac_sha256(recv_key, client_nonce + server_nonce)
        if finished.get("type") != "finished" \
                or finished.get("mac") != expected:
            conn.close()
            raise HandshakeError("bad finished MAC from server")
        return SecureChannel(conn, send_key, recv_key, server_cert,
                             negotiated_encryption, costs)

    return wrap


def server_factory(credentials: Credentials,
                   require_client_cert: bool = False,
                   client_auth: Optional[str] = None,
                   encryption: bool = True,
                   costs: CostModel = DEFAULT_COSTS):
    """Channel factory performing the server side of the handshake.

    ``client_auth`` selects the authentication mode toward callers:

    * ``"none"``     — clients stay anonymous (browsers, Fig 4 arrow 1);
    * ``"optional"`` — GDN hosts present certificates and get verified
      principals, user machines connect anonymously (object servers
      serving both peers and proxies, arrows 2/3);
    * ``"required"`` — two-way authentication only (moderator-facing
      services, arrow 3).

    ``require_client_cert=True`` is shorthand for ``"required"``.
    Returns a function usable as ``channel_factory`` in the RPC layer.
    """
    if client_auth is None:
        client_auth = "required" if require_client_cert else "none"
    if client_auth not in ("none", "optional", "required"):
        raise HandshakeError("bad client_auth mode %r" % client_auth)

    def wrap(conn: Connection) -> Generator[Any, Any, SecureChannel]:
        sim = conn.sim
        rng = conn.local.network.rng
        try:
            hello = yield conn.recv()
        except ConnectionClosed:
            raise HandshakeError("client closed during handshake")
        if hello.get("type") != "hello":
            conn.send({"type": "alert", "reason": "bad hello"}, size=32)
            conn.close()
            raise HandshakeError("malformed client hello")
        client_nonce = hello["nonce"]
        negotiated_encryption = encryption and bool(
            hello.get("encryption", True))
        server_nonce = bytes(rng.getrandbits(8) for _ in range(16))
        conn.send({"type": "server-hello", "nonce": server_nonce,
                   "cert": credentials.certificate.to_wire(),
                   "client_auth": client_auth,
                   "encryption": negotiated_encryption},
                  size=64 + credentials.certificate.wire_size())
        try:
            exchange = yield conn.recv()
        except ConnectionClosed:
            raise HandshakeError("client abandoned the handshake")
        if exchange.get("type") != "key-exchange":
            conn.close()
            raise HandshakeError("malformed key exchange")
        yield sim.timeout(costs.rsa_private_op)  # RSA-decrypt premaster
        premaster = credentials.keypair.decrypt_int(exchange["premaster"])
        client_cert: Optional[Certificate] = None
        wire = exchange.get("cert")
        if wire is None and client_auth == "required":
            conn.send({"type": "alert",
                       "reason": "client certificate required"}, size=32)
            conn.close()
            raise HandshakeError("client presented no certificate")
        if wire is not None and client_auth != "none":
            client_cert = Certificate.from_wire(wire)
            transcript = sha256(client_nonce + server_nonce)
            yield sim.timeout(2 * costs.rsa_public_op)  # cert + signature
            if not credentials.trusts(client_cert) \
                    or not client_cert.public_key.verify(
                        transcript, exchange.get("signature", 0)):
                conn.send({"type": "alert",
                           "reason": "client authentication failed"},
                          size=32)
                conn.close()
                raise HandshakeError("client authentication failed")
        recv_key, send_key = _derive_keys(premaster, client_nonce,
                                          server_nonce)
        conn.send({"type": "finished",
                   "mac": hmac_sha256(send_key, client_nonce + server_nonce)},
                  size=48)
        return SecureChannel(conn, send_key, recv_key, client_cert,
                             negotiated_encryption, costs)

    return wrap
