"""Cryptographic primitives for the GDN security layer (paper §6).

Real mathematics, simulation-grade parameters: RSA with Miller–Rabin
prime generation (default 512-bit moduli — fast to generate in pure
Python and obviously not secure against 2026 adversaries, but the
protocol logic is exactly the real thing), SHA-256 digests, and HMAC.

All key generation is driven by explicit ``random.Random`` instances so
worlds remain deterministic.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import random
from typing import Optional, Tuple

__all__ = ["RsaKeyPair", "PublicKey", "sha256", "hmac_sha256",
           "generate_prime", "CryptoError"]


class CryptoError(Exception):
    """Raised for cryptographic failures (bad signatures, sizes)."""


def sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    return _hmac.new(key, data, hashlib.sha256).digest()


# -- prime generation ----------------------------------------------------------

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 24) -> bool:
    """Miller–Rabin probabilistic primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random prime of exactly ``bits`` bits."""
    if bits < 8:
        raise CryptoError("prime too small to be useful")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


# -- RSA -------------------------------------------------------------------------


def _egcd(a: int, b: int) -> Tuple[int, int, int]:
    if a == 0:
        return b, 0, 1
    g, y, x = _egcd(b % a, a)
    return g, x - (b // a) * y, y


def _modinv(a: int, m: int) -> int:
    g, x, _y = _egcd(a % m, m)
    if g != 1:
        raise CryptoError("no modular inverse")
    return x % m


class PublicKey:
    """An RSA public key (n, e)."""

    __slots__ = ("n", "e")

    def __init__(self, n: int, e: int):
        self.n = n
        self.e = e

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def to_wire(self) -> dict:
        return {"n": self.n, "e": self.e}

    @classmethod
    def from_wire(cls, wire: dict) -> "PublicKey":
        return cls(int(wire["n"]), int(wire["e"]))

    def verify(self, data: bytes, signature: int) -> bool:
        """Check an RSASSA-style signature over sha256(data)."""
        digest = int.from_bytes(sha256(data), "big") % self.n
        return pow(signature, self.e, self.n) == digest

    def encrypt_int(self, message: int) -> int:
        """Raw RSA encryption of a small integer (key transport)."""
        if not 0 <= message < self.n:
            raise CryptoError("message out of range for this key")
        return pow(message, self.e, self.n)

    def fingerprint(self) -> str:
        return sha256(("%d:%d" % (self.n, self.e)).encode()).hex()[:16]

    def __eq__(self, other) -> bool:
        return (isinstance(other, PublicKey)
                and (self.n, self.e) == (other.n, other.e))

    def __hash__(self) -> int:
        return hash((self.n, self.e))


class RsaKeyPair:
    """An RSA key pair with textbook sign/decrypt operations."""

    def __init__(self, n: int, e: int, d: int):
        self.public = PublicKey(n, e)
        self._d = d

    @classmethod
    def generate(cls, rng: random.Random, bits: int = 512) -> "RsaKeyPair":
        """Generate a fresh key pair (deterministic per ``rng``)."""
        e = 65537
        while True:
            p = generate_prime(bits // 2, rng)
            q = generate_prime(bits // 2, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if phi % e == 0:
                continue
            d = _modinv(e, phi)
            return cls(n, e, d)

    def sign(self, data: bytes) -> int:
        """RSASSA-style signature over sha256(data)."""
        digest = int.from_bytes(sha256(data), "big") % self.public.n
        return pow(digest, self._d, self.public.n)

    def decrypt_int(self, ciphertext: int) -> int:
        """Raw RSA decryption (key transport)."""
        return pow(ciphertext, self._d, self.public.n)
