"""GDN principals, roles and authorization policy (paper §2, §6.1).

The user community: *users* retrieve packages, *moderators* create,
update and remove them, *administrators* control the GDN and hand out
moderator privileges; a future *maintainer* role manages a single
package's contents.  GDN hosts themselves form a further implicit
principal class (object servers accept state updates from each other).

Roles are carried as certificate attributes (``gdn-role``), so an
authenticated channel's peer principal maps to a role set without any
central lookup; the registry below is the CA-side bookkeeping plus the
authorizer callbacks the GOS and Naming Authority plug in.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set

from ..sim.rpc import RpcContext
from .certs import Certificate

__all__ = ["Role", "PrincipalRegistry", "GdnPolicy", "role_attribute",
           "roles_from_certificate"]

_ROLE_ATTRIBUTE = "gdn-role"


class Role(str, enum.Enum):
    """The GDN user-community roles (§2)."""

    USER = "user"
    MAINTAINER = "maintainer"
    MODERATOR = "moderator"
    ADMIN = "admin"
    #: Machines on the trusted GDN host set (§6.2).
    GDN_HOST = "gdn-host"


def role_attribute(*roles: Role) -> Dict[str, str]:
    """Certificate attributes encoding a role set."""
    return {_ROLE_ATTRIBUTE: ",".join(role.value for role in roles)}


def roles_from_certificate(certificate: Certificate) -> Set[Role]:
    raw = certificate.attributes.get(_ROLE_ATTRIBUTE, "")
    roles = set()
    for part in raw.split(","):
        part = part.strip()
        if part:
            try:
                roles.add(Role(part))
            except ValueError:
                continue  # unknown roles are ignored, not trusted
    return roles


class PrincipalRegistry:
    """Principal name -> role set (the administrators' ledger).

    Also tracks *per-package* maintainer grants (§2's future fourth
    group: "A GDN maintainer is allowed to manage just the contents of
    a package"): a maintainer principal is bound to the OIDs of the
    packages they maintain.
    """

    def __init__(self):
        self._roles: Dict[str, Set[Role]] = {}
        self._maintained: Dict[str, Set[str]] = {}

    def grant(self, principal: str, *roles: Role) -> None:
        self._roles.setdefault(principal, set()).update(roles)

    def revoke(self, principal: str, role: Role) -> None:
        self._roles.get(principal, set()).discard(role)

    def roles_of(self, principal: Optional[str]) -> Set[Role]:
        if principal is None:
            return set()
        return set(self._roles.get(principal, set()))

    def has_role(self, principal: Optional[str], *roles: Role) -> bool:
        held = self.roles_of(principal)
        return any(role in held for role in roles)

    # -- per-package maintainer grants (§2) ------------------------------

    def grant_package(self, principal: str, oid_hex: str) -> None:
        """Make ``principal`` a maintainer of the package ``oid_hex``."""
        self.grant(principal, Role.MAINTAINER)
        self._maintained.setdefault(principal, set()).add(oid_hex)

    def revoke_package(self, principal: str, oid_hex: str) -> None:
        self._maintained.get(principal, set()).discard(oid_hex)

    def maintains(self, principal: Optional[str], oid_hex: str) -> bool:
        if principal is None:
            return False
        return oid_hex in self._maintained.get(principal, set())


class GdnPolicy:
    """The concrete authorization rules of §6.1.

    * Object-server control commands (create/remove replicas): only
      moderators and administrators.
    * State-modifying invocations and state-update messages: moderator
      tools, other GDN hosts (e.g. a master pushing to slaves), or —
      for the one package they maintain — maintainers (§2).
    * GDN Zone updates via the Naming Authority: moderators and
      administrators.
    """

    def __init__(self, registry: PrincipalRegistry):
        self.registry = registry

    def gos_authorizer(self, ctx: RpcContext, operation: str,
                       oid_hex: Optional[str] = None) -> bool:
        principal = ctx.peer_principal
        if operation == "control":
            return self.registry.has_role(principal, Role.MODERATOR,
                                          Role.ADMIN)
        if operation == "modify":
            if self.registry.has_role(principal, Role.MODERATOR,
                                      Role.ADMIN, Role.GDN_HOST):
                return True
            return (oid_hex is not None
                    and self.registry.maintains(principal, oid_hex))
        return False

    def authority_authorizer(self, ctx: RpcContext) -> bool:
        return self.registry.has_role(ctx.peer_principal, Role.MODERATOR,
                                      Role.ADMIN)
