"""GDN security: crypto, certificates, TLS channels, roles (§6)."""

from .acl import (GdnPolicy, PrincipalRegistry, Role, role_attribute,
                  roles_from_certificate)
from .certs import (Certificate, CertificateAuthority, CertificateError,
                    Credentials)
from .crypto import (CryptoError, PublicKey, RsaKeyPair, generate_prime,
                     hmac_sha256, sha256)
from .tls import (CostModel, HandshakeError, SecureChannel, SecurityError,
                  client_wrapper, server_factory)

__all__ = [
    "GdnPolicy", "PrincipalRegistry", "Role", "role_attribute",
    "roles_from_certificate",
    "Certificate", "CertificateAuthority", "CertificateError", "Credentials",
    "CryptoError", "PublicKey", "RsaKeyPair", "generate_prime",
    "hmac_sha256", "sha256",
    "CostModel", "HandshakeError", "SecureChannel", "SecurityError",
    "client_wrapper", "server_factory",
]
