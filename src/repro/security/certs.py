"""Certificates and certificate authorities (paper §6.3).

TLS authentication rests on certificates: each GDN host and each
moderator tool holds a certificate binding its principal name (and GDN
attributes, e.g. its roles) to a public key, signed by the GDN's
certificate authority.  Verifiers trust a set of root CAs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from .crypto import CryptoError, PublicKey, RsaKeyPair, sha256

__all__ = ["Certificate", "CertificateAuthority", "Credentials",
           "CertificateError"]


class CertificateError(Exception):
    """Raised when certificate validation fails."""


class Certificate:
    """A signed binding of subject -> public key (+ attributes)."""

    def __init__(self, subject: str, public_key: PublicKey, issuer: str,
                 attributes: Optional[Dict[str, str]] = None,
                 signature: int = 0):
        self.subject = subject
        self.public_key = public_key
        self.issuer = issuer
        self.attributes = dict(attributes or {})
        self.signature = signature

    def signable(self) -> bytes:
        fields = "|".join([
            self.subject, self.issuer,
            "%d:%d" % (self.public_key.n, self.public_key.e),
            ",".join("%s=%s" % (key, self.attributes[key])
                     for key in sorted(self.attributes)),
        ])
        return sha256(fields.encode("utf-8"))

    def to_wire(self) -> dict:
        return {
            "subject": self.subject,
            "issuer": self.issuer,
            "key": self.public_key.to_wire(),
            "attributes": dict(self.attributes),
            "signature": self.signature,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Certificate":
        try:
            return cls(wire["subject"], PublicKey.from_wire(wire["key"]),
                       wire["issuer"], wire.get("attributes"),
                       wire.get("signature", 0))
        except KeyError as exc:
            raise CertificateError("bad certificate: missing %s"
                                   % exc) from exc

    def wire_size(self) -> int:
        """Approximate DER size; charged when certs cross the wire."""
        return 700 + sum(len(k) + len(v) for k, v in self.attributes.items())

    def __repr__(self) -> str:
        return "Certificate(%s by %s)" % (self.subject, self.issuer)


class CertificateAuthority:
    """Issues certificates; its self-signed root anchors trust."""

    def __init__(self, name: str, rng: random.Random, bits: int = 512):
        self.name = name
        self.keypair = RsaKeyPair.generate(rng, bits=bits)
        self.root_certificate = Certificate(
            name, self.keypair.public, name, {"ca": "true"})
        self.root_certificate.signature = self.keypair.sign(
            self.root_certificate.signable())
        self.issued: List[str] = []

    def issue(self, subject: str, public_key: PublicKey,
              attributes: Optional[Dict[str, str]] = None) -> Certificate:
        certificate = Certificate(subject, public_key, self.name, attributes)
        certificate.signature = self.keypair.sign(certificate.signable())
        self.issued.append(subject)
        return certificate

    def verify(self, certificate: Certificate) -> bool:
        """Check that this CA signed the certificate."""
        if certificate.issuer != self.name:
            return False
        return self.keypair.public.verify(certificate.signable(),
                                          certificate.signature)


def verify_against_roots(certificate: Certificate,
                         roots: List[Certificate]) -> bool:
    """Validate a certificate against trusted root certificates."""
    for root in roots:
        if certificate.issuer == root.subject and root.public_key.verify(
                certificate.signable(), certificate.signature):
            return True
    return False


class Credentials:
    """What one party brings to a TLS handshake."""

    def __init__(self, keypair: RsaKeyPair, certificate: Certificate,
                 trust_roots: List[Certificate]):
        self.keypair = keypair
        self.certificate = certificate
        self.trust_roots = list(trust_roots)

    @classmethod
    def issue_for(cls, subject: str, ca: CertificateAuthority,
                  rng: random.Random,
                  attributes: Optional[Dict[str, str]] = None,
                  bits: int = 512) -> "Credentials":
        """Generate a key pair and have ``ca`` certify it."""
        keypair = RsaKeyPair.generate(rng, bits=bits)
        certificate = ca.issue(subject, keypair.public, attributes)
        return cls(keypair, certificate, [ca.root_certificate])

    def trusts(self, certificate: Certificate) -> bool:
        return verify_against_roots(certificate, self.trust_roots)
