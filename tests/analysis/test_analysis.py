"""Unit tests for metrics and table rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.metrics import Series, TrafficDelta, percentile
from repro.analysis.tables import Table, format_bytes, format_seconds
from repro.sim.network import TrafficMeter
from repro.sim.topology import Level


def test_percentile_basics():
    data = [1, 2, 3, 4, 5]
    assert percentile(data, 0) == 1
    assert percentile(data, 50) == 3
    assert percentile(data, 100) == 5
    assert percentile(data, 25) == 2.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 200)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=50),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_bounds_property(data, p):
    value = percentile(data, p)
    assert min(data) <= value <= max(data)


def test_series_summary():
    series = Series("latency")
    series.extend([0.1, 0.2, 0.3, 0.4])
    summary = series.summary()
    assert summary["count"] == 4
    assert summary["mean"] == pytest.approx(0.25)
    assert summary["max"] == 0.4
    assert series.total == pytest.approx(1.0)


def test_series_empty_rejected():
    with pytest.raises(ValueError):
        Series("empty").mean


def test_traffic_delta_windows():
    meter = TrafficMeter()
    meter.record(Level.WORLD, 100)
    delta = TrafficDelta(meter)
    meter.record(Level.WORLD, 50)
    meter.record(Level.SITE, 10)
    assert delta.total_bytes() == 60
    assert delta.wide_area_bytes() == 50
    assert delta.messages() == 2
    delta.restart()
    assert delta.total_bytes() == 0


def test_format_helpers():
    assert format_bytes(512) == "512 B"
    assert format_bytes(2048) == "2.0 KiB"
    assert format_bytes(5 * 1024 * 1024) == "5.0 MiB"
    assert format_seconds(0.0000005) == "0 µs"
    assert format_seconds(0.002) == "2.0 ms"
    assert format_seconds(1.5) == "1.50 s"


def test_table_rendering():
    table = Table(["strategy", "wan"], title="E5")
    table.add_row("NoRepl", "10 MiB")
    table.add_row("Adaptive", "2 MiB")
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "E5"
    assert "strategy" in lines[1]
    assert lines[2].startswith("--------")
    assert "Adaptive" in text


def test_table_cell_count_checked():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")
