"""Tests for the telemetry registry: instruments, histogram accuracy,
merge/delta algebra, and phase windows."""

import math
import random

import pytest

from repro.analysis.metrics import percentile
from repro.analysis.telemetry import (Counter, Gauge, Histogram,
                                      MetricsRegistry, TelemetryError)


# -- counters and gauges -----------------------------------------------------

def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = registry.gauge("g")
    gauge.set(7)
    assert gauge.value == 7
    # Get-or-create returns the same instrument.
    assert registry.counter("c") is counter
    assert "c" in registry and "missing" not in registry


def test_function_backed_instruments_read_the_source():
    state = {"events": 0}
    registry = MetricsRegistry()
    counter = registry.counter("kernel.events", fn=lambda: state["events"])
    gauge = registry.gauge("kernel.depth", fn=lambda: state["events"] * 2)
    state["events"] = 21
    assert counter.value == 21
    assert gauge.value == 42
    with pytest.raises(TelemetryError):
        counter.inc()
    with pytest.raises(TelemetryError):
        gauge.set(1)


def test_registry_rejects_kind_and_binding_conflicts():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TelemetryError):
        registry.gauge("x")
    with pytest.raises(TelemetryError):
        registry.counter("x", fn=lambda: 1)  # silent re-bind refused
    with pytest.raises(TelemetryError):
        registry.get("nope")


def test_unique_prefix_hands_out_distinct_scopes():
    registry = MetricsRegistry()
    assert registry.unique_prefix("load") == "load"
    assert registry.unique_prefix("load") == "load#2"
    assert registry.unique_prefix("load") == "load#3"
    assert registry.unique_prefix("other") == "other"


# -- histogram ---------------------------------------------------------------

def test_histogram_quantiles_match_sorted_percentiles_within_5pct():
    """Acceptance: bounded-error quantiles vs exact sorted-sample
    percentiles on 10^4 samples (heavy-tailed, like latencies)."""
    rng = random.Random(1234)
    samples = [rng.lognormvariate(0.0, 1.5) for _ in range(10_000)]
    hist = Histogram("lat")
    hist.extend(samples)
    assert hist.count == len(samples)
    assert hist.mean == pytest.approx(sum(samples) / len(samples))
    for q in (1, 10, 25, 50, 75, 90, 95, 99, 99.9):
        exact = percentile(samples, q)
        approx = hist.p(q)
        assert abs(approx - exact) <= 0.05 * exact, \
            "p%s: %g vs exact %g" % (q, approx, exact)
    assert hist.p(0) == pytest.approx(min(samples))
    assert hist.p(100) == pytest.approx(max(samples))


def test_histogram_memory_is_bounded_by_buckets_not_samples():
    hist = Histogram("lat", max_error=0.01)
    rng = random.Random(7)
    for _ in range(50_000):
        hist.record(rng.uniform(1e-4, 10.0))
    # ~5 decades of range at 1% accuracy: hundreds of buckets, not 50k.
    assert len(hist._buckets) < 1200
    assert hist.count == 50_000


def test_histogram_empty_is_all_zeros_not_errors():
    hist = Histogram("empty")
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.p(95) == 0.0
    assert hist.summary() == {"count": 0, "mean": 0.0, "p50": 0.0,
                              "p95": 0.0, "max": 0.0}
    with pytest.raises(ValueError):
        hist.p(101)


def test_histogram_zero_and_negative_values():
    hist = Histogram("h")
    hist.extend([0.0, 0.0, 0.0, 5.0])
    assert hist.count == 4
    assert hist.p(50) == 0.0
    assert hist.p(100) == pytest.approx(5.0)
    assert hist.minimum == 0.0


def test_histogram_merge_equals_recording_everything():
    rng = random.Random(3)
    first = [rng.expovariate(1.0) for _ in range(500)]
    second = [rng.expovariate(5.0) for _ in range(800)]
    a = Histogram("a")
    a.extend(first)
    b = Histogram("b")
    b.extend(second)
    combined = Histogram("c")
    combined.extend(first + second)
    a.merge(b)
    # Counts, extremes and buckets match exactly; the sum only to
    # float addition order (merge adds partial sums).
    assert a.count == combined.count
    assert a.minimum == combined.minimum
    assert a.maximum == combined.maximum
    assert a._buckets == combined._buckets
    assert a.sum == pytest.approx(combined.sum)
    assert a.p(50) == combined.p(50)
    with pytest.raises(TelemetryError):
        a.merge(Histogram("other", max_error=0.05))


def test_histogram_state_is_a_determinism_fingerprint():
    values = [0.1, 0.2, 0.30000001, 4.0]
    a = Histogram("a")
    a.extend(values)
    b = Histogram("b")
    b.extend(values)
    assert a.state() == b.state()
    b.record(0.2)
    assert a.state() != b.state()


# -- phase windows -----------------------------------------------------------

def test_window_deltas_for_each_instrument_kind():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    gauge = registry.gauge("g")
    hist = registry.histogram("h")
    counter.inc(10)
    gauge.set(1)
    hist.record(1.0)

    window = registry.window("during", now=2.0)
    counter.inc(5)
    gauge.set(9)
    hist.record(3.0)
    hist.record(4.0)
    window.close(now=6.0)

    assert window.duration == pytest.approx(4.0)
    assert window.delta("c") == 5          # counters: end - start
    assert window.delta("g") == 9          # gauges: reading at close
    inside = window.delta("h")             # histograms: recorded inside
    assert inside.count == 2
    assert inside.sum == pytest.approx(7.0)
    assert inside.p(100) == pytest.approx(4.0, rel=0.02)
    # The pre-window sample is excluded.
    assert inside.p(0) >= 2.0


def test_window_handles_instruments_created_mid_window():
    registry = MetricsRegistry()
    window = registry.window("w")
    late = registry.counter("late")
    late.inc(3)
    window.close()
    assert window.delta("late") == 3


def test_phase_chain_tiles_the_run_and_sums_to_totals():
    registry = MetricsRegistry()
    counter = registry.counter("reqs")
    hist = registry.histogram("lat")

    registry.phase("warmup", now=0.0)
    counter.inc(3)
    hist.extend([1.0, 2.0])
    registry.phase("fault", now=10.0)
    counter.inc(7)
    hist.extend([5.0, 6.0, 7.0])
    registry.phase("recovery", now=20.0)
    counter.inc(2)
    hist.record(1.5)
    registry.end_phase(now=30.0)

    assert [w.label for w in registry.phases] \
        == ["warmup", "fault", "recovery"]
    assert all(w.closed for w in registry.phases)
    counts = [w.delta("reqs") for w in registry.phases]
    assert counts == [3, 7, 2]
    assert sum(counts) == counter.value
    latencies = [w.delta("lat") for w in registry.phases]
    assert [d.count for d in latencies] == [2, 3, 1]
    assert sum(d.count for d in latencies) == hist.count
    assert sum(d.sum for d in latencies) == pytest.approx(hist.sum)
    assert [w.duration for w in registry.phases] == [10.0, 10.0, 10.0]
    # The merged phase histograms reconstruct the run histogram.
    merged = latencies[0].merge(latencies[1]).merge(latencies[2])
    assert merged.count == hist.count
    assert merged.p(50) == pytest.approx(hist.p(50))


def test_window_summary_renders_all_instruments():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.histogram("h").record(1.0)
    window = registry.window("w", now=0.0)
    registry.get("c").inc(3)
    window.close(now=1.0)
    summary = window.summary()
    assert summary["c"] == 3
    assert summary["h"]["count"] == 0


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g").set(4)
    registry.histogram("h").extend([1.0, 2.0])
    snap = registry.snapshot()
    assert snap["c"] == 2 and snap["g"] == 4
    assert snap["h"]["count"] == 2
    assert snap["h"]["mean"] == pytest.approx(1.5)
