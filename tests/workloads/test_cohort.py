"""Tests for aggregated client cohorts (CohortScenario et al.).

The load-bearing claims, in order: (1) equivalence mode is
byte-identical to ``ClosedLoopScenario`` — same LoadStats, same
latency-histogram state, same elapsed time — at small k, including
over a real networked request path using ``deliver_burst``; (2) the
statistical mode's throughput matches the closed-form expectation and
honours quota/duration bounds; (3) the diurnal profile actually
modulates the issue rate.
"""

import random

import pytest

from repro.sim.network import LinkParameters
from repro.sim.topology import Topology
from repro.sim.world import World
from repro.workloads.cohort import (AggregatedPopulation, CohortScenario,
                                    DiurnalProfile)
from repro.workloads.loadgen import LoadStats
from repro.workloads.scenario import ClosedLoopScenario, RequestMix


def drive(scenario, *, seed=7, rng_seed=1234, limit=1e9, networked=False):
    """Run one scenario in a fresh world; return a comparison
    fingerprint (stats summary, histogram state, elapsed)."""
    world = World(topology=Topology.balanced(2, 2, 2, 2), seed=seed)
    sim = world.sim

    if networked:
        # A real request path so event interleaving matters: each
        # request downloads 4 fragments the server sends as one
        # same-pair burst (deliver_burst under the hood).
        server_site = world.topology.site("r1/c1/m1/s1")
        server = world.host("server", server_site)
        server_sock = server.udp_socket(80)
        hosts = {}
        for site in world.topology.sites:
            hosts[site.path] = world.host("client@" + site.path, site)

        def serve():
            while True:
                datagram = yield server_sock.recv()
                reply_port, fragments = datagram.payload
                server_sock.send_burst(
                    datagram.src_host, reply_port,
                    [(("frag", i), 2048) for i in range(fragments)])
        server.spawn(serve())

        def do_one(arrival):
            host = hosts[arrival.site.path]
            sock = host.udp_socket()
            sock.send_to(server, 80, (sock.port, 4), size=64)
            got = 0
            while got < 4:
                yield sock.recv()
                got += 1
            sock.close()
            return True
    else:
        def do_one(arrival):
            yield sim.timeout(0.01 + 0.001 * (arrival.rank % 5))
            return True

    stats = LoadStats()
    elapsed = world.run_until(
        sim.process(scenario.drive(sim, do_one,
                                   rng=random.Random(rng_seed),
                                   stats=stats)),
        limit=limit)
    return (stats.summary(), stats.latency.state(), elapsed), stats, world


def sites_of(world):
    return world.topology.sites


MIX = dict(object_count=8, alpha=1.0, write_fraction=0.25)


# -- equivalence mode: byte-identical to ClosedLoopScenario ------------------


def test_equivalence_pin_quota_mode():
    reference = ClosedLoopScenario(9, 0.5, requests_per_client=4,
                                   mix=RequestMix(**MIX))
    cohort = CohortScenario(9, 0.5, requests_per_client=4,
                            mix=RequestMix(**MIX), cohort_size=4,
                            equivalence=True)
    assert drive(reference)[0] == drive(cohort)[0]


def test_equivalence_pin_duration_mode():
    reference = ClosedLoopScenario(7, 0.3, duration=5.0,
                                   mix=RequestMix(**MIX))
    cohort = CohortScenario(7, 0.3, duration=5.0, mix=RequestMix(**MIX),
                            cohort_size=3, equivalence=True)
    assert drive(reference)[0] == drive(cohort)[0]


def test_equivalence_pin_networked_with_burst_delivery():
    """The headline pin: aggregated cohorts + batched same-pair
    delivery vs per-client generators + (still batched) delivery,
    over a real UDP fragment-download path.  Event interleaving, RNG
    draw order and network metering all have to line up for this to
    hold byte-identical."""
    world_args = dict(networked=True)
    reference = ClosedLoopScenario(8, 0.4, requests_per_client=3,
                                   mix=RequestMix(**MIX),
                                   sites=Topology.balanced(2, 2, 2, 2).sites)
    # Sites must belong to the driven world; build per drive instead.

    def scenario_factory(equivalent):
        def build(world):
            sites = world.topology.sites
            if equivalent:
                return CohortScenario(8, 0.4, requests_per_client=3,
                                      mix=RequestMix(**MIX), sites=sites,
                                      cohort_size=2, equivalence=True)
            return ClosedLoopScenario(8, 0.4, requests_per_client=3,
                                      mix=RequestMix(**MIX), sites=sites)
        return build

    def run(factory):
        world = World(topology=Topology.balanced(2, 2, 2, 2), seed=7)
        sim = world.sim
        scenario = factory(world)
        server_site = world.topology.site("r1/c1/m1/s1")
        server = world.host("server", server_site)
        server_sock = server.udp_socket(80)
        hosts = {site.path: world.host("c@" + site.path, site)
                 for site in world.topology.sites}

        def serve():
            while True:
                datagram = yield server_sock.recv()
                reply_port, fragments = datagram.payload
                server_sock.send_burst(
                    datagram.src_host, reply_port,
                    [(("frag", i), 2048) for i in range(fragments)])
        server.spawn(serve())

        def do_one(arrival):
            host = hosts[arrival.site.path]
            sock = host.udp_socket()
            sock.send_to(server, 80, (sock.port, 4), size=64)
            for _ in range(4):
                yield sock.recv()
            sock.close()
            return True

        stats = LoadStats()
        elapsed = world.run_until(
            sim.process(scenario.drive(sim, do_one,
                                       rng=random.Random(99),
                                       stats=stats)), limit=1e9)
        return (stats.summary(), stats.latency.state(), elapsed,
                world.network.meter.snapshot())

    assert run(scenario_factory(True)) == run(scenario_factory(False))


def test_equivalence_single_client_cohort():
    reference = ClosedLoopScenario(1, 0.2, requests_per_client=5)
    cohort = CohortScenario(1, 0.2, requests_per_client=5,
                            cohort_size=1, equivalence=True)
    assert drive(reference)[0] == drive(cohort)[0]


# -- statistical mode ---------------------------------------------------------


def test_statistical_quota_is_exact():
    scenario = CohortScenario(500, 0.05, requests_per_client=2,
                              cohort_size=64)
    fingerprint, stats, _world = drive(scenario)
    assert stats.issued == 1000
    assert stats.ok == 1000


def test_statistical_throughput_matches_expectation():
    # 2000 clients, mean think 10s, duration 50s ⇒ ~10k issues; the
    # request itself is fast (~10ms) so thinkers dominate.
    scenario = CohortScenario(2000, 10.0, duration=50.0, cohort_size=256)
    _fingerprint, stats, _world = drive(scenario)
    expected = 2000 * 50.0 / 10.0
    assert stats.issued == pytest.approx(expected, rel=0.1)
    assert stats.in_flight == 0


def test_statistical_duration_stops_issuing_at_deadline():
    scenario = CohortScenario(300, 1.0, duration=10.0, cohort_size=50)
    fingerprint, stats, world = drive(scenario)
    # Everything drained, and the drive did not run far past the
    # deadline (only in-flight requests at the deadline may finish).
    assert stats.in_flight == 0
    assert fingerprint[2] >= 10.0
    assert fingerprint[2] < 11.0


def test_statistical_zero_think_quota():
    scenario = CohortScenario(20, 0.0, requests_per_client=10,
                              cohort_size=8)
    _fingerprint, stats, _world = drive(scenario)
    assert stats.issued == 200
    assert stats.ok == 200


def test_statistical_fixed_think_issues_in_lockstep_bursts():
    issue_times = []
    world = World(topology=Topology.balanced(1, 1, 1, 1), seed=2)
    sim = world.sim

    def do_one(arrival):
        issue_times.append(sim.now)
        yield sim.timeout(0.001)
        return True

    stats = LoadStats()
    cohort = AggregatedPopulation(
        sim, do_one, random.Random(4), None, clients=50, think_time=5.0,
        stats=stats, think="fixed", requests_per_client=2)
    world.run_until(sim.process(cohort.run()), limit=1e9)
    assert stats.issued == 100
    # First wave: all 50 clients wake at exactly t=5.0.
    assert issue_times[:50] == [5.0] * 50
    # Second wave: 5s after the first completions.
    assert issue_times[50:] == [pytest.approx(10.001)] * 50


def test_statistical_many_cohorts_share_one_arrival_counter():
    scenario = CohortScenario(100, 0.01, requests_per_client=1,
                              cohort_size=10)
    world = World(topology=Topology.balanced(2, 2, 2, 2), seed=1)
    sim = world.sim
    indices = []

    def do_one(arrival):
        indices.append(arrival.index)
        yield sim.timeout(0.001)
        return True

    stats = LoadStats()
    world.run_until(sim.process(
        scenario.drive(sim, do_one, rng=random.Random(0), stats=stats)),
        limit=1e9)
    assert sorted(indices) == list(range(100))


def test_statistical_sites_round_robin_headcount():
    world = World(topology=Topology.balanced(2, 1, 1, 2), seed=1)
    sim = world.sim
    sites = world.topology.sites  # 4 sites
    seen = {}

    def do_one(arrival):
        seen[arrival.site.path] = seen.get(arrival.site.path, 0) + 1
        yield sim.timeout(0.001)
        return True

    scenario = CohortScenario(10, 0.0, requests_per_client=1,
                              sites=sites, cohort_size=2)
    stats = LoadStats()
    world.run_until(sim.process(
        scenario.drive(sim, do_one, rng=random.Random(0), stats=stats)),
        limit=1e9)
    # 10 clients round-robin over 4 sites: 3, 3, 2, 2 — one request
    # each.
    assert sorted(seen.values(), reverse=True) == [3, 3, 2, 2]
    assert stats.issued == 10


# -- diurnal profile ----------------------------------------------------------


def test_profile_validation():
    with pytest.raises(ValueError):
        DiurnalProfile([])
    with pytest.raises(ValueError):
        DiurnalProfile([0.0, 0.0])
    with pytest.raises(ValueError):
        DiurnalProfile([1.0], period=0.0)
    with pytest.raises(ValueError):
        DiurnalProfile([-0.5, 1.0])


def test_profile_slots_and_boundaries():
    profile = DiurnalProfile([0.0, 1.0, 0.5, 0.25], period=40.0)
    assert profile.slot_width == 10.0
    assert profile.multiplier_at(0.0) == 0.0
    assert profile.multiplier_at(15.0) == 1.0
    assert profile.multiplier_at(45.0) == 0.0  # wraps into slot 0
    assert profile.next_boundary(0.0) == 10.0
    assert profile.next_boundary(10.0) == 20.0
    assert profile.next_boundary(39.9) == pytest.approx(40.0)


def test_profile_sinusoidal_shape():
    profile = DiurnalProfile.sinusoidal(slots=24, floor=0.1)
    assert min(profile.multipliers) >= 0.1
    assert max(profile.multipliers) <= 1.0
    # Peaks mid-period, quiet at the edges.
    assert profile.multipliers[12] > 5 * profile.multipliers[0]


def test_profile_modulates_issue_rate():
    # Day slot 10x the night slot: issue counts must follow.
    profile = DiurnalProfile([0.1, 1.0], period=100.0)
    world = World(topology=Topology.balanced(1, 1, 1, 1), seed=3)
    sim = world.sim
    night, day = [], []

    def do_one(arrival):
        (night if sim.now < 50.0 else day).append(sim.now)
        yield sim.timeout(0.001)
        return True

    stats = LoadStats()
    cohort = AggregatedPopulation(
        sim, do_one, random.Random(8), None, clients=5000, think_time=20.0,
        stats=stats, duration=100.0, profile=profile)
    world.run_until(sim.process(cohort.run()), limit=1e9)
    assert len(day) > 5 * len(night)
    # Totals near the closed-form expectation: clients/T · ∫a(t)dt.
    expected = 5000 / 20.0 * (0.1 * 50.0 + 1.0 * 50.0)
    assert stats.issued == pytest.approx(expected, rel=0.15)


def test_profile_rejected_for_fixed_or_zero_think():
    with pytest.raises(ValueError):
        CohortScenario(10, 1.0, duration=1.0, think="fixed",
                       profile=DiurnalProfile([1.0]))
    with pytest.raises(ValueError):
        CohortScenario(10, 0.0, duration=1.0,
                       profile=DiurnalProfile([1.0]))
    with pytest.raises(ValueError):
        CohortScenario(10, 1.0, duration=1.0, equivalence=True,
                       profile=DiurnalProfile([1.0]))


# -- constructor validation ---------------------------------------------------


def test_cohort_scenario_validation():
    with pytest.raises(ValueError):
        CohortScenario(0, 1.0, requests_per_client=1)
    with pytest.raises(ValueError):
        CohortScenario(1, 1.0)  # neither bound
    with pytest.raises(ValueError):
        CohortScenario(1, 1.0, requests_per_client=1, duration=1.0)
    with pytest.raises(ValueError):
        CohortScenario(1, -1.0, requests_per_client=1)
    with pytest.raises(ValueError):
        CohortScenario(1, 1.0, requests_per_client=1, cohort_size=0)
    with pytest.raises(ValueError):
        CohortScenario(1, 1.0, requests_per_client=1, think="uniform")
    assert CohortScenario(3, 1.0, requests_per_client=2).count == 6
    assert CohortScenario(3, 1.0, duration=2.0).count is None
