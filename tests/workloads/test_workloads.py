"""Unit tests for workload generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.topology import Topology
from repro.workloads.packages import generate_corpus, synthetic_file
from repro.workloads.population import ClientPopulation
from repro.workloads.webtrace import make_web_trace
from repro.workloads.zipf import ZipfSampler


# -- Zipf ---------------------------------------------------------------------


def test_zipf_determinism():
    a = ZipfSampler(100, 1.0, random.Random(5)).sample_many(50)
    b = ZipfSampler(100, 1.0, random.Random(5)).sample_many(50)
    assert a == b


def test_zipf_skew():
    sampler = ZipfSampler(100, 1.2, random.Random(7))
    draws = sampler.sample_many(5000)
    top = sum(1 for rank in draws if rank < 10)
    assert top > len(draws) * 0.5  # head dominates


def test_zipf_alpha_zero_is_uniform():
    sampler = ZipfSampler(10, 0.0, random.Random(3))
    assert sampler.probability(0) == pytest.approx(0.1)
    assert sampler.probability(9) == pytest.approx(0.1)


def test_zipf_probabilities_sum_to_one():
    sampler = ZipfSampler(50, 0.8, random.Random(1))
    assert sum(sampler.probability(rank)
               for rank in range(50)) == pytest.approx(1.0)


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0, random.Random(1))
    with pytest.raises(ValueError):
        ZipfSampler(10, -1.0, random.Random(1))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=200),
       st.floats(min_value=0.0, max_value=3.0))
def test_zipf_samples_in_range_property(n, alpha):
    sampler = ZipfSampler(n, alpha, random.Random(11))
    for _ in range(20):
        assert 0 <= sampler.sample() < n


# -- packages --------------------------------------------------------------------


def test_synthetic_file_deterministic_and_sized():
    assert synthetic_file("a", 100) == synthetic_file("a", 100)
    assert synthetic_file("a", 100) != synthetic_file("b", 100)
    assert len(synthetic_file("x", 10)) == 10
    assert len(synthetic_file("x", 100_000)) == 100_000


def test_corpus_names_unique_and_hierarchical():
    corpus = generate_corpus(40, random.Random(2))
    names = [spec.name for spec in corpus]
    assert len(set(names)) == 40
    assert all(name.startswith("/apps/") for name in names)
    assert any("gimp" in name for name in names)


def test_corpus_materialization_matches_spec():
    spec = generate_corpus(3, random.Random(4))[0]
    files = spec.materialize()
    assert set(files) == set(spec.file_sizes)
    for path, data in files.items():
        assert len(data) == spec.file_sizes[path]
    assert spec.total_size == sum(len(d) for d in files.values())
    assert spec.largest_file in files


# -- populations -------------------------------------------------------------------


@pytest.fixture
def topology():
    return Topology.balanced(regions=3, countries=2, cities=1, sites=2)


def test_request_stream_sorted_and_typed(topology):
    population = ClientPopulation(topology, 10, random.Random(5),
                                  write_fraction=[0.5] * 10)
    stream = population.generate(200)
    times = [request.time for request in stream]
    assert times == sorted(times)
    kinds = {request.kind for request in stream}
    assert kinds == {"read", "write"}


def test_home_region_concentration(topology):
    population = ClientPopulation(topology, 1, random.Random(9),
                                  home_share=0.9)
    stream = population.generate(500)
    home = population.home_region[0].path
    by_region = stream.reads_by_region(0)
    assert by_region[home] > sum(by_region.values()) * 0.7


def test_writes_counted_per_object(topology):
    population = ClientPopulation(topology, 5, random.Random(6),
                                  write_fraction=[1.0, 0, 0, 0, 0])
    stream = population.generate(300)
    assert stream.writes(0) > 0
    assert stream.writes(1) == 0


# -- web trace -----------------------------------------------------------------------


def test_web_trace_shape(topology):
    documents, stream = make_web_trace(topology, random.Random(8),
                                       document_count=30,
                                       request_count=500)
    assert len(documents) == 30
    assert len(stream) == 500
    classes = {doc.update_class for doc in documents}
    assert "static" in classes
    # Hot documents actually receive writes; static ones never do.
    hot = [doc.index for doc in documents if doc.update_class == "hot"]
    static = [doc.index for doc in documents
              if doc.update_class == "static"]
    assert sum(stream.writes(index) for index in hot) > 0
    assert all(stream.writes(index) == 0 for index in static)


def test_web_trace_deterministic(topology):
    docs_a, stream_a = make_web_trace(topology, random.Random(3),
                                      document_count=10, request_count=100)
    docs_b, stream_b = make_web_trace(topology, random.Random(3),
                                      document_count=10, request_count=100)
    assert [d.size for d in docs_a] == [d.size for d in docs_b]
    assert [(r.time, r.kind, r.object_index) for r in stream_a] == \
        [(r.time, r.kind, r.object_index) for r in stream_b]


def test_request_region_derived_defensively():
    # Regression: Request.region hard-indexed ancestors()[3], which
    # raised IndexError for sites on shallower-than-5-level
    # hierarchies.  It must use the defensive region lookup instead.
    from repro.sim.topology import Domain, Level
    from repro.workloads.population import Request

    full = Topology.balanced(2, 1, 1, 2).site("r1/c0/m0/s1")
    assert Request(0.0, "read", full, 0).region == "r1"

    city = Domain("metropolis", Level.CITY)
    shallow = Domain("campus", Level.SITE, city)
    request = Request(1.0, "read", shallow, 0)  # must not raise
    assert request.region == shallow.region().path


def test_request_stream_skips_sort_when_already_ordered():
    # RequestStream keeps already-ordered input as-is (no re-sort) and
    # still sorts genuinely unordered input.
    from repro.workloads.population import Request, RequestStream

    site = Topology.balanced(1, 1, 1, 1).site("r0/c0/m0/s0")
    ordered = [Request(float(i), "read", site, i) for i in range(10)]
    stream = RequestStream(ordered)
    assert [request.time for request in stream] == [float(i)
                                                    for i in range(10)]
    # Ties count as ordered (stable either way).
    tied = [Request(1.0, "read", site, i) for i in range(4)]
    assert [request.object_index for request in RequestStream(tied)] \
        == [0, 1, 2, 3]

    shuffled = [Request(float(t), "read", site, i)
                for i, t in enumerate([5, 2, 9, 1, 7])]
    resorted = RequestStream(shuffled)
    assert [request.time for request in resorted] == [1.0, 2.0, 5.0, 7.0, 9.0]
