"""Tests for the unified scenario engine (trace replay, mixes,
closed-loop populations, hybrids, soak runs)."""

import random

import pytest

from repro.sim.kernel import Simulator
from repro.sim.rpc import UdpRpcServer, UdpRpcClient
from repro.sim.topology import Topology
from repro.sim.world import World
from repro.workloads.loadgen import (BurstSchedule, LoadStats,
                                     PoissonSchedule, UniformSchedule)
from repro.workloads.population import ClientPopulation
from repro.workloads.scenario import (ClosedLoopScenario, HybridScenario,
                                      OpenLoopScenario, RequestMix, Soak,
                                      TraceEvent, TraceScenario, load_trace,
                                      record_stream, save_trace)


def _drive(sim, scenario, request, seed=1, stats=None):
    stats = stats if stats is not None else LoadStats()
    elapsed = sim.run_until_complete(
        sim.process(scenario.drive(sim, request, rng=random.Random(seed),
                                   stats=stats)), 1e9)
    return stats, elapsed


# -- trace format -----------------------------------------------------------

@pytest.mark.parametrize("suffix", [".csv", ".jsonl"])
def test_trace_file_roundtrip(tmp_path, suffix):
    events = [TraceEvent(0.25 * i, "write" if i % 4 == 0 else "read",
                         i % 3, "r0/c0/m0/s%d" % (i % 2))
              for i in range(12)]
    path = tmp_path / ("trace%s" % suffix)
    save_trace(path, events)
    back = load_trace(path)
    assert [(e.time, e.kind, e.object_index, e.site_path) for e in back] \
        == [(e.time, e.kind, e.object_index, e.site_path) for e in events]


def test_trace_format_validation(tmp_path):
    with pytest.raises(ValueError):
        save_trace(tmp_path / "trace.xml", [])
    with pytest.raises(ValueError):
        load_trace(tmp_path / "trace.xml")
    with pytest.raises(ValueError):
        TraceScenario([])


def test_record_stream_adapts_population():
    topology = Topology.balanced(2, 1, 1, 2)
    population = ClientPopulation(topology, 5, random.Random(3),
                                  write_fraction=[0.5] * 5)
    stream = population.generate(40)
    events = record_stream(stream)
    assert len(events) == 40
    assert all(e.kind in ("read", "write") for e in events)
    assert any(e.kind == "write" for e in events)
    # Sites survive as Domains straight from the stream.
    assert events[0].site_path == stream.requests[0].site.path


# -- trace replay -----------------------------------------------------------

def test_trace_replay_determinism_from_file(tmp_path):
    """Same seed + same trace file => identical LoadStats."""
    topology = Topology.balanced(2, 2, 1, 2)
    population = ClientPopulation(topology, 8, random.Random(11),
                                  write_fraction=[0.2] * 8)
    path = tmp_path / "trace.jsonl"
    save_trace(path, record_stream(population.generate(60)))

    def one_run():
        sim = Simulator()
        rng = random.Random(99)

        def request(arrival):
            # Service time depends on the run's RNG and the arrival, so
            # any divergence in replay order or draws shows up in stats.
            yield sim.timeout(rng.uniform(0.01, 0.05) * (arrival.rank + 1))
            return arrival.kind == "read" or arrival.rank % 2 == 0

        scenario = TraceScenario.from_file(path, topology=topology)
        stats, elapsed = _drive(sim, scenario, request, seed=7)
        # Histogram state is the determinism fingerprint: same replay
        # order and draws <=> identical (count, sum, extremes, buckets).
        return (stats.issued, stats.ok, stats.failed,
                stats.latency.state(), elapsed)

    assert one_run() == one_run()


def test_trace_replay_respects_timestamps():
    sim = Simulator()
    events = [TraceEvent(1.0, "read", 0), TraceEvent(3.0, "read", 1)]
    issued_at = []

    def request(arrival):
        issued_at.append((arrival.rank, sim.now))
        yield sim.timeout(0.1)

    _drive(sim, TraceScenario(events), request)
    assert issued_at == [(0, 1.0), (1, 3.0)]


def test_trace_scenario_site_resolution():
    topology = Topology.balanced(1, 1, 1, 2)
    events = [TraceEvent(0.0, "read", 0, "r0/c0/m0/s1")]
    sim = Simulator()
    resolved = TraceScenario(events, topology=topology).arrivals(sim)
    assert resolved[0].site is topology.site("r0/c0/m0/s1")
    unresolved = TraceScenario(events).arrivals(sim)
    assert unresolved[0].site == "r0/c0/m0/s1"


def test_sequential_pacing_never_overlaps():
    sim = Simulator()
    events = [TraceEvent(0.0, "read", i) for i in range(5)]
    active = []
    peak = []

    def request(arrival):
        active.append(arrival.rank)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.remove(arrival.rank)

    stats, elapsed = _drive(
        sim, TraceScenario(events, pacing="sequential"), request)
    assert max(peak) == 1  # closed: one request at a time
    assert stats.ok == 5
    assert elapsed == pytest.approx(5.0)
    with pytest.raises(ValueError):
        TraceScenario(events, pacing="warp")


# -- request mixes ----------------------------------------------------------

def test_request_mix_draws_objects_and_kinds():
    mix = RequestMix(10, alpha=1.0,
                     write_fraction=[0.5] * 5 + [0.0] * 5)
    rng = random.Random(5)
    draws = [mix.draw(rng) for _ in range(2000)]
    ranks = [rank for rank, _ in draws]
    assert min(ranks) == 0 and max(ranks) < 10
    # Zipf head dominates.
    assert sum(1 for rank in ranks if rank < 3) > len(ranks) * 0.5
    # Writes only on objects that allow them.
    assert all(kind == "read" for rank, kind in draws if rank >= 5)
    writable = [kind for rank, kind in draws if rank < 5]
    assert 0.3 < sum(1 for k in writable if k == "write") / len(writable) \
        < 0.7


def test_request_mix_explicit_weights_and_validation():
    mix = RequestMix(3, weights=[0.0, 1.0, 0.0])
    rng = random.Random(1)
    assert {mix.draw(rng)[0] for _ in range(50)} == {1}
    assert mix.probability(1) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        RequestMix(0)
    with pytest.raises(ValueError):
        RequestMix(3, weights=[1.0, 2.0])
    with pytest.raises(ValueError):
        RequestMix(2, weights=[0.0, 0.0])
    with pytest.raises(ValueError):
        RequestMix(2, write_fraction=[0.5])
    with pytest.raises(ValueError):
        RequestMix(2, write_fraction=1.5)


def test_open_loop_scenario_with_mix_sets_kinds():
    sim = Simulator()
    mix = RequestMix(4, alpha=0.0, write_fraction=0.5)
    seen = []

    def request(arrival):
        seen.append((arrival.rank, arrival.kind))
        yield sim.timeout(0.001)

    scenario = OpenLoopScenario(PoissonSchedule(200.0), 200, mix=mix)
    stats, _elapsed = _drive(sim, scenario, request)
    assert stats.ok == 200
    kinds = {kind for _rank, kind in seen}
    assert kinds == {"read", "write"}
    assert len({rank for rank, _ in seen}) == 4


# -- closed-loop populations -------------------------------------------------

def test_closed_loop_thinks_before_every_request():
    """No request may be issued before its think time has elapsed."""
    sim = Simulator()
    topology = Topology.balanced(1, 1, 1, 2)
    think = 0.5
    service = 0.2
    issues = {}  # site path -> issue times

    def request(arrival):
        issues.setdefault(arrival.site.path, []).append(sim.now)
        yield sim.timeout(service)

    scenario = ClosedLoopScenario(clients=2, think_time=think,
                                  requests_per_client=4,
                                  sites=topology.sites, think="fixed")
    stats, _elapsed = _drive(sim, scenario, request)
    assert stats.ok == 8
    assert len(issues) == 2  # each client at its own site
    for times in issues.values():
        assert times[0] >= think  # thought before the first request too
        for earlier, later in zip(times, times[1:]):
            # think time + the client's own completed request
            assert later - earlier >= think + service


def test_closed_loop_waits_for_own_request():
    sim = Simulator()
    active = []
    peak = []

    def request(arrival):
        active.append(arrival.index)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.remove(arrival.index)

    scenario = ClosedLoopScenario(clients=3, think_time=0.0,
                                  requests_per_client=4)
    stats, elapsed = _drive(sim, scenario, request)
    assert stats.ok == 12
    assert max(peak) <= 3  # concurrency bounded by the population
    assert elapsed == pytest.approx(4.0)  # 4 sequential rounds per client


def test_closed_loop_validation():
    with pytest.raises(ValueError):
        ClosedLoopScenario(0, 1.0, 1)
    with pytest.raises(ValueError):
        ClosedLoopScenario(1, -1.0, 1)
    with pytest.raises(ValueError):
        ClosedLoopScenario(1, 1.0, 0)
    with pytest.raises(ValueError):
        ClosedLoopScenario(1, 1.0, 1, think="gaussian")


def test_closed_loop_accounts_failures():
    sim = Simulator()

    def request(arrival):
        yield sim.timeout(0.01)
        if arrival.index % 3 == 1:
            return False
        if arrival.index % 3 == 2:
            raise RuntimeError("boom")
        return True

    scenario = ClosedLoopScenario(clients=1, think_time=0.0,
                                  requests_per_client=9)
    stats, _elapsed = _drive(sim, scenario, request)
    assert stats.ok == 3 and stats.failed == 6
    assert stats.errors == {"RuntimeError": 3}


# -- hybrids and schedules ---------------------------------------------------

def test_burst_schedule_is_simultaneous():
    times = list(BurstSchedule().times(5, 3.0, random.Random(1)))
    assert times == [3.0] * 5


def test_hybrid_runs_everything_into_shared_stats():
    sim = Simulator()
    by_label = {"open": 0, "closed": 0}

    def request(arrival):
        # Open-loop arrivals carry rank from the mix (all rank 1 via
        # weights); closed-loop ones are rank 0.
        by_label["open" if arrival.rank == 1 else "closed"] += 1
        yield sim.timeout(0.01)

    scenario = HybridScenario([
        OpenLoopScenario(UniformSchedule(100.0), 20,
                         mix=RequestMix(2, weights=[0.0, 1.0])),
        ClosedLoopScenario(clients=2, think_time=0.05,
                           requests_per_client=5),
    ])
    stats, _elapsed = _drive(sim, scenario, request)
    assert scenario.count == 30
    assert stats.ok == 30
    assert by_label == {"open": 20, "closed": 10}
    with pytest.raises(ValueError):
        HybridScenario([])


def test_scenario_determinism_same_seed():
    def one_run(seed):
        sim = Simulator()

        def request(arrival):
            yield sim.timeout(0.001 * (arrival.rank + 1))

        scenario = HybridScenario([
            OpenLoopScenario(PoissonSchedule(50.0), 30,
                             mix=RequestMix(5, write_fraction=0.2)),
            ClosedLoopScenario(clients=3, think_time=0.1,
                               requests_per_client=5,
                               mix=RequestMix(5)),
        ])
        stats, elapsed = _drive(sim, scenario, request, seed=seed)
        return stats.latency.state(), elapsed

    assert one_run(4) == one_run(4)
    assert one_run(4) != one_run(5)


# -- soak runs ---------------------------------------------------------------

def _echo_world():
    world = World(topology=Topology.balanced(1, 1, 1, 2), seed=21)
    client_host = world.host("client", "r0/c0/m0/s0")
    server_host = world.host("server", "r0/c0/m0/s1")
    server = UdpRpcServer(server_host, 5300)
    server.register("echo", lambda ctx, args: args["x"])
    server.start()
    return world, client_host, server_host, server


def test_soak_injects_faults_and_checks_invariants():
    world, client_host, server_host, server = _echo_world()
    client = UdpRpcClient(client_host)

    def request(arrival):
        value = yield from client.call(server_host, 5300, "echo",
                                       {"x": arrival.index})
        return value == arrival.index

    stats = LoadStats()
    scenario = OpenLoopScenario(UniformSchedule(10.0), 60)
    soak = Soak(world, scenario, request, stats=stats, settle=1.0)
    base = world.now
    # The outage outlasts the client's whole retry budget (4 attempts
    # x 0.5s), so early-outage calls genuinely fail while late ones
    # are saved by a retry landing after the restart.
    soak.crash_restart(server_host, crash_at=base + 2.0,
                       restart_at=base + 4.5, recover=server.start)
    soak.invariant("all accounted",
                   lambda: stats.finished == 60)
    soak.invariant("some failed during the outage",
                   lambda: stats.failed > 0)
    soak.invariant("mostly fine", lambda: stats.ok >= 40)
    report = soak.run()
    assert report.ok, report.failures
    assert [(kind, target) for _w, kind, target in report.fault_log] \
        == [("crash", "server"), ("restart", "server")]
    assert report.invariants_checked == 3
    summary = report.summary()
    assert summary["violations"] == 0 and summary["faults"] == 2


def test_soak_reports_violated_invariants():
    world, client_host, server_host, _server = _echo_world()
    client = UdpRpcClient(client_host)

    def request(arrival):
        yield from client.call(server_host, 5300, "echo", {"x": 1})
        return True

    soak = Soak(world, OpenLoopScenario(UniformSchedule(50.0), 10),
                request, settle=0.0)
    soak.invariant("passes", lambda: True)
    soak.invariant("returns false", lambda: False)

    def raises():
        raise AssertionError("broken state")

    soak.invariant("raises", raises)
    report = soak.run()
    assert not report.ok
    assert [name for name, _why in report.failures] \
        == ["returns false", "raises"]
    assert "broken state" in dict(report.failures)["raises"]


# -- duration-bound scenarios ------------------------------------------------

def test_open_loop_duration_stops_on_simulated_time():
    sim = Simulator()
    issued_times = []

    def request(arrival):
        issued_times.append(arrival.time)
        yield sim.timeout(0.01)

    scenario = OpenLoopScenario(UniformSchedule(100.0), duration=0.5)
    assert scenario.count is None  # the total is an outcome, not an input
    stats, elapsed = _drive(sim, scenario, request)
    # Uniform arrivals every 10ms: 0.0 .. 0.5 inclusive.
    assert stats.issued == 51
    assert stats.ok == 51
    assert max(issued_times) <= 0.5
    assert elapsed == pytest.approx(0.51)


def test_open_loop_duration_with_poisson_is_deterministic():
    def one_run():
        sim = Simulator()

        def request(arrival):
            yield sim.timeout(0.005)

        scenario = OpenLoopScenario(PoissonSchedule(50.0), duration=2.0)
        stats, elapsed = _drive(sim, scenario, request, seed=11)
        return stats.issued, stats.latency.state(), elapsed

    first = one_run()
    assert first == one_run()
    assert 50 < first[0] < 150  # ~100 expected at rate 50 for 2s


def test_closed_loop_duration_stops_on_simulated_time():
    sim = Simulator()
    think, service = 0.1, 0.15

    def request(arrival):
        yield sim.timeout(service)

    scenario = ClosedLoopScenario(clients=2, think_time=think,
                                  duration=1.0, think="fixed")
    assert scenario.count is None
    stats, _elapsed = _drive(sim, scenario, request)
    # Each client cycles think+service = 0.25s; issues at 0.1, 0.35,
    # 0.6, 0.85, then the 1.1 think lands past the deadline.
    assert stats.issued == 8
    assert stats.ok == 8


def test_duration_validation():
    with pytest.raises(ValueError):
        OpenLoopScenario(UniformSchedule(1.0))  # neither bound
    with pytest.raises(ValueError):
        OpenLoopScenario(UniformSchedule(1.0), 5, duration=1.0)  # both
    with pytest.raises(ValueError):
        OpenLoopScenario(UniformSchedule(1.0), duration=-1.0)
    with pytest.raises(ValueError):
        ClosedLoopScenario(1, 0.1)  # neither bound
    with pytest.raises(ValueError):
        ClosedLoopScenario(1, 0.1, 5, duration=1.0)  # both


def test_burst_schedule_refuses_open_ended_runs():
    sim = Simulator()

    def request(arrival):
        yield sim.timeout(0.01)

    scenario = OpenLoopScenario(BurstSchedule(), duration=1.0)
    with pytest.raises(ValueError):
        sim.run_until_complete(
            sim.process(scenario.drive(sim, request)), 1e9)


# -- zero-request / zero-time soaks report cleanly ---------------------------

def test_empty_load_stats_reports_zeros_not_errors():
    stats = LoadStats()
    assert stats.throughput(0.0) == 0.0
    assert stats.throughput(-1.0) == 0.0
    assert stats.throughput(10.0) == 0.0
    summary = stats.summary()
    assert summary["issued"] == 0 and summary["ok"] == 0
    assert summary["mean"] == 0.0 and summary["p95"] == 0.0
    assert stats.latency.mean == 0.0  # no ValueError on empty latency


def test_soak_with_zero_completed_requests_yields_clean_report():
    world, client_host, server_host, _server = _echo_world()

    def request(arrival):
        yield from ()  # never reached: no arrivals fit the window

    # At 0.001 req/s the first Poisson arrival is ~1000s out — far
    # beyond the 0.1s duration — so the soak issues nothing.
    scenario = OpenLoopScenario(PoissonSchedule(0.001), duration=0.1)
    soak = Soak(world, scenario, request, settle=0.5)
    report = soak.run()
    assert report.ok
    summary = report.summary()
    assert summary["issued"] == 0 and summary["ok"] == 0
    assert summary["throughput"] == 0.0
    assert summary["p95"] == 0.0
    # The phase table renders (all-zero row, no division errors).
    assert "steady" in report.phase_table()


# -- phase windows around injected faults ------------------------------------

def test_soak_phase_windows_capture_fault_degradation():
    """p95 latency during the injected partition must exceed the
    recovered window's, and the phase deltas must sum to run totals."""
    from repro.sim.rpc import RpcError

    world = World(topology=Topology.balanced(1, 2, 1, 2), seed=21)
    client_host = world.host("client", "r0/c0/m0/s0")
    # The preferred replica lives in the country that gets partitioned;
    # the fallback is local to the client.
    replica_host = world.host("replica", "r0/c1/m0/s0")
    fallback_host = world.host("fallback", "r0/c0/m0/s1")
    for server_host in (replica_host, fallback_host):
        server = UdpRpcServer(server_host, 5300)
        server.register("echo", lambda ctx, args: args["x"])
        server.start()
    client = UdpRpcClient(client_host, timeout=0.25, retries=3)

    def request(arrival):
        # Nearest-replica-first with fallback: during the partition
        # every request burns the replica's retry budget (1.0s) before
        # completing on the fallback — the latency degradation the
        # per-phase windows must expose.
        try:
            value = yield from client.call(replica_host, 5300, "echo",
                                           {"x": arrival.index})
        except RpcError:
            value = yield from client.call(fallback_host, 5300, "echo",
                                           {"x": arrival.index})
        return value == arrival.index

    stats = LoadStats(registry=world.metrics)
    scenario = OpenLoopScenario(UniformSchedule(20.0), 480)
    soak = Soak(world, scenario, request, stats=stats, settle=1.0)
    base = world.now
    soak.partition(world.topology.domain("r0/c1"), start=base + 2.0,
                   duration=2.0)
    report = soak.run()

    assert [w.label for w in report.phases] \
        == ["pre-fault", "during-fault", "recovered"]
    rows = {row["phase"]: row for row in report.phase_rows()}
    during, recovered = rows["during-fault"], rows["recovered"]
    pre = rows["pre-fault"]
    assert during["ok"] > 0 and recovered["ok"] > 0
    # Fault-window completions paid the retry budget before failing
    # over; after the heal, latency is back at the millisecond floor.
    assert during["p95"] > 0.9
    assert during["p95"] > 10 * recovered["p95"]
    assert during["p95"] > 10 * pre["p95"]
    # The replica path actually timed out during the fault.
    assert client.retries_sent > 0 and client.timeouts_hit > 0
    # Tiling: phase deltas sum exactly to the run totals.
    assert sum(row["issued"] for row in rows.values()) == stats.issued
    assert sum(row["ok"] for row in rows.values()) == stats.ok
    assert sum(row["failed"] for row in rows.values()) == stats.failed
    latency_counts = [report.phases[i].delta(stats.latency.name).count
                      for i in range(3)]
    assert sum(latency_counts) == stats.latency.count
    # Network counters share the same windows: the fault window saw
    # dropped messages, the pre-fault window none.
    assert report.phases[1].delta("net.dropped") > 0
    assert report.phases[0].delta("net.dropped") == 0


# -- the committed trace corpus ----------------------------------------------

def test_bundled_trace_replay_is_deterministic():
    """Same seed + the committed trace file => identical stats."""
    from repro.workloads.scenario import bundled_trace

    path = bundled_trace("mixed_small.jsonl")
    events = load_trace(path)
    assert len(events) == 80
    assert {e.kind for e in events} == {"read", "write"}

    topology = Topology.balanced(2, 2, 1, 2)

    def one_run():
        sim = Simulator()
        rng = random.Random(5)

        def request(arrival):
            yield sim.timeout(rng.uniform(0.001, 0.01) * (arrival.rank + 1))
            return arrival.kind == "read" or arrival.rank % 2 == 0

        scenario = TraceScenario.from_file(path, topology=topology)
        stats, elapsed = _drive(sim, scenario, request, seed=3)
        return (stats.issued, stats.ok, stats.failed,
                stats.latency.state(), elapsed)

    first = one_run()
    assert first == one_run()
    assert first[0] == 80


def test_bundled_trace_file_not_found():
    from repro.workloads.scenario import bundled_trace
    with pytest.raises(FileNotFoundError):
        bundled_trace("no_such_trace.jsonl")


def test_closed_loop_duration_zero_progress_raises_not_hangs():
    """Zero think time + zero-time requests can never reach a duration
    deadline; the client must surface the livelock as an error."""
    sim = Simulator()

    def instant(arrival):
        return True
        yield  # pragma: no cover - marks this as a generator

    scenario = ClosedLoopScenario(clients=1, think_time=0.0, duration=1.0)
    with pytest.raises(ValueError, match="no simulated-time progress"):
        sim.run_until_complete(
            sim.process(scenario.drive(sim, instant)), 1e9)


def test_soak_phases_exclude_foreign_open_windows():
    """A phase window left open on the shared registry before the soak
    (an experiment's setup window) must not leak into report.phases."""
    world, client_host, server_host, _server = _echo_world()
    client = UdpRpcClient(client_host)
    world.metrics.phase("experiment-setup", now=world.now)

    def request(arrival):
        value = yield from client.call(server_host, 5300, "echo", {"x": 1})
        return value == 1

    soak = Soak(world, OpenLoopScenario(UniformSchedule(50.0), 10),
                request, settle=0.0)
    report = soak.run()
    assert [w.label for w in report.phases] == ["steady"]
    # The foreign window was closed and kept, just not attributed.
    assert [w.label for w in world.metrics.phases] \
        == ["experiment-setup", "steady"]
    rows = report.phase_rows()
    assert sum(row["issued"] for row in rows) == 10


# -- phases= on plain scenarios ----------------------------------------------

def test_open_loop_phases_mark_named_windows():
    """A plain open-loop scenario slices itself into named phase
    windows — no Soak wrapper — and the deltas tile the run."""
    sim = Simulator()

    def request(arrival):
        yield sim.timeout(0.005)

    stats = LoadStats()
    scenario = OpenLoopScenario(UniformSchedule(100.0), 100,
                                phases=[(0.0, "warmup"), (0.5, "steady")])
    stats2, _elapsed = _drive(sim, scenario, request, stats=stats)
    labels = [window.label for window in stats.registry.phases]
    assert labels == ["warmup", "steady"]
    rows = [stats.phase_summary(window)
            for window in stats.registry.phases]
    # Uniform arrivals every 10ms: 50 land in [0, 0.5), the rest after.
    assert rows[0]["issued"] == 50
    assert rows[1]["issued"] == 50
    assert sum(row["issued"] for row in rows) == stats.issued == 100
    assert sum(row["ok"] for row in rows) == stats.ok == 100
    # Windows carry timestamps, so per-phase throughput is computable.
    assert rows[0]["duration"] == pytest.approx(0.5)
    assert rows[0]["throughput"] > 0


def test_closed_loop_phases_and_marks_past_the_end():
    """phases= works on closed-loop scenarios too; a mark beyond the
    end of the run is dropped rather than left dangling."""
    sim = Simulator()

    def request(arrival):
        yield sim.timeout(0.01)

    stats = LoadStats()
    scenario = ClosedLoopScenario(clients=2, think_time=0.05,
                                  requests_per_client=5,
                                  phases=[(0.0, "all"), (1e6, "never")])
    _drive(sim, scenario, request, stats=stats)
    labels = [window.label for window in stats.registry.phases]
    assert labels == ["all"]
    window = stats.registry.phases[0]
    assert stats.phase_summary(window)["issued"] == 10
    # The dangling mark's sleeper was reaped (its t=1e6 timer was
    # cancelled with it): draining leaves nothing scheduled.
    sim.run()
    assert sim.peek() == float("inf")
    assert sim.now < 1e6


def test_phases_validation_and_ordering():
    with pytest.raises(ValueError, match="negative"):
        OpenLoopScenario(UniformSchedule(10.0), 5,
                         phases=[(-1.0, "bad")])
    scenario = OpenLoopScenario(UniformSchedule(10.0), 5,
                                phases=[(0.4, "late"), (0.0, "early")])
    assert scenario.phases == [(0.0, "early"), (0.4, "late")]
    assert OpenLoopScenario(UniformSchedule(10.0), 5).phases is None


def test_scenario_phases_close_foreign_open_window():
    """A phase left open on a shared registry before the drive must be
    closed first, so the scenario's own windows tile cleanly."""
    sim = Simulator()

    def request(arrival):
        yield sim.timeout(0.001)

    stats = LoadStats()
    stats.registry.phase("someone-elses-setup")
    scenario = OpenLoopScenario(UniformSchedule(100.0), 10,
                                phases=[(0.0, "mine")])
    _drive(sim, scenario, request, stats=stats)
    assert [w.label for w in stats.registry.phases] \
        == ["someone-elses-setup", "mine"]


# -- window-scoped soak invariants -------------------------------------------

def _partitioned_fallback_soak():
    """The replica-fallback soak from the phase-window test, reusable
    for window-scoped invariant checks."""
    from repro.sim.rpc import RpcError

    world = World(topology=Topology.balanced(1, 2, 1, 2), seed=21)
    client_host = world.host("client", "r0/c0/m0/s0")
    replica_host = world.host("replica", "r0/c1/m0/s0")
    fallback_host = world.host("fallback", "r0/c0/m0/s1")
    for server_host in (replica_host, fallback_host):
        server = UdpRpcServer(server_host, 5300)
        server.register("echo", lambda ctx, args: args["x"])
        server.start()
    client = UdpRpcClient(client_host, timeout=0.25, retries=3)

    def request(arrival):
        try:
            value = yield from client.call(replica_host, 5300, "echo",
                                           {"x": arrival.index})
        except RpcError:
            value = yield from client.call(fallback_host, 5300, "echo",
                                           {"x": arrival.index})
        return value == arrival.index

    stats = LoadStats(registry=world.metrics)
    soak = Soak(world, OpenLoopScenario(UniformSchedule(20.0), 160),
                request, stats=stats, settle=1.0)
    soak.partition(world.topology.domain("r0/c1"), start=world.now + 2.0,
                   duration=2.0)
    return soak, stats


def test_window_scoped_invariants_on_partition_soak():
    """Invariants bound to a named phase receive that phase's closed
    window and judge in-window deltas, not run totals."""
    soak, stats = _partitioned_fallback_soak()

    def error_rate_below(limit):
        def check(window):
            row = stats.phase_summary(window)
            finished = row["ok"] + row["failed"]
            return finished > 0 and row["failed"] / finished <= limit
        return check

    # Every request eventually fails over, so the during-fault error
    # *rate* stays at zero even though latency degrades badly.
    soak.invariant("error rate during fault <= 10%",
                   error_rate_below(0.10), phase="during-fault")
    soak.invariant("fault window saw drops",
                   lambda window: window.delta("net.dropped") > 0,
                   phase="during-fault")
    # p50, not p95: stragglers issued just before the heal complete
    # their 1s failover *inside* the recovered window, so its far tail
    # legitimately carries fault-era latencies.
    soak.invariant("recovered window is clean",
                   lambda window: window.delta("net.dropped") == 0
                   and stats.phase_summary(window)["p50"] < 0.1,
                   phase="recovered")
    report = soak.run()
    assert report.ok, report.failures
    assert report.invariants_checked == 3


def test_window_scoped_invariant_failures_are_reported():
    soak, stats = _partitioned_fallback_soak()
    soak.invariant("p95 during fault stays tiny",       # it will not
                   lambda window:
                   stats.phase_summary(window)["p95"] < 0.001,
                   phase="during-fault")
    soak.invariant("no such phase", lambda window: True,
                   phase="meltdown")
    report = soak.run()
    assert not report.ok
    failed = dict(report.failures)
    assert failed["p95 during fault stays tiny"] == "returned False"
    assert "no phase window labelled 'meltdown'" \
        in failed["no such phase"]


def test_flash_crowd_trace_shape_and_replay_determinism():
    """The committed flash-crowd trace has the documented spike shape,
    and a seeded replay produces byte-identical LoadStats summaries
    run over run (the determinism fingerprint of the fast-path
    kernel: replay order must not depend on anything but the trace
    and the seed)."""
    from repro.workloads.scenario import bundled_trace

    path = bundled_trace("flash_crowd_small.jsonl")
    events = load_trace(path)
    assert len(events) == 140
    in_spike = [e for e in events if 5.0 <= e.time < 7.0]
    outside = [e for e in events if not 5.0 <= e.time < 7.0]
    # The spike carries most of the trace at ~15x the base rate, and
    # is dominated by the announced object (rank 0).
    assert len(in_spike) > 2 * len(outside)
    spike_hot = sum(1 for e in in_spike if e.object_index == 0)
    assert spike_hot >= 0.7 * len(in_spike)
    assert {e.kind for e in events} == {"read", "write"}

    topology = Topology.balanced(2, 2, 1, 2)

    def one_run():
        sim = Simulator()
        rng = random.Random(13)

        def request(arrival):
            yield sim.timeout(rng.uniform(0.001, 0.02)
                              * (arrival.rank + 1))
            return arrival.kind == "read" or arrival.rank % 2 == 0

        scenario = TraceScenario.from_file(path, topology=topology)
        stats, elapsed = _drive(sim, scenario, request, seed=11)
        # The full summary dict plus the histogram's canonical state:
        # byte-identical across runs, not merely "close".
        return (stats.summary(), stats.latency.state(), elapsed,
                sim.events_processed)

    first = one_run()
    assert first == one_run()
    assert first[0]["issued"] == 140


def test_window_invariants_check_every_matching_window():
    """Repeated phase labels (two mark_phase calls with one name)
    produce several windows; a window-scoped invariant must be judged
    against all of them, not silently only the last."""
    world, client_host, server_host, _server = _echo_world()
    client = UdpRpcClient(client_host)

    def request(arrival):
        value = yield from client.call(server_host, 5300, "echo",
                                       {"x": arrival.index})
        return value == arrival.index

    soak = Soak(world, OpenLoopScenario(UniformSchedule(10.0), 40),
                request, settle=0.0)
    base = world.now
    soak.mark_phase(base + 1.0, "burst")
    soak.mark_phase(base + 2.0, "burst")
    seen_starts = []
    soak.invariant("sees every burst window",
                   lambda window: seen_starts.append(window.started_at)
                   or True, phase="burst")
    soak.invariant("fails on the first burst window",
                   lambda window: window.started_at != base + 1.0,
                   phase="burst")
    report = soak.run()
    assert seen_starts == [base + 1.0, base + 2.0]
    failed = dict(report.failures)
    assert "fails on the first burst window" in failed
    assert "sees every burst window" not in failed


def test_deadline_pool_trace_replay_matches_per_call_timers():
    """The ISSUE 5 determinism pin: replaying the committed flash-crowd
    trace through *guarded* UDP calls (loss, retries, expiring guard
    timers) yields byte-identical LoadStats whether the guards run on
    the pooled deadline subsystem or on dedicated per-call timers."""
    from repro.sim.topology import Level
    from repro.sim.rpc import RpcTimeout
    from repro.workloads.scenario import bundled_trace

    path = bundled_trace("flash_crowd_small.jsonl")

    def one_run(pooled):
        world = World(topology=Topology.balanced(2, 2, 1, 2), seed=17)
        # Heavy wide-area loss: guards expire, retries fire, some calls
        # exhaust the budget — every deadline path gets exercised.
        world.network.params.loss[Level.WORLD] = 0.5
        client_host = world.host("client", "r0/c0/m0/s0")
        server_host = world.host("gls", "r1/c0/m0/s0")
        server = UdpRpcServer(server_host, 5300)
        server.register("lookup", lambda ctx, args: args["rank"])
        server.start()
        client = UdpRpcClient(client_host, timeout=0.25, retries=2,
                              pooled=pooled)

        def request(arrival):
            try:
                value = yield from client.call(server_host, 5300, "lookup",
                                               {"rank": arrival.rank})
            except RpcTimeout:
                return False
            return value == arrival.rank

        scenario = TraceScenario.from_file(path, topology=world.topology)
        stats, elapsed = _drive(world.sim, scenario, request, seed=29)
        return (stats.summary(), stats.latency.state(), elapsed,
                client.retries_sent, client.timeouts_hit, world.now)

    pooled = one_run(True)
    reference = one_run(False)
    assert pooled == reference
    assert pooled[0]["issued"] == 140
    assert pooled[3] > 0           # retries actually happened
    assert pooled[0]["failed"] > 0  # and some calls timed out for good


def test_loadgen_10k_guarded_calls_drain_pools_and_heap():
    """A 10^4-request open-loop run of guarded UDP calls leaves zero
    stale timers, an empty kernel heap and fully drained deadline
    pools — nothing accumulates per call."""
    from repro.sim.deadlines import shared_pool

    world = World(topology=Topology.balanced(1, 1, 1, 2), seed=9)
    client_host = world.host("client", "r0/c0/m0/s0")
    server_host = world.host("node", "r0/c0/m0/s1")
    server = UdpRpcServer(server_host, 5300)
    server.register("echo", lambda ctx, args: args["x"])
    server.start()
    client = UdpRpcClient(client_host)

    def request(arrival):
        value = yield from client.call(server_host, 5300, "echo",
                                       {"x": arrival.index})
        return value == arrival.index

    scenario = OpenLoopScenario(UniformSchedule(2000.0), 10_000)
    stats, _elapsed = _drive(world.sim, scenario, request, seed=5)
    assert stats.ok == 10_000
    pool = client.deadline_pool
    assert pool.armed_total == 10_000
    assert pool.live == 0
    # Far fewer kernel arms than guarded calls — the pooling win.
    assert pool.timer_arms < 100
    world.run()  # let the last armed timer fire and sweep
    assert len(pool) == 0
    assert len(shared_pool(world.sim)) == 0
    assert world.sim.stale_timer_count == 0
    assert world.sim.heap_size == 0
