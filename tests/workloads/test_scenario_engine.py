"""Tests for the unified scenario engine (trace replay, mixes,
closed-loop populations, hybrids, soak runs)."""

import random

import pytest

from repro.sim.kernel import Simulator
from repro.sim.rpc import UdpRpcServer, UdpRpcClient
from repro.sim.topology import Topology
from repro.sim.world import World
from repro.workloads.loadgen import (BurstSchedule, LoadStats,
                                     PoissonSchedule, UniformSchedule)
from repro.workloads.population import ClientPopulation
from repro.workloads.scenario import (ClosedLoopScenario, HybridScenario,
                                      OpenLoopScenario, RequestMix, Soak,
                                      TraceEvent, TraceScenario, load_trace,
                                      record_stream, save_trace)


def _drive(sim, scenario, request, seed=1, stats=None):
    stats = stats if stats is not None else LoadStats()
    elapsed = sim.run_until_complete(
        sim.process(scenario.drive(sim, request, rng=random.Random(seed),
                                   stats=stats)), 1e9)
    return stats, elapsed


# -- trace format -----------------------------------------------------------

@pytest.mark.parametrize("suffix", [".csv", ".jsonl"])
def test_trace_file_roundtrip(tmp_path, suffix):
    events = [TraceEvent(0.25 * i, "write" if i % 4 == 0 else "read",
                         i % 3, "r0/c0/m0/s%d" % (i % 2))
              for i in range(12)]
    path = tmp_path / ("trace%s" % suffix)
    save_trace(path, events)
    back = load_trace(path)
    assert [(e.time, e.kind, e.object_index, e.site_path) for e in back] \
        == [(e.time, e.kind, e.object_index, e.site_path) for e in events]


def test_trace_format_validation(tmp_path):
    with pytest.raises(ValueError):
        save_trace(tmp_path / "trace.xml", [])
    with pytest.raises(ValueError):
        load_trace(tmp_path / "trace.xml")
    with pytest.raises(ValueError):
        TraceScenario([])


def test_record_stream_adapts_population():
    topology = Topology.balanced(2, 1, 1, 2)
    population = ClientPopulation(topology, 5, random.Random(3),
                                  write_fraction=[0.5] * 5)
    stream = population.generate(40)
    events = record_stream(stream)
    assert len(events) == 40
    assert all(e.kind in ("read", "write") for e in events)
    assert any(e.kind == "write" for e in events)
    # Sites survive as Domains straight from the stream.
    assert events[0].site_path == stream.requests[0].site.path


# -- trace replay -----------------------------------------------------------

def test_trace_replay_determinism_from_file(tmp_path):
    """Same seed + same trace file => identical LoadStats."""
    topology = Topology.balanced(2, 2, 1, 2)
    population = ClientPopulation(topology, 8, random.Random(11),
                                  write_fraction=[0.2] * 8)
    path = tmp_path / "trace.jsonl"
    save_trace(path, record_stream(population.generate(60)))

    def one_run():
        sim = Simulator()
        rng = random.Random(99)

        def request(arrival):
            # Service time depends on the run's RNG and the arrival, so
            # any divergence in replay order or draws shows up in stats.
            yield sim.timeout(rng.uniform(0.01, 0.05) * (arrival.rank + 1))
            return arrival.kind == "read" or arrival.rank % 2 == 0

        scenario = TraceScenario.from_file(path, topology=topology)
        stats, elapsed = _drive(sim, scenario, request, seed=7)
        return (stats.issued, stats.ok, stats.failed,
                tuple(stats.latency.samples), elapsed)

    assert one_run() == one_run()


def test_trace_replay_respects_timestamps():
    sim = Simulator()
    events = [TraceEvent(1.0, "read", 0), TraceEvent(3.0, "read", 1)]
    issued_at = []

    def request(arrival):
        issued_at.append((arrival.rank, sim.now))
        yield sim.timeout(0.1)

    _drive(sim, TraceScenario(events), request)
    assert issued_at == [(0, 1.0), (1, 3.0)]


def test_trace_scenario_site_resolution():
    topology = Topology.balanced(1, 1, 1, 2)
    events = [TraceEvent(0.0, "read", 0, "r0/c0/m0/s1")]
    sim = Simulator()
    resolved = TraceScenario(events, topology=topology).arrivals(sim)
    assert resolved[0].site is topology.site("r0/c0/m0/s1")
    unresolved = TraceScenario(events).arrivals(sim)
    assert unresolved[0].site == "r0/c0/m0/s1"


def test_sequential_pacing_never_overlaps():
    sim = Simulator()
    events = [TraceEvent(0.0, "read", i) for i in range(5)]
    active = []
    peak = []

    def request(arrival):
        active.append(arrival.rank)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.remove(arrival.rank)

    stats, elapsed = _drive(
        sim, TraceScenario(events, pacing="sequential"), request)
    assert max(peak) == 1  # closed: one request at a time
    assert stats.ok == 5
    assert elapsed == pytest.approx(5.0)
    with pytest.raises(ValueError):
        TraceScenario(events, pacing="warp")


# -- request mixes ----------------------------------------------------------

def test_request_mix_draws_objects_and_kinds():
    mix = RequestMix(10, alpha=1.0,
                     write_fraction=[0.5] * 5 + [0.0] * 5)
    rng = random.Random(5)
    draws = [mix.draw(rng) for _ in range(2000)]
    ranks = [rank for rank, _ in draws]
    assert min(ranks) == 0 and max(ranks) < 10
    # Zipf head dominates.
    assert sum(1 for rank in ranks if rank < 3) > len(ranks) * 0.5
    # Writes only on objects that allow them.
    assert all(kind == "read" for rank, kind in draws if rank >= 5)
    writable = [kind for rank, kind in draws if rank < 5]
    assert 0.3 < sum(1 for k in writable if k == "write") / len(writable) \
        < 0.7


def test_request_mix_explicit_weights_and_validation():
    mix = RequestMix(3, weights=[0.0, 1.0, 0.0])
    rng = random.Random(1)
    assert {mix.draw(rng)[0] for _ in range(50)} == {1}
    assert mix.probability(1) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        RequestMix(0)
    with pytest.raises(ValueError):
        RequestMix(3, weights=[1.0, 2.0])
    with pytest.raises(ValueError):
        RequestMix(2, weights=[0.0, 0.0])
    with pytest.raises(ValueError):
        RequestMix(2, write_fraction=[0.5])
    with pytest.raises(ValueError):
        RequestMix(2, write_fraction=1.5)


def test_open_loop_scenario_with_mix_sets_kinds():
    sim = Simulator()
    mix = RequestMix(4, alpha=0.0, write_fraction=0.5)
    seen = []

    def request(arrival):
        seen.append((arrival.rank, arrival.kind))
        yield sim.timeout(0.001)

    scenario = OpenLoopScenario(PoissonSchedule(200.0), 200, mix=mix)
    stats, _elapsed = _drive(sim, scenario, request)
    assert stats.ok == 200
    kinds = {kind for _rank, kind in seen}
    assert kinds == {"read", "write"}
    assert len({rank for rank, _ in seen}) == 4


# -- closed-loop populations -------------------------------------------------

def test_closed_loop_thinks_before_every_request():
    """No request may be issued before its think time has elapsed."""
    sim = Simulator()
    topology = Topology.balanced(1, 1, 1, 2)
    think = 0.5
    service = 0.2
    issues = {}  # site path -> issue times

    def request(arrival):
        issues.setdefault(arrival.site.path, []).append(sim.now)
        yield sim.timeout(service)

    scenario = ClosedLoopScenario(clients=2, think_time=think,
                                  requests_per_client=4,
                                  sites=topology.sites, think="fixed")
    stats, _elapsed = _drive(sim, scenario, request)
    assert stats.ok == 8
    assert len(issues) == 2  # each client at its own site
    for times in issues.values():
        assert times[0] >= think  # thought before the first request too
        for earlier, later in zip(times, times[1:]):
            # think time + the client's own completed request
            assert later - earlier >= think + service


def test_closed_loop_waits_for_own_request():
    sim = Simulator()
    active = []
    peak = []

    def request(arrival):
        active.append(arrival.index)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.remove(arrival.index)

    scenario = ClosedLoopScenario(clients=3, think_time=0.0,
                                  requests_per_client=4)
    stats, elapsed = _drive(sim, scenario, request)
    assert stats.ok == 12
    assert max(peak) <= 3  # concurrency bounded by the population
    assert elapsed == pytest.approx(4.0)  # 4 sequential rounds per client


def test_closed_loop_validation():
    with pytest.raises(ValueError):
        ClosedLoopScenario(0, 1.0, 1)
    with pytest.raises(ValueError):
        ClosedLoopScenario(1, -1.0, 1)
    with pytest.raises(ValueError):
        ClosedLoopScenario(1, 1.0, 0)
    with pytest.raises(ValueError):
        ClosedLoopScenario(1, 1.0, 1, think="gaussian")


def test_closed_loop_accounts_failures():
    sim = Simulator()

    def request(arrival):
        yield sim.timeout(0.01)
        if arrival.index % 3 == 1:
            return False
        if arrival.index % 3 == 2:
            raise RuntimeError("boom")
        return True

    scenario = ClosedLoopScenario(clients=1, think_time=0.0,
                                  requests_per_client=9)
    stats, _elapsed = _drive(sim, scenario, request)
    assert stats.ok == 3 and stats.failed == 6
    assert stats.errors == {"RuntimeError": 3}


# -- hybrids and schedules ---------------------------------------------------

def test_burst_schedule_is_simultaneous():
    times = list(BurstSchedule().times(5, 3.0, random.Random(1)))
    assert times == [3.0] * 5


def test_hybrid_runs_everything_into_shared_stats():
    sim = Simulator()
    by_label = {"open": 0, "closed": 0}

    def request(arrival):
        # Open-loop arrivals carry rank from the mix (all rank 1 via
        # weights); closed-loop ones are rank 0.
        by_label["open" if arrival.rank == 1 else "closed"] += 1
        yield sim.timeout(0.01)

    scenario = HybridScenario([
        OpenLoopScenario(UniformSchedule(100.0), 20,
                         mix=RequestMix(2, weights=[0.0, 1.0])),
        ClosedLoopScenario(clients=2, think_time=0.05,
                           requests_per_client=5),
    ])
    stats, _elapsed = _drive(sim, scenario, request)
    assert scenario.count == 30
    assert stats.ok == 30
    assert by_label == {"open": 20, "closed": 10}
    with pytest.raises(ValueError):
        HybridScenario([])


def test_scenario_determinism_same_seed():
    def one_run(seed):
        sim = Simulator()

        def request(arrival):
            yield sim.timeout(0.001 * (arrival.rank + 1))

        scenario = HybridScenario([
            OpenLoopScenario(PoissonSchedule(50.0), 30,
                             mix=RequestMix(5, write_fraction=0.2)),
            ClosedLoopScenario(clients=3, think_time=0.1,
                               requests_per_client=5,
                               mix=RequestMix(5)),
        ])
        stats, elapsed = _drive(sim, scenario, request, seed=seed)
        return tuple(stats.latency.samples), elapsed

    assert one_run(4) == one_run(4)
    assert one_run(4) != one_run(5)


# -- soak runs ---------------------------------------------------------------

def _echo_world():
    world = World(topology=Topology.balanced(1, 1, 1, 2), seed=21)
    client_host = world.host("client", "r0/c0/m0/s0")
    server_host = world.host("server", "r0/c0/m0/s1")
    server = UdpRpcServer(server_host, 5300)
    server.register("echo", lambda ctx, args: args["x"])
    server.start()
    return world, client_host, server_host, server


def test_soak_injects_faults_and_checks_invariants():
    world, client_host, server_host, server = _echo_world()
    client = UdpRpcClient(client_host)

    def request(arrival):
        value = yield from client.call(server_host, 5300, "echo",
                                       {"x": arrival.index})
        return value == arrival.index

    stats = LoadStats()
    scenario = OpenLoopScenario(UniformSchedule(10.0), 60)
    soak = Soak(world, scenario, request, stats=stats, settle=1.0)
    base = world.now
    # The outage outlasts the client's whole retry budget (4 attempts
    # x 0.5s), so early-outage calls genuinely fail while late ones
    # are saved by a retry landing after the restart.
    soak.crash_restart(server_host, crash_at=base + 2.0,
                       restart_at=base + 4.5, recover=server.start)
    soak.invariant("all accounted",
                   lambda: stats.finished == 60)
    soak.invariant("some failed during the outage",
                   lambda: stats.failed > 0)
    soak.invariant("mostly fine", lambda: stats.ok >= 40)
    report = soak.run()
    assert report.ok, report.failures
    assert [(kind, target) for _w, kind, target in report.fault_log] \
        == [("crash", "server"), ("restart", "server")]
    assert report.invariants_checked == 3
    summary = report.summary()
    assert summary["violations"] == 0 and summary["faults"] == 2


def test_soak_reports_violated_invariants():
    world, client_host, server_host, _server = _echo_world()
    client = UdpRpcClient(client_host)

    def request(arrival):
        yield from client.call(server_host, 5300, "echo", {"x": 1})
        return True

    soak = Soak(world, OpenLoopScenario(UniformSchedule(50.0), 10),
                request, settle=0.0)
    soak.invariant("passes", lambda: True)
    soak.invariant("returns false", lambda: False)

    def raises():
        raise AssertionError("broken state")

    soak.invariant("raises", raises)
    report = soak.run()
    assert not report.ok
    assert [name for name, _why in report.failures] \
        == ["returns false", "raises"]
    assert "broken state" in dict(report.failures)["raises"]
