"""Tests for the open-loop load generator and its schedules."""

import random

import pytest

from repro.sim.kernel import Simulator
from repro.sim.rpc import UdpRpcClient, UdpRpcServer
from repro.sim.topology import Topology
from repro.sim.world import World
from repro.workloads.loadgen import (FlashCrowdSchedule, LoadGenerator,
                                     PoissonSchedule, UniformSchedule)
from repro.workloads.zipf import ZipfSampler


def test_uniform_schedule_is_exact():
    times = list(UniformSchedule(10.0).times(5, 2.0, random.Random(1)))
    assert times == [2.0, 2.1, 2.2, 2.3, 2.4]


def test_poisson_schedule_deterministic_and_increasing():
    first = list(PoissonSchedule(50.0).times(200, 0.0, random.Random(7)))
    second = list(PoissonSchedule(50.0).times(200, 0.0, random.Random(7)))
    assert first == second
    assert all(b > a for a, b in zip(first, second[1:]))
    # Mean inter-arrival should be near 1/rate.
    mean_gap = first[-1] / len(first)
    assert 0.5 / 50.0 < mean_gap < 2.0 / 50.0


def test_flash_crowd_schedule_spikes():
    schedule = FlashCrowdSchedule(base_rate=1.0, peak_rate=100.0,
                                  spike_start=10.0, spike_duration=5.0)
    assert schedule.rate_at(0.0) == 1.0
    assert schedule.rate_at(10.0) == 100.0
    assert schedule.rate_at(14.999) == 100.0
    assert schedule.rate_at(15.0) == 1.0
    times = list(schedule.times(400, 0.0, random.Random(3)))
    in_spike = sum(1 for t in times if 10.0 <= t < 15.0)
    # The spike window carries the bulk of the arrivals.
    assert in_spike > len(times) / 2


def test_flash_crowd_never_skips_the_spike():
    # Regression: with a sparse base rate (mean gap far longer than
    # the time to the spike), naive exponential sampling leaps clean
    # over the spike window.  Piecewise sampling must redraw at the
    # rate boundary instead.
    schedule = FlashCrowdSchedule(base_rate=0.01, peak_rate=100.0,
                                  spike_start=10.0, spike_duration=10.0)
    for seed in range(20):
        times = list(schedule.times(300, 0.0, random.Random(seed)))
        in_spike = sum(1 for t in times if 10.0 <= t < 20.0)
        assert in_spike > 200, "seed %d: spike skipped" % seed


def test_loadgen_shared_stats_does_not_end_runs_early():
    # Regression: completion used to compare the *shared* stats
    # counter against this generator's count, so a reused LoadStats
    # made a later run return while requests were still in flight.
    from repro.workloads.loadgen import LoadStats

    sim = Simulator()
    stats = LoadStats()

    def request(arrival):
        yield sim.timeout(10.0)

    first = LoadGenerator(sim, UniformSchedule(100.0), request, 5,
                          stats=stats)
    sim.run_until_complete(sim.process(first.run()), limit=1000)
    assert stats.finished == 5
    second = LoadGenerator(sim, UniformSchedule(100.0), request, 5,
                           stats=stats)
    elapsed = sim.run_until_complete(sim.process(second.run()), limit=1000)
    assert stats.finished == 10  # the second run waited for its own 5
    assert elapsed == pytest.approx(10.0 + 4 / 100.0)


def test_schedule_validation():
    with pytest.raises(ValueError):
        UniformSchedule(0.0)
    with pytest.raises(ValueError):
        PoissonSchedule(-1.0)
    with pytest.raises(ValueError):
        FlashCrowdSchedule(1.0, 0.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        FlashCrowdSchedule(1.0, 2.0, 0.0, 0.0)


def test_loadgen_open_loop_overlaps_requests():
    sim = Simulator()
    active = []
    peak = []

    def request(arrival):
        active.append(arrival.index)
        peak.append(len(active))
        yield sim.timeout(1.0)  # service takes longer than the gap
        active.remove(arrival.index)

    gen = LoadGenerator(sim, UniformSchedule(10.0), request, 20)
    process = sim.process(gen.run())
    elapsed = sim.run_until_complete(process, limit=100)
    # Open loop: arrivals kept coming while earlier ones were in
    # service, so concurrency well above 1 was reached.
    assert max(peak) > 5
    assert gen.stats.ok == 20
    assert gen.stats.failed == 0
    assert gen.stats.latency.count == 20
    assert gen.stats.latency.mean == pytest.approx(1.0)
    assert elapsed == pytest.approx(19 / 10.0 + 1.0)


def test_loadgen_accounts_failures_and_errors():
    sim = Simulator()

    def request(arrival):
        yield sim.timeout(0.01)
        if arrival.index % 3 == 1:
            return False  # application-level failure
        if arrival.index % 3 == 2:
            raise RuntimeError("boom")
        return True

    gen = LoadGenerator(sim, UniformSchedule(100.0), request, 9)
    sim.run_until_complete(sim.process(gen.run()), limit=100)
    assert gen.stats.ok == 3
    assert gen.stats.failed == 6
    assert gen.stats.errors == {"RuntimeError": 3}
    assert gen.stats.latency.count == 3
    summary = gen.stats.summary()
    assert summary["issued"] == 9 and summary["ok"] == 3


def test_loadgen_places_sites_and_ranks():
    sim = Simulator()
    topology = Topology.balanced(2, 1, 1, 2)
    rng = random.Random(11)
    seen_sites = set()
    seen_ranks = set()

    def request(arrival):
        seen_sites.add(arrival.site.path)
        seen_ranks.add(arrival.rank)
        yield sim.timeout(0.001)

    gen = LoadGenerator(sim, PoissonSchedule(100.0), request, 200, rng=rng,
                        sites=topology.sites,
                        popularity=ZipfSampler(20, 1.0, rng))
    sim.run_until_complete(sim.process(gen.run()), limit=100)
    assert len(seen_sites) == 4  # all sites drawn
    assert 0 in seen_ranks and len(seen_ranks) > 3
    assert gen.stats.ok == 200


def test_loadgen_10k_requests_leave_no_stale_timers():
    # Acceptance: a 10^4-request open-loop run over UDP RPC must leave
    # the simulator heap with no stale (cancelled-but-present) timers —
    # guard timers are cancelled on success, and compaction keeps the
    # lazily invalidated entries from accumulating.
    world = World(topology=Topology.balanced(1, 1, 1, 2), seed=13)
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c0/m0/s1")
    server = UdpRpcServer(b, 5300)
    server.register("echo", lambda ctx, args: args["x"])
    server.start()
    client = UdpRpcClient(a)

    def request(arrival):
        value = yield from client.call(b, 5300, "echo", {"x": arrival.index})
        return value == arrival.index

    gen = LoadGenerator(world.sim, PoissonSchedule(2000.0), request, 10_000,
                        rng=world.rng_for("loadgen-10k"))
    process = world.sim.process(gen.run())
    world.run_until(process, limit=1e6)
    world.run()  # drain the driver's own completion event
    assert gen.stats.ok == 10_000
    assert world.sim.stale_timer_count == 0
    assert world.sim.heap_size == 0
    # The heap never grew anywhere near one-entry-per-request.
    assert world.sim.peak_heap_size < 1000
