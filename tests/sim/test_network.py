"""Unit tests for the network cost model and traffic accounting."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.network import (DEFAULT_BANDWIDTH, DEFAULT_LATENCY,
                               LinkParameters, Network, NetworkError)
from repro.sim.topology import Level, Topology


@pytest.fixture
def net():
    sim = Simulator()
    topo = Topology.balanced(regions=2, countries=2, cities=2, sites=2)
    return Network(sim, topo)


def test_latency_tiering(net):
    topo = net.topology
    a = topo.site("r0/c0/m0/s0")
    assert net.latency(a, a) == DEFAULT_LATENCY[Level.SITE]
    assert (net.latency(a, topo.site("r0/c0/m0/s1"))
            == DEFAULT_LATENCY[Level.CITY])
    assert (net.latency(a, topo.site("r1/c0/m0/s0"))
            == DEFAULT_LATENCY[Level.WORLD])


def test_latency_monotone_in_distance(net):
    topo = net.topology
    a = topo.site("r0/c0/m0/s0")
    others = ["r0/c0/m0/s0", "r0/c0/m0/s1", "r0/c0/m1/s0",
              "r0/c1/m0/s0", "r1/c0/m0/s0"]
    latencies = [net.latency(a, topo.site(p)) for p in others]
    assert latencies == sorted(latencies)


def test_transfer_delay_includes_bandwidth(net):
    topo = net.topology
    a = topo.site("r0/c0/m0/s0")
    b = topo.site("r1/c0/m0/s0")
    size = 1_500_000
    expected = (DEFAULT_LATENCY[Level.WORLD]
                + size / DEFAULT_BANDWIDTH[Level.WORLD])
    assert net.transfer_delay(a, b, size) == pytest.approx(expected)


def test_delivery_and_metering(net):
    topo = net.topology
    a = topo.site("r0/c0/m0/s0")
    b = topo.site("r1/c0/m0/s0")
    arrived = []
    ok = net.deliver(a, b, "hostB", 1000, lambda _e: arrived.append(net.sim.now))
    assert ok
    net.sim.run()
    assert len(arrived) == 1
    assert arrived[0] == pytest.approx(net.transfer_delay(a, b, 1000))
    assert net.meter.bytes_by_level[Level.WORLD] == 1000
    assert net.meter.total_messages == 1


def test_wide_area_bytes_counts_region_and_world(net):
    topo = net.topology
    a = topo.site("r0/c0/m0/s0")
    net.deliver(a, topo.site("r0/c0/m0/s1"), "h", 10, lambda _e: None)
    net.deliver(a, topo.site("r0/c1/m0/s0"), "h", 100, lambda _e: None)
    net.deliver(a, topo.site("r1/c0/m0/s0"), "h", 1000, lambda _e: None)
    assert net.meter.wide_area_bytes() == 1100
    assert net.meter.wide_area_bytes(min_level=Level.WORLD) == 1000


def test_down_host_drops(net):
    topo = net.topology
    a = topo.site("r0/c0/m0/s0")
    net.set_host_down("dead")
    delivered = net.deliver(a, a, "dead", 10, lambda _e: None)
    assert not delivered
    assert net.meter.dropped_messages == 1
    net.set_host_down("dead", down=False)
    assert net.deliver(a, a, "dead", 10, lambda _e: None)


def test_partition_blocks_boundary_crossing(net):
    topo = net.topology
    inside = topo.site("r0/c0/m0/s0")
    inside2 = topo.site("r0/c0/m1/s0")
    outside = topo.site("r1/c0/m0/s0")
    net.partition_domain(topo.domain("r0"))
    assert not net.deliver(inside, outside, "h", 1, lambda _e: None)
    assert not net.deliver(outside, inside, "h", 1, lambda _e: None)
    assert net.deliver(inside, inside2, "h", 1, lambda _e: None)
    net.heal_domain(topo.domain("r0"))
    assert net.deliver(inside, outside, "h", 1, lambda _e: None)


def test_unreliable_loss_is_deterministic_per_seed():
    def drops(seed):
        sim = Simulator()
        topo = Topology.balanced(regions=2, countries=1, cities=1, sites=1)
        params = LinkParameters(loss={Level.WORLD: 0.5})
        net = Network(sim, topo, params, seed=seed)
        a = topo.site("r0/c0/m0/s0")
        b = topo.site("r1/c0/m0/s0")
        return [net.deliver(a, b, "h", 1, lambda _e: None) for _ in range(50)]

    assert drops(1) == drops(1)
    assert drops(1) != drops(2)  # overwhelmingly likely


def test_reliable_traffic_ignores_loss():
    sim = Simulator()
    topo = Topology.balanced(regions=2, countries=1, cities=1, sites=1)
    params = LinkParameters(loss={Level.WORLD: 1.0})
    net = Network(sim, topo, params)
    a = topo.site("r0/c0/m0/s0")
    b = topo.site("r1/c0/m0/s0")
    assert net.deliver(a, b, "h", 1, lambda _e: None, reliable=True)


def test_jitter_fraction_validation():
    with pytest.raises(NetworkError):
        LinkParameters(jitter_fraction=1.5)


def test_meter_reset_and_snapshot(net):
    topo = net.topology
    a = topo.site("r0/c0/m0/s0")
    net.deliver(a, a, "h", 42, lambda _e: None)
    snap = net.meter.snapshot()
    assert snap["SITE"] == 42
    net.meter.reset()
    assert net.meter.total_bytes == 0


# -- partition-membership caching -------------------------------------------


def _naive_crosses(partitioned, site_a, site_b):
    """The pre-cache reference: one ancestor walk per partitioned
    domain per message."""
    for domain in partitioned:
        inside_a = any(anc is domain for anc in site_a.ancestors())
        inside_b = any(anc is domain for anc in site_b.ancestors())
        if inside_a != inside_b:
            return True
    return False


def test_partition_cache_matches_naive_walk_across_mutations(net):
    topo = net.topology
    sites = list(topo.sites)
    mutations = [
        ("partition", topo.domain("r0")),
        ("partition", topo.domain("r1/c0")),
        ("partition", topo.domain("r0/c1/m0")),
        ("heal", topo.domain("r0")),
        ("partition", topo.site("r1/c1/m1/s1")),
        ("heal", topo.domain("r1/c0")),
        ("heal", topo.domain("r0/c1/m0")),
        ("heal", topo.site("r1/c1/m1/s1")),
    ]
    for op, domain in mutations:
        if op == "partition":
            net.partition_domain(domain)
        else:
            net.heal_domain(domain)
        for a in sites:
            for b in sites:
                assert net._crosses_partition(a, b) \
                    == _naive_crosses(net._partitioned, a, b), \
                    (op, domain.path, a.path, b.path)
    assert not net._partitioned


def test_partition_cache_is_invalidated_on_partition_and_heal(net):
    topo = net.topology
    a = topo.site("r0/c0/m0/s0")
    b = topo.site("r1/c0/m0/s0")
    assert not net._crosses_partition(a, b)
    net.partition_domain(topo.domain("r0"))
    assert net._crosses_partition(a, b)   # stale cache would say False
    net.heal_domain(topo.domain("r0"))
    assert not net._crosses_partition(a, b)


def test_partition_drop_metering_is_byte_identical_to_naive_walk():
    """Replaying the same partitioned traffic against the cached and
    the naive membership check meters byte-identical ledgers — the
    cache is a pure optimisation."""

    class NaiveNetwork(Network):
        def _crosses_partition(self, site_a, site_b):
            return _naive_crosses(self._partitioned, site_a, site_b)

    def one_run(cls):
        sim = Simulator()
        topo = Topology.balanced(regions=2, countries=2, cities=2, sites=2)
        network = cls(sim, topo, seed=5)
        sites = list(topo.sites)
        r0 = topo.domain("r0")
        c1 = topo.domain("r1/c1")
        for step in range(400):
            if step == 60:
                network.partition_domain(r0)
            if step == 180:
                network.partition_domain(c1)
            if step == 240:
                network.heal_domain(r0)
            if step == 330:
                network.heal_domain(c1)
            src = sites[(step * 7) % len(sites)]
            dst = sites[(step * 13 + 3) % len(sites)]
            network.deliver(src, dst, "host-%d" % (step % 5), 100 + step,
                            lambda _e: None, reliable=(step % 3 == 0))
        sim.run()
        meter = network.meter
        return (meter.snapshot(), dict(meter.messages_by_level),
                meter.dropped_messages)

    assert one_run(Network) == one_run(NaiveNetwork)
