"""Unit tests for connection and datagram RPC."""

import pytest

from repro.sim import rpc
from repro.sim.rpc import (RpcChannel, RpcFault, RpcServer, RpcTimeout,
                           UdpRpcClient, UdpRpcServer)
from repro.sim.topology import Level, Topology
from repro.sim.world import World


@pytest.fixture
def world():
    topo = Topology.balanced(regions=2, countries=2, cities=2, sites=2)
    return World(topology=topo, seed=3)


def _echo_server(world, host, port=7000):
    server = RpcServer(host, port)
    server.register("echo", lambda ctx, args: args.get("text"))
    server.register("add", lambda ctx, args: args["a"] + args["b"])

    def slow(ctx, args):
        yield world.sim.timeout(args.get("delay", 1.0))
        return "slept"

    server.register("slow", slow)

    def fails(ctx, args):
        raise ValueError("deliberate")

    server.register("fails", fails)
    server.start()
    return server


def test_one_shot_call(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c1/m0/s0")
    _echo_server(world, b)

    def client():
        value = yield from rpc.call(a, b, 7000, "echo", {"text": "hi"})
        return value

    proc = a.spawn(client())
    assert world.run_until(proc, limit=100) == "hi"


def test_remote_fault_propagates(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    _echo_server(world, b)

    def client():
        try:
            yield from rpc.call(a, b, 7000, "fails", {})
        except RpcFault as fault:
            return (fault.kind, fault.message)

    proc = a.spawn(client())
    assert world.run_until(proc, limit=100) == ("ValueError", "deliberate")


def test_unknown_method_fault(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    _echo_server(world, b)

    def client():
        try:
            yield from rpc.call(a, b, 7000, "nope", {})
        except RpcFault as fault:
            return fault.kind

    proc = a.spawn(client())
    assert world.run_until(proc, limit=100) == "NoSuchMethod"


def test_channel_reuse_is_cheaper_than_reconnect(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r1/c0/m0/s0")
    _echo_server(world, b)

    def reuse():
        channel = yield from RpcChannel.open(a, b, 7000)
        start = world.now
        for i in range(5):
            yield from channel.call("add", {"a": i, "b": 1})
        channel.close()
        return world.now - start

    proc = a.spawn(reuse())
    reused_duration = world.run_until(proc, limit=1000)

    world2 = World(topology=Topology.balanced(2, 2, 2, 2), seed=3)
    a2 = world2.host("client", "r0/c0/m0/s0")
    b2 = world2.host("server", "r1/c0/m0/s0")
    _echo_server(world2, b2)

    def reconnect():
        start = world2.now
        for i in range(5):
            yield from rpc.call(a2, b2, 7000, "add", {"a": i, "b": 1})
        return world2.now - start

    proc2 = a2.spawn(reconnect())
    reconnect_duration = world2.run_until(proc2, limit=1000)
    assert reused_duration < reconnect_duration


def test_concurrent_requests_interleave(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    _echo_server(world, b)

    def client():
        channel = yield from RpcChannel.open(a, b, 7000)
        start = world.now
        # Issue two slow calls through two sub-processes sharing a channel.
        first = world.sim.process(channel.call("slow", {"delay": 2.0}))
        second = world.sim.process(channel.call("slow", {"delay": 2.0}))
        yield first
        yield second
        channel.close()
        return world.now - start

    proc = a.spawn(client())
    duration = world.run_until(proc, limit=100)
    assert duration < 3.0  # served concurrently, not 4s serially


def test_server_concurrency_limit(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    server = RpcServer(b, 7001, concurrency=1)

    def slow(ctx, args):
        yield world.sim.timeout(1.0)
        return "done"

    server.register("slow", slow)
    server.start()

    def client():
        channel = yield from RpcChannel.open(a, b, 7001)
        start = world.now
        first = world.sim.process(channel.call("slow", {}))
        second = world.sim.process(channel.call("slow", {}))
        yield first
        yield second
        channel.close()
        return world.now - start

    proc = a.spawn(client())
    duration = world.run_until(proc, limit=100)
    assert duration >= 2.0  # serialised by the concurrency limit


def test_call_timeout(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    _echo_server(world, b)

    def client():
        try:
            yield from rpc.call(a, b, 7000, "slow", {"delay": 10.0},
                                timeout=1.0)
        except RpcTimeout:
            return "timed out"

    proc = a.spawn(client())
    assert world.run_until(proc, limit=100) == "timed out"


def test_context_carries_source(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    server = RpcServer(b, 7000)
    seen = []
    server.register("who", lambda ctx, args: seen.append(ctx.src_host))
    server.start()

    def client():
        yield from rpc.call(a, b, 7000, "who", {})

    proc = a.spawn(client())
    world.run_until(proc, limit=100)
    assert seen == ["client"]


# -- UDP RPC -----------------------------------------------------------------


def _udp_server(world, host, port=5300):
    server = UdpRpcServer(host, port)
    server.register("lookup", lambda ctx, args: {"found": args["key"].upper()})

    def fails(ctx, args):
        raise KeyError("missing")

    server.register("fails", fails)
    server.start()
    return server


def test_udp_rpc_round_trip(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c1/m0/s0")
    _udp_server(world, b)
    client = UdpRpcClient(a)

    def run():
        value = yield from client.call(b, 5300, "lookup", {"key": "abc"})
        return value

    proc = a.spawn(run())
    assert world.run_until(proc, limit=100) == {"found": "ABC"}


def test_udp_rpc_fault(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c0/m0/s1")
    _udp_server(world, b)
    client = UdpRpcClient(a)

    def run():
        try:
            yield from client.call(b, 5300, "fails", {})
        except RpcFault as fault:
            return fault.kind

    proc = a.spawn(run())
    assert world.run_until(proc, limit=100) == "KeyError"


def test_udp_rpc_retries_through_loss(world):
    # 60% loss on world links: with 3 retries the call should usually
    # get through; the seed is fixed so this specific run succeeds.
    world.network.params.loss[Level.WORLD] = 0.6
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r1/c0/m0/s0")
    _udp_server(world, b)
    client = UdpRpcClient(a, timeout=1.0, retries=8)

    def run():
        value = yield from client.call(b, 5300, "lookup", {"key": "x"})
        return value

    proc = a.spawn(run())
    assert world.run_until(proc, limit=1000) == {"found": "X"}


def test_channel_close_fails_pending_callers(world):
    # Regression: close() used to kill the dispatcher without failing
    # pending waiters, deadlocking concurrent callers without a timeout.
    from repro.sim.transport import ConnectionClosed

    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    _echo_server(world, b)
    outcome = []

    def client():
        channel = yield from RpcChannel.open(a, b, 7000)

        def blocked():
            try:
                yield from channel.call("slow", {"delay": 60.0})
            except ConnectionClosed:
                outcome.append(("closed", world.now))

        world.sim.process(blocked())
        yield world.sim.timeout(1.0)
        channel.close()
        yield world.sim.timeout(1.0)

    proc = a.spawn(client())
    world.run_until(proc, limit=100)
    # Released at close time (~1s, after the connect RTT), not at the
    # 60s service time and not never.
    assert len(outcome) == 1
    assert outcome[0][0] == "closed"
    assert outcome[0][1] < 2.0


def test_accept_race_closes_connection(world):
    # Regression: a connection accepted in the same instant the
    # listener closed used to leak (never served, never closed).
    b = world.host("server", "r0/c0/m0/s1")
    server = RpcServer(b, 7000)
    server.start()
    world.run(until=world.now)  # let the accept loop arm its accept()
    listener = server._listener

    class FakeConn:
        closed = False

        def close(self):
            self.closed = True

    conn = FakeConn()
    listener._pending.put(conn)  # the accept fires with this conn...
    listener.close()             # ...but the listener just closed
    world.run(until=world.now)
    assert conn.closed


def test_udp_rpc_times_out_against_dead_host(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c0/m0/s1")
    _udp_server(world, b)
    b.crash()
    client = UdpRpcClient(a, timeout=0.5, retries=2)

    def run():
        try:
            yield from client.call(b, 5300, "lookup", {"key": "x"})
        except RpcTimeout:
            return "gave up at %.1f" % world.now

    proc = a.spawn(run())
    assert world.run_until(proc, limit=100) == "gave up at 1.5"


def test_udp_restart_fails_orphaned_waiters(world):
    # Regression: _ensure_open() used to clear _pending silently after
    # a host restart, leaving surviving callers to stall until their
    # retry timers expired.  They must fail immediately instead.
    from repro.sim.transport import ConnectionClosed

    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c0/m0/s1")  # never started: no replies
    client = UdpRpcClient(a, timeout=30.0, retries=0)
    outcome = []

    def stranded():
        try:
            yield from client.call(b, 5300, "lookup", {"key": "x"})
        except ConnectionClosed:
            outcome.append(("failed fast", world.now))
        except RpcTimeout:
            outcome.append(("stalled until timeout", world.now))

    # Survives the crash: not registered with host a.
    world.sim.process(stranded())

    def chaos():
        yield world.sim.timeout(1.0)
        a.crash()
        a.restart()
        yield world.sim.timeout(1.0)
        # The next call re-opens the socket and must evict the orphan.
        try:
            yield from client.call(b, 5300, "lookup", {"key": "y"})
        except RpcTimeout:
            pass

    proc = world.sim.process(chaos())
    world.run_until(proc, limit=100)
    assert outcome == [("failed fast", 2.0)]


def test_udp_calls_leave_no_timers_in_heap(world):
    # The cancellation invariant: N successful calls leave the event
    # heap with no stale (cancelled-but-present) timers and nothing
    # pending from the calls themselves.
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c1/m0/s0")
    _udp_server(world, b)
    client = UdpRpcClient(a)

    def run():
        for index in range(100):
            yield from client.call(b, 5300, "lookup", {"key": "k%d" % index})

    proc = a.spawn(run())
    world.run_until(proc, limit=1000)
    world.run()  # drain the driver's own completion event
    assert world.sim.stale_timer_count == 0
    assert world.sim.heap_size == 0


def test_rpc_channel_counters_bind_to_registry():
    from repro.analysis.telemetry import MetricsRegistry
    from repro.sim.topology import Topology
    from repro.sim.world import World

    world = World(topology=Topology.balanced(1, 1, 1, 2), seed=3)
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")
    server = rpc.RpcServer(b, 7000)
    server.register("echo", lambda ctx, args: args["x"])
    server.register("boom", lambda ctx, args: 1 / 0)
    server.start()

    def driver():
        channel = yield from rpc.RpcChannel.open(a, b, 7000)
        channel.bind_metrics(world.metrics, "chan")
        value = yield from channel.call("echo", {"x": 5})
        assert value == 5
        try:
            yield from channel.call("boom", {})
        except rpc.RpcFault:
            pass
        channel.close()

    world.run_until(a.spawn(driver()), limit=1e6)
    assert world.metrics.get("chan.calls").value == 2
    assert world.metrics.get("chan.faults").value == 1
    assert world.metrics.get("chan.timeouts").value == 0


# -- size-memoised envelopes -------------------------------------------------


def test_request_envelope_size_matches_live_walk():
    """The precomputed envelope constants must mirror encoded_size
    exactly — accounting (and so transfer delays) must not shift by a
    byte when the memoised path is used."""
    from repro.sim.rpc import _request_base, _request_size
    from repro.sim.serde import encoded_size

    for method, src, args in [
        ("echo", "client", {"x": 17}),
        ("lookup", "gls-node-3", {"oid": "ab" * 16, "hops": 4}),
        ("insert", "h", {}),
        ("püsh", "host-ü", {"blob": b"\x00" * 100, "names": ["a", "bb"]}),
    ]:
        request = {"id": 12345, "method": method, "args": args,
                   "src": src}
        assert _request_size(method, src, encoded_size(args)) \
            == encoded_size(request), (method, src, args)
        # The per-(client, method) memoised base must agree, on the
        # cold miss and on the cached probe alike.
        cache = {}
        for _ in range(2):
            assert _request_base(cache, method, src) + encoded_size(args) \
                == encoded_size(request), (method, src, args)


def test_reply_envelope_size_matches_live_walk():
    from repro.sim.rpc import _reply_size
    from repro.sim.serde import encoded_size

    ok_reply = {"id": 7, "ok": True, "value": {"status": 200, "n": 3}}
    assert _reply_size(ok_reply) == encoded_size(ok_reply)
    err_reply = {"id": 8, "ok": False,
                 "error": ("ValueError", "deliberate")}
    assert _reply_size(err_reply) == encoded_size(err_reply)
    # Malformed request: the echoed id may be None — the helper must
    # fall back to the honest walk rather than charging an int's size.
    none_id = {"id": None, "ok": False, "error": ("NoSuchMethod", "x")}
    assert _reply_size(none_id) == encoded_size(none_id)


def test_udp_retry_resends_same_sized_envelope(world):
    """A retried call re-sends an envelope of identical wire size (the
    args are measured once; only the int id changes)."""
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    # No server at the port: every attempt times out and retries.
    client = UdpRpcClient(a, timeout=0.2, retries=2)
    meter = world.network.meter

    def caller():
        try:
            yield from client.call(b, 5300, "echo", {"text": "hello"})
        except RpcTimeout:
            return "timed out"

    before = meter.total_bytes
    proc = a.spawn(caller())
    assert world.run_until(proc, limit=100) == "timed out"
    sent = meter.total_bytes - before
    assert sent % 3 == 0, "three identical attempts must charge equally"
    assert client.retries_sent == 2


# -- pooled guard deadlines --------------------------------------------------


def test_udp_send_failure_does_not_leak_waiter(world):
    # Regression: a synchronous send_to failure (socket destroyed by a
    # crash, no restart yet) used to leave the fresh waiter registered
    # in _pending, where the next _ensure_open sweep would fail an
    # event nobody waits on.
    from repro.sim.transport import TransportError

    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c0/m0/s1")
    client = UdpRpcClient(a, timeout=0.5, retries=1)
    outcome = []

    def caller():
        try:
            yield from client.call(b, 5300, "lookup", {"key": "x"})
        except TransportError:
            outcome.append("send failed")

    a.crash()  # closes the client's socket; host stays down
    world.sim.process(caller())  # survives: not registered with host a
    world.run()
    assert outcome == ["send failed"]
    assert client._pending == {}
    assert client.deadline_pool.live == 0


def test_udp_crash_restart_mid_retry_recovers(world):
    # Regression: _ensure_open ran only once per call, so a crash +
    # restart while the first attempt's deadline was pending made the
    # retry loop raise against the destroyed socket instead of
    # re-opening and retrying.
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c0/m0/s1")
    client = UdpRpcClient(a, timeout=0.5, retries=2)
    result = []

    def caller():
        value = yield from client.call(b, 5300, "lookup", {"key": "ab"})
        result.append((value, world.now))

    world.sim.process(caller())  # survives the crash below

    def chaos():
        yield world.sim.timeout(0.2)
        a.crash()
        a.restart()
        # The server comes up before the first attempt's deadline, so
        # the *second* attempt (sent on a re-opened socket) succeeds.
        _udp_server(world, b)

    proc = world.sim.process(chaos())
    world.run_until(proc, limit=100)
    world.run()
    assert result and result[0][0] == {"found": "AB"}
    assert client.retries_sent == 1
    assert client._pending == {}


def test_udp_server_stop_mid_serve_is_not_counted(world):
    # Regression: _reply incremented requests_served even when stop()
    # had closed the socket, drifting served-vs-answered accounting.
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c0/m0/s1")
    server = UdpRpcServer(b, 5300)
    server.register("quick", lambda ctx, args: "ok")

    def slow(ctx, args):
        yield world.sim.timeout(1.0)
        return "late"

    server.register("slow", slow)
    server.start()
    client = UdpRpcClient(a, timeout=0.3, retries=1)
    outcome = []

    def caller():
        value = yield from client.call(b, 5300, "quick", {})
        outcome.append(value)
        try:
            yield from client.call(b, 5300, "slow", {})
        except RpcTimeout:
            outcome.append("timed out")

    def stopper():
        yield world.sim.timeout(0.5)
        server.stop()

    proc = a.spawn(caller())
    world.sim.process(stopper())
    world.run_until(proc, limit=100)
    world.run()
    assert outcome == ["ok", "timed out"]
    # One reply actually went out (the quick call); the slow reply was
    # unsendable after stop() and must not count as served.
    assert server.requests_served == 1


def test_udp_guarded_calls_pool_timer_churn(world):
    # The tentpole's acceptance numbers: guarded calls must no longer
    # cost one kernel timer each.  An echo round trip schedules two
    # delivery timers; the guard contribution drops from 1 per call to
    # ~timeout/RTT per call via the pool.
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c0/m0/s1")  # same site: ~0.7ms RTT
    _udp_server(world, b)
    client = UdpRpcClient(a)
    calls = 200

    def run():
        for index in range(calls):
            yield from client.call(b, 5300, "lookup", {"key": "k%d" % index})

    before = world.sim.timers_scheduled
    proc = a.spawn(run())
    world.run_until(proc, limit=1000)
    scheduled = world.sim.timers_scheduled - before
    # Two delivery timers per round trip + well under one guard arm
    # per call (the pool re-arms roughly once per timeout interval).
    assert scheduled / calls < 2.2, scheduled
    pool = client.deadline_pool
    assert pool.armed_total == calls
    assert pool.timer_arms < calls / 10
    assert pool.live == 0
    world.run()
    assert len(pool) == 0
    assert world.sim.heap_size == 0
    assert world.sim.stale_timer_count == 0


def test_pooled_and_per_call_guards_are_byte_identical_under_loss(world):
    # The pooled client must replay *exactly* like the per-call-timer
    # reference implementation — same completion times, same retry and
    # timeout counts — even when heavy loss exercises every expiry
    # path.  (The broader trace-replay pin lives in
    # tests/workloads/test_scenario_engine.py.)
    def one_run(pooled):
        w = World(topology=Topology.balanced(2, 2, 2, 2), seed=3)
        w.network.params.loss[Level.WORLD] = 0.5
        a = w.host("client", "r0/c0/m0/s0")
        b = w.host("node", "r1/c0/m0/s0")
        _udp_server(w, b)
        client = UdpRpcClient(a, timeout=0.4, retries=3, pooled=pooled)
        trail = []

        def caller():
            for index in range(150):
                try:
                    value = yield from client.call(b, 5300, "lookup",
                                                   {"key": "k%d" % index})
                    trail.append((w.now, "ok", value["found"]))
                except RpcTimeout:
                    trail.append((w.now, "timeout", index))

        proc = a.spawn(caller())
        w.run_until(proc, limit=1e6)
        return trail, w.now, client.retries_sent, client.timeouts_hit

    pooled = one_run(True)
    reference = one_run(False)
    assert pooled == reference
    assert pooled[2] > 0  # the loss actually exercised retries


def test_channel_timeouts_share_the_simulator_pool(world):
    from repro.sim.deadlines import shared_pool

    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    _echo_server(world, b)
    pool = shared_pool(world.sim)

    def client():
        channel = yield from RpcChannel.open(a, b, 7000)
        for i in range(20):
            yield from channel.call("add", {"a": i, "b": 1}, timeout=5.0)
        channel.close()

    armed_before = pool.armed_total
    proc = a.spawn(client())
    world.run_until(proc, limit=100)
    # One guard per call plus the connect guard, all pooled.
    assert pool.armed_total - armed_before == 21
    assert pool.live == 0
    world.run()
    assert len(pool) == 0
