"""Unit tests for the hierarchical topology."""

import pytest

from repro.sim.topology import Domain, Level, Topology, TopologyError


@pytest.fixture
def topo():
    return Topology.from_spec({
        "eu": {"nl": {"ams": ["vu", "uva"], "rot": ["eur"]},
               "de": {"ber": ["tu"]}},
        "na": {"us": {"nyc": ["nyu"], "sfo": ["ucb"]}},
    })


def test_site_paths(topo):
    site = topo.site("eu/nl/ams/vu")
    assert site.level == Level.SITE
    assert site.path == "eu/nl/ams/vu"


def test_unknown_site_raises(topo):
    with pytest.raises(TopologyError):
        topo.site("eu/nl/ams/nowhere")


def test_domain_lookup(topo):
    country = topo.domain("eu/nl")
    assert country.level == Level.COUNTRY
    assert topo.domain("") is topo.world


def test_separation_levels(topo):
    vu = topo.site("eu/nl/ams/vu")
    assert Topology.separation(vu, vu) == Level.SITE
    assert Topology.separation(vu, topo.site("eu/nl/ams/uva")) == Level.CITY
    assert Topology.separation(vu, topo.site("eu/nl/rot/eur")) == Level.COUNTRY
    assert Topology.separation(vu, topo.site("eu/de/ber/tu")) == Level.REGION
    assert Topology.separation(vu, topo.site("na/us/nyc/nyu")) == Level.WORLD


def test_lca_is_shared_ancestor(topo):
    vu = topo.site("eu/nl/ams/vu")
    eur = topo.site("eu/nl/rot/eur")
    assert Topology.lca(vu, eur) is topo.domain("eu/nl")


def test_ancestors_end_at_root(topo):
    vu = topo.site("eu/nl/ams/vu")
    chain = list(vu.ancestors())
    assert chain[0] is vu
    assert chain[-1] is topo.world
    assert [d.level for d in chain] == [
        Level.SITE, Level.CITY, Level.COUNTRY, Level.REGION, Level.WORLD]


def test_sites_enumeration(topo):
    nl_sites = [s.path for s in topo.domain("eu/nl").sites()]
    assert nl_sites == ["eu/nl/ams/vu", "eu/nl/ams/uva", "eu/nl/rot/eur"]


def test_subtree_preorder(topo):
    eu = topo.domain("eu")
    names = [d.name for d in eu.subtree()]
    assert names[0] == "eu"
    assert "nl" in names and "vu" in names


def test_balanced_shape():
    topo = Topology.balanced(regions=2, countries=3, cities=2, sites=2)
    assert len(topo.sites) == 2 * 3 * 2 * 2
    assert topo.site("r1/c2/m1/s0").level == Level.SITE


def test_level_skip_rejected():
    topo = Topology()
    with pytest.raises(TopologyError):
        Domain("bad-city", Level.CITY, topo.world)


def test_duplicate_child_rejected():
    topo = Topology()
    topo.add_region("eu")
    with pytest.raises(TopologyError):
        topo.add_region("eu")


def test_disjoint_topologies_share_no_ancestor():
    a = Topology().add_region("eu")
    b = Topology().add_region("eu")
    with pytest.raises(TopologyError):
        Topology.lca(a, b)


def test_region_of_full_hierarchy():
    topo = Topology.balanced(2, 2, 2, 2)
    site = topo.site("r1/c0/m1/s0")
    region = site.region()
    assert region.level == Level.REGION
    assert region.path == "r1"
    # Any ancestor resolves to the same region.
    assert site.parent.region() is region
    assert region.region() is region


def test_region_of_shallow_domains():
    # Regression: hand-built domains without the full five-level chain
    # used to make callers IndexError on ancestors()[3].
    lonely = Domain("lonely", Level.SITE)
    assert lonely.region() is lonely

    city = Domain("metropolis", Level.CITY)
    site = Domain("campus", Level.SITE, city)
    # Topmost ancestor below the (parentless) root stands in.
    assert site.region() is site


# -- thousand-site scale ------------------------------------------------------


def test_thousand_site_topology_builds_and_resolves():
    # 8*8*8*4 = 2048 sites; construction precomputes lineage/path once
    # per domain, so this stays well under a second.
    topo = Topology.balanced(regions=8, countries=8, cities=8, sites=4)
    sites = topo.sites
    assert len(sites) == 2048
    probe = topo.site("r7/c7/m7/s3")
    assert probe.path == "r7/c7/m7/s3"
    assert probe.region().path == "r7"
    # Every site resolves its own path back to itself.
    for site in sites[::97]:
        assert topo.site(site.path) is site


def test_separation_at_scale():
    topo = Topology.balanced(regions=8, countries=8, cities=8, sites=4)
    a = topo.site("r0/c0/m0/s0")
    assert Topology.separation(a, a) == Level.SITE
    assert Topology.separation(a, topo.site("r0/c0/m0/s1")) == Level.CITY
    assert Topology.separation(a, topo.site("r0/c0/m7/s0")) == Level.COUNTRY
    assert Topology.separation(a, topo.site("r0/c7/m0/s0")) == Level.REGION
    assert Topology.separation(a, topo.site("r7/c0/m0/s0")) == Level.WORLD


def test_separation_cache_bounded_by_touched_pairs():
    # The cache must scale with the pairs actually exercised, not with
    # site-count squared: thousands of sites with a handful of active
    # pairs keeps it tiny.
    from repro.sim.kernel import Simulator
    from repro.sim.network import Network

    topo = Topology.balanced(regions=8, countries=8, cities=8, sites=4)
    net = Network(Simulator(), topo)
    a = topo.site("r0/c0/m0/s0")
    peers = [topo.site("r%d/c1/m1/s1" % i) for i in range(8)]
    for peer in peers:
        for _ in range(3):  # repeats hit the cache, not grow it
            net.separation(a, peer)
    assert len(net._separation_cache) == len(peers)


def test_lca_deep_vs_shallow_nodes():
    topo = Topology.balanced(2, 2, 2, 2)
    site = topo.site("r1/c1/m1/s1")
    region = topo.domain("r1")
    assert Topology.lca(site, region) is region
    assert Topology.lca(region, site) is region
    assert Topology.lca(site, topo.world) is topo.world


def test_region_memoised_for_hand_built_shallow_domains():
    # region() caches its answer; the memo must hold the *resolved*
    # domain even for shallow chains that lack a REGION ancestor.
    city = Domain("metropolis", Level.CITY)
    site = Domain("campus", Level.SITE, city)
    first = site.region()
    assert site.region() is first
    assert first is site
    # A full-depth site memoises the true region.
    topo = Topology.balanced(2, 1, 1, 1)
    deep = topo.site("r1/c0/m0/s0")
    assert deep.region() is deep.region()
    assert deep.region().path == "r1"
