"""Unit tests for the pooled guard-deadline subsystem.

The contract under test: a pool keeps at most one kernel timer armed
however many deadlines are pending, and pooling is *invisible* to
event ordering — every expiry fires at exactly the ``(time, seq)``
position a dedicated per-call Timeout would have occupied.  Several
tests therefore run the same scenario twice, once with pooled
deadlines and once with plain per-call timers, and require identical
firing orders.
"""

import pytest

from repro.analysis.telemetry import MetricsRegistry
from repro.sim.deadlines import (FifoDeadlinePool, OrderedDeadlinePool,
                                 shared_pool)
from repro.sim.kernel import Simulator


def _collector(order, sim, label):
    return lambda: order.append((label, sim.now))


# -- the single-armed-timer property ----------------------------------------


def test_fifo_pool_keeps_one_kernel_timer_for_many_deadlines():
    sim = Simulator()
    pool = FifoDeadlinePool(sim, 10.0)
    entries = [pool.add(lambda: None) for _ in range(500)]
    # 500 pending deadlines, one armed kernel timer.
    assert pool.live == 500
    assert sim.heap_size == 1
    assert pool.timer_arms == 1
    for entry in entries:
        assert pool.cancel(entry)
    assert pool.live == 0
    # Cancel is lazy: the armed timer is left to fire and clean up.
    sim.run()
    assert len(pool) == 0
    assert sim.heap_size == 0
    assert sim.stale_timer_count == 0


def test_fifo_steady_state_arms_once_per_timeout_window():
    # The UdpRpcClient pattern: arm, resolve quickly, arm the next.
    # The kernel timer should be re-armed roughly once per timeout
    # interval, not once per call.
    sim = Simulator()
    pool = FifoDeadlinePool(sim, 1.0)

    def churn():
        for _ in range(1000):
            entry = pool.add(lambda: None)
            yield sim.timeout(0.01)  # "reply" long before the deadline
            pool.cancel(entry)

    sim.process(churn())
    sim.run()
    # 1000 guarded calls over 10 simulated seconds with a 1s timeout:
    # on the order of ten kernel arms, not a thousand.
    assert pool.timer_arms <= 20
    assert pool.expired_total == 0
    assert pool.live == 0 and len(pool) == 0


def test_fifo_pool_rejects_negative_delay_but_allows_zero():
    from repro.sim.kernel import SimulationError

    with pytest.raises(SimulationError):
        FifoDeadlinePool(Simulator(), -1.0)
    # Zero is degenerate but legal: guards expire at the instant they
    # are armed (FIFO ordering still holds on a monotonic clock).
    sim = Simulator()
    pool = FifoDeadlinePool(sim, 0.0)
    order = []
    pool.add(_collector(order, sim, "a"))
    pool.add(_collector(order, sim, "b"))
    sim.run()
    assert [label for label, _t in order] == ["a", "b"]
    assert all(t == 0.0 for _label, t in order)


# -- expiry order and (time, seq) exactness ---------------------------------


def _fifo_tie_order(pooled):
    """Two same-instant guard expiries with an unrelated timer armed
    between them: the firing order must interleave by arming order."""
    sim = Simulator()
    order = []
    if pooled:
        pool = FifoDeadlinePool(sim, 1.0)
        pool.add(_collector(order, sim, "guard-a"))
        sim.timeout_at(1.0).add_callback(
            lambda _e: order.append(("between", sim.now)))
        pool.add(_collector(order, sim, "guard-b"))
    else:
        for label in ("guard-a", None, "guard-b"):
            if label is None:
                sim.timeout_at(1.0).add_callback(
                    lambda _e: order.append(("between", sim.now)))
            else:
                cb = _collector(order, sim, label)
                sim.timeout(1.0).add_callback(lambda _e, cb=cb: cb())
    sim.run()
    return order


def test_fifo_same_instant_expiries_interleave_exactly_like_timers():
    pooled = _fifo_tie_order(pooled=True)
    reference = _fifo_tie_order(pooled=False)
    assert pooled == reference
    assert [label for label, _t in pooled] \
        == ["guard-a", "between", "guard-b"]
    assert all(t == 1.0 for _label, t in pooled)


def test_fifo_cancelled_middle_entry_is_skipped():
    sim = Simulator()
    pool = FifoDeadlinePool(sim, 1.0)
    order = []
    pool.add(_collector(order, sim, "a"))
    doomed = pool.add(_collector(order, sim, "b"))
    pool.add(_collector(order, sim, "c"))
    pool.cancel(doomed)
    sim.run()
    assert [label for label, _t in order] == ["a", "c"]
    assert pool.expired_total == 2
    assert pool.cancelled_total == 1


def test_cancel_is_idempotent_and_noop_after_expiry():
    sim = Simulator()
    pool = FifoDeadlinePool(sim, 1.0)
    entry = pool.add(lambda: None)
    assert pool.cancel(entry) is True
    assert pool.cancel(entry) is False  # second cancel: no double count
    expired = pool.add(lambda: None)
    sim.run()
    assert pool.expired_total == 1
    assert pool.cancel(expired) is False  # already fired
    assert pool.cancelled_total == 1
    assert pool.live == 0


def _ordered_tie_order(pooled):
    """Mixed-delay guards meeting at one instant, with unrelated
    timers wedged between their sequence numbers."""
    sim = Simulator()
    order = []

    def note(label):
        return lambda _e: order.append((label, sim.now))

    def driver():
        yield sim.timeout(0.5)
        # All of these meet at t = 2.0 with interleaved seqs.
        if pooled:
            pool = OrderedDeadlinePool(sim)
            pool.add(_collector(order, sim, "guard-late-armed"), 1.5)
            sim.timeout_at(2.0).add_callback(note("plain-1"))
            pool.add(_collector(order, sim, "guard-2"), 1.5)
            sim.timeout_at(2.0).add_callback(note("plain-2"))
            # A shorter deadline arriving later: fires first overall.
            pool.add(_collector(order, sim, "guard-early"), 1.0)
        else:
            for label, delay in (("guard-late-armed", 1.5), (None, None),
                                 ("guard-2", 1.5), (None, None),
                                 ("guard-early", 1.0)):
                if label is None:
                    sim.timeout_at(2.0).add_callback(
                        note("plain-%d" % (len(order) + 1)))
                else:
                    cb = _collector(order, sim, label)
                    sim.timeout(delay).add_callback(
                        lambda _e, cb=cb: cb())

    sim.process(driver())
    sim.run()
    return order


def test_ordered_same_instant_expiries_interleave_exactly_like_timers():
    pooled = _ordered_tie_order(pooled=True)
    # The unpooled reference names its plain timers by arrival position,
    # so compare labels positionally rather than the capture closures.
    assert [label for label, _t in pooled] == [
        "guard-early", "guard-late-armed", "plain-1", "guard-2", "plain-2"]
    assert [t for _label, t in pooled] == [1.5, 2.0, 2.0, 2.0, 2.0]
    reference = _ordered_tie_order(pooled=False)
    assert [t for _label, t in reference] == [t for _label, t in pooled]
    # Guards fire in the same positions in both runs.
    assert [i for i, (label, _t) in enumerate(pooled)
            if label.startswith("guard")] \
        == [i for i, (label, _t) in enumerate(reference)
            if label.startswith("guard")]


def test_ordered_pool_shelves_and_reclaims_on_undercut():
    sim = Simulator()
    pool = OrderedDeadlinePool(sim)
    order = []
    pool.add(_collector(order, sim, "slow"), 10.0)
    assert pool.timer_arms == 1
    pool.add(_collector(order, sim, "fast"), 1.0)
    # The shorter deadline undercut the armed timer: the superseded
    # timer is shelved (still pending at its reserved position, to be
    # reclaimed when "slow" becomes earliest again) and a new one is
    # armed for "fast".
    assert pool.timer_arms == 2
    assert pool.timer_shelved == 1
    assert sim.heap_size == 2
    sim.run()
    assert [label for label, _t in order] == ["fast", "slow"]
    assert [t for _label, t in order] == [1.0, 10.0]
    # "slow" fired through the reclaimed timer: no third kernel arm.
    assert pool.timer_arms == 2
    assert sim.heap_size == 0 and sim.stale_timer_count == 0
    # A later, longer deadline must NOT touch the armed timer.
    pool.add(_collector(order, sim, "later"), 5.0)
    arms = pool.timer_arms
    pool.add(_collector(order, sim, "latest"), 7.0)
    assert pool.timer_arms == arms


def test_ordered_pool_orphaned_shelved_timer_is_a_noop():
    sim = Simulator()
    pool = OrderedDeadlinePool(sim)
    order = []
    doomed = pool.add(_collector(order, sim, "doomed"), 2.0)
    pool.add(_collector(order, sim, "fast"), 1.0)   # shelves "doomed"
    pool.add(_collector(order, sim, "slow"), 10.0)
    pool.cancel(doomed)
    sim.run()
    # The shelved timer for "doomed" fired at t=2 as a pure no-op (its
    # entry died); "fast" and "slow" expired normally around it.
    assert [label for label, _t in order] == ["fast", "slow"]
    assert pool.live == 0 and len(pool) == 0
    assert not pool._shelf
    assert sim.heap_size == 0 and sim.stale_timer_count == 0


def test_ordered_pool_tie_keeps_armed_timer():
    sim = Simulator()
    pool = OrderedDeadlinePool(sim)
    order = []
    pool.add(_collector(order, sim, "first"), 3.0)
    pool.add(_collector(order, sim, "second"), 3.0)  # tie: no re-arm
    assert pool.timer_arms == 1
    assert pool.timer_shelved == 0
    sim.run()
    assert [label for label, _t in order] == ["first", "second"]


# -- lazy cleanup and accounting --------------------------------------------


def test_dead_prefix_is_discarded_when_the_armed_timer_fires():
    sim = Simulator()
    pool = FifoDeadlinePool(sim, 1.0)
    fired = []
    entries = [pool.add(lambda: fired.append(True)) for _ in range(10)]
    for entry in entries:
        pool.cancel(entry)
    # All ten deadlines were cancelled, but lazily: the entries sit in
    # the deque until the armed timer fires and sweeps the dead prefix.
    assert len(pool) == 10 and pool.live == 0
    sim.run()
    assert fired == []
    assert len(pool) == 0
    assert pool.expired_total == 0
    assert sim.heap_size == 0 and sim.stale_timer_count == 0


def test_pool_metrics_bind_and_drain():
    sim = Simulator()
    registry = MetricsRegistry()
    pool = FifoDeadlinePool(sim, 1.0)
    pool.bind_metrics(registry, "pool")
    kept = pool.add(lambda: None)
    pool.add(lambda: None)
    pool.cancel(kept)
    assert registry.get("pool.armed").value == 2
    assert registry.get("pool.cancelled").value == 1
    assert registry.get("pool.depth").value == 1
    sim.run()
    assert registry.get("pool.expired").value == 1
    assert registry.get("pool.depth").value == 0
    # Two kernel arms: the initial one (for the later-cancelled head)
    # and the re-arm for the live entry when that timer fired.
    assert registry.get("pool.timer_arms").value == 2
    assert registry.get("pool.timer_shelved").value == 0


def test_shared_pool_is_one_per_simulator():
    sim_a, sim_b = Simulator(), Simulator()
    pool_a = shared_pool(sim_a)
    assert shared_pool(sim_a) is pool_a
    assert shared_pool(sim_b) is not pool_a
    assert isinstance(pool_a, OrderedDeadlinePool)


def test_expiry_callback_errors_surface_like_timer_callbacks():
    # A failing expiry callback propagates out of run(), exactly as a
    # failing per-call timer callback would.
    sim = Simulator()
    pool = FifoDeadlinePool(sim, 1.0)

    def boom():
        raise RuntimeError("expiry exploded")

    pool.add(boom)
    with pytest.raises(RuntimeError, match="expiry exploded"):
        sim.run()


def test_ordered_pool_rejects_negative_delay_without_poisoning():
    # Regression: a negative delay used to mutate the pool (heap entry
    # + live count) before the kernel arm raised, stranding a
    # past-dated entry that crashed the next firing of the shared
    # simulator-wide pool.
    from repro.sim.kernel import SimulationError

    sim = Simulator()
    pool = OrderedDeadlinePool(sim)
    order = []
    with pytest.raises(SimulationError):
        pool.add(_collector(order, sim, "bad"), -0.5)
    assert pool.live == 0 and len(pool) == 0
    # The pool stays fully usable afterwards.
    pool.add(_collector(order, sim, "good"), 1.0)
    sim.run()
    assert [label for label, _t in order] == ["good"]
