"""Tests for finite-capacity RPC servers (workers + service time)."""

import pytest

from repro.sim.rpc import RpcChannel, RpcServer
from repro.sim.topology import Topology
from repro.sim.world import World


@pytest.fixture
def world():
    return World(topology=Topology.balanced(2, 1, 1, 2), seed=23)


def _capacity_server(world, host, workers, service_time):
    server = RpcServer(host, 9000, concurrency=workers,
                       service_time=service_time)
    server.register("work", lambda ctx, args: args["n"])
    server.start()
    return server


def test_service_time_charged_per_request(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    server = _capacity_server(world, b, workers=1, service_time=0.5)

    def client():
        channel = yield from RpcChannel.open(a, b, 9000)
        start = world.now
        yield from channel.call("work", {"n": 1})
        channel.close()
        return world.now - start

    elapsed = world.run_until(a.spawn(client()), limit=1e6)
    assert elapsed >= 0.5
    assert server.busy_time == pytest.approx(0.5)


def test_requests_queue_beyond_worker_pool(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    _capacity_server(world, b, workers=2, service_time=1.0)

    def client():
        channel = yield from RpcChannel.open(a, b, 9000)
        start = world.now
        calls = [world.sim.process(channel.call("work", {"n": i}))
                 for i in range(6)]
        for call in calls:
            yield call
        channel.close()
        return world.now - start

    elapsed = world.run_until(a.spawn(client()), limit=1e6)
    # Six 1 s jobs over two workers: three serial batches.
    assert elapsed >= 3.0
    assert elapsed < 4.5


def test_unlimited_server_does_not_queue(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    server = RpcServer(b, 9000, service_time=1.0)  # no worker limit
    server.register("work", lambda ctx, args: args["n"])
    server.start()

    def client():
        channel = yield from RpcChannel.open(a, b, 9000)
        start = world.now
        calls = [world.sim.process(channel.call("work", {"n": i}))
                 for i in range(6)]
        for call in calls:
            yield call
        channel.close()
        return world.now - start

    elapsed = world.run_until(a.spawn(client()), limit=1e6)
    assert elapsed < 2.0  # all six in parallel


def test_stopped_server_refuses_new_connections(world):
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("server", "r0/c0/m0/s1")
    server = _capacity_server(world, b, workers=1, service_time=0.0)
    server.stop()

    from repro.sim.transport import ConnectRefused

    def client():
        try:
            yield from RpcChannel.open(a, b, 9000)
        except ConnectRefused:
            return "refused"

    assert world.run_until(a.spawn(client()), limit=1e6) == "refused"
