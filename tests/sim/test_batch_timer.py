"""Unit tests for the batch-capable kernel timer path.

A :class:`BatchTimeout` carries many reserved-seq callbacks under one
armed timer; the contract is that firing order and instants are
exactly what dedicated per-entry :class:`Timeout` objects would have
produced.  These tests pin that contract, including the run-queue
admission path for same-instant batches.
"""

import pytest

from repro.sim.kernel import BatchTimeout, Event, SimulationError, Simulator


def entries_for(sim, specs, log):
    """Build sorted [at, seq, callback] entries from (at, tag) specs,
    reserving seqs in spec order (the contiguous block contract)."""
    entries = [[at, sim.reserve_seq(),
                lambda _e, tag=tag: log.append((sim.now, tag))]
               for at, tag in specs]
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return entries


def test_batch_fires_each_entry_at_its_instant():
    sim = Simulator()
    log = []
    BatchTimeout(sim, entries_for(sim, [(1.0, "a"), (2.0, "b"),
                                        (3.0, "c")], log))
    sim.run()
    assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]
    assert sim.now == 3.0


def test_same_instant_entries_consumed_inline_in_seq_order():
    sim = Simulator()
    log = []
    BatchTimeout(sim, entries_for(sim, [(1.0, "a"), (1.0, "b"),
                                        (1.0, "c"), (2.0, "d")], log))
    events_before = sim.events_processed
    sim.run()
    assert log == [(1.0, "a"), (1.0, "b"), (1.0, "c"), (2.0, "d")]
    # The whole same-instant group cost one kernel event, the
    # re-armed tail another.
    assert sim.events_processed - events_before == 2


def test_batch_occupies_one_heap_slot():
    sim = Simulator()
    log = []
    BatchTimeout(sim, entries_for(
        sim, [(float(i), i) for i in range(1, 21)], log))
    assert sim.heap_size == 1
    sim.run()
    assert len(log) == 20


def test_unsorted_send_order_is_sorted_into_arrival_order():
    sim = Simulator()
    log = []
    # Send order a, b, c but arrival instants inverted: the seq drawn
    # first belongs to the *latest* arrival, exactly like variable
    # message sizes invert arrival order on a real burst.
    BatchTimeout(sim, entries_for(sim, [(3.0, "a"), (1.0, "b"),
                                        (2.0, "c")], log))
    sim.run()
    assert log == [(1.0, "b"), (2.0, "c"), (3.0, "a")]


def test_batch_matches_dedicated_timeouts_against_foreign_timers():
    """The pinning case: interleave a batch with foreign timers and
    zero-delay cascades, and compare the observable firing order
    against the same schedule built from per-entry Timeouts."""

    def drive(batched):
        sim = Simulator()
        log = []

        def note(tag):
            return lambda _e: log.append((sim.now, tag))

        # Foreign timers scheduled before the batch draw lower seqs.
        sim.timeout(1.0).add_callback(note("early-foreign"))
        sim.timeout(2.0).add_callback(note("tie-foreign"))
        specs = [(1.0, "b0"), (2.0, "b1"), (2.0, "b2"), (4.0, "b3")]
        if batched:
            entries = [[at, sim.reserve_seq(), note(tag)]
                       for at, tag in specs]
            entries.sort(key=lambda entry: (entry[0], entry[1]))
            BatchTimeout(sim, entries)
        else:
            for at, tag in specs:
                sim.timeout_at(at).add_callback(note(tag))
        # And one scheduled after: larger seq, fires after batch ties.
        sim.timeout_at(2.0).add_callback(note("late-foreign"))
        sim.run()
        return log

    assert drive(batched=True) == drive(batched=False)


def test_same_instant_batch_admitted_to_run_queue():
    sim = Simulator()
    log = []

    def spark():
        yield sim.timeout(1.0)
        # Batch armed *at* the current instant: the head must go to
        # the run queue, not the heap, and the whole vector fires now.
        BatchTimeout(sim, entries_for(sim, [(1.0, "x"), (1.0, "y")], log))
        heap_after = sim.heap_size
        yield sim.timeout(1.0)
        return heap_after

    process = sim.process(spark())
    sim.run()
    assert log == [(1.0, "x"), (1.0, "y")]
    assert process.value == 0  # never touched the heap


def test_run_queue_order_preserved_around_same_instant_batch():
    sim = Simulator()
    log = []

    def spark():
        yield sim.timeout(1.0)
        before = Event(sim)
        before.add_callback(lambda _e: log.append("before"))
        before.succeed()
        BatchTimeout(sim, entries_for(sim, [(1.0, "batch")], log))
        after = Event(sim)
        after.add_callback(lambda _e: log.append("after"))
        after.succeed()

    sim.process(spark())
    sim.run()
    assert log == ["before", (1.0, "batch"), "after"]


def test_callbacks_may_schedule_more_work_inline():
    sim = Simulator()
    log = []

    def chase(_event):
        log.append(("fired", sim.now))
        sim.timeout(0.5).add_callback(
            lambda _e: log.append(("chased", sim.now)))

    entries = [[1.0, sim.reserve_seq(), chase],
               [1.0, sim.reserve_seq(),
                lambda _e: log.append(("second", sim.now))]]
    BatchTimeout(sim, entries)
    sim.run()
    # The zero-delay follow-up scheduled by the first callback fires
    # *after* the same-instant second entry (larger seq), exactly as
    # with dedicated timers.
    assert log == [("fired", 1.0), ("second", 1.0), ("chased", 1.5)]


def test_empty_batch_is_a_noop():
    sim = Simulator()
    BatchTimeout(sim, [])
    sim.run()
    assert sim.events_processed == 0


def test_pending_counts_down():
    sim = Simulator()
    log = []
    batch = BatchTimeout(sim, entries_for(sim, [(1.0, "a"), (2.0, "b")],
                                          log))
    assert batch.pending == 2
    sim.run(until=1.5)
    assert batch.pending == 1
    sim.run()
    assert batch.pending == 0


def test_enqueue_reserved_rejects_stale_seq():
    sim = Simulator()
    stale = sim.reserve_seq()
    Event(sim).succeed()  # draws a newer seq into the run queue
    event = Event(sim)
    event._ok = True
    event._value = None
    with pytest.raises(SimulationError):
        sim._enqueue_reserved(stale, event)
