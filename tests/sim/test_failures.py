"""Unit tests for scheduled failure injection."""

import pytest

from repro.sim.failures import FailureInjector
from repro.sim.topology import Level, Topology
from repro.sim.world import World


@pytest.fixture
def world():
    return World(topology=Topology.balanced(2, 2, 2, 2), seed=1)


def test_crash_and_restart_schedule(world):
    host = world.host("victim", "r0/c0/m0/s0")
    injector = FailureInjector(world)
    recovered = []
    injector.crash_restart(host, crash_at=5.0, restart_at=10.0,
                           recover=lambda: recovered.append(world.now))
    world.run(until=4.0)
    assert host.up
    world.run(until=6.0)
    assert not host.up
    world.run(until=11.0)
    assert host.up
    assert recovered == [10.0]
    assert [(t, kind) for t, kind, _ in injector.log] == [
        (5.0, "crash"), (10.0, "restart")]


def test_restart_before_crash_rejected(world):
    host = world.host("victim", "r0/c0/m0/s0")
    injector = FailureInjector(world)
    with pytest.raises(ValueError):
        injector.crash_restart(host, crash_at=5.0, restart_at=5.0)


def test_partition_window(world):
    injector = FailureInjector(world)
    domain = world.topology.domain("r0/c0")
    injector.partition_domain(domain, start=2.0, duration=3.0)
    inside = world.topology.site("r0/c0/m0/s0")
    outside = world.topology.site("r1/c0/m0/s0")

    world.run(until=1.0)
    assert world.network.deliver(inside, outside, "h", 1, lambda _e: None)
    world.run(until=3.0)
    assert not world.network.deliver(inside, outside, "h", 1, lambda _e: None)
    world.run(until=6.0)
    assert world.network.deliver(inside, outside, "h", 1, lambda _e: None)


def test_loss_setting_validated(world):
    injector = FailureInjector(world)
    with pytest.raises(ValueError):
        injector.set_loss(Level.WORLD, 1.5)
    injector.set_loss(Level.WORLD, 0.25)
    assert world.network.params.loss[Level.WORLD] == 0.25
