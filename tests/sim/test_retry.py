"""Unit tests for the shared retry-policy subsystem (sim/retry.py)."""

import pytest

from repro.sim.retry import (ExponentialBackoff, FixedRetry, RetryBudget,
                             RetryPolicy, jitter_rng)
from repro.sim.rpc import RpcTimeout, UdpRpcClient, UdpRpcServer
from repro.sim.topology import Level, Topology
from repro.sim.world import World


@pytest.fixture
def world():
    topo = Topology.balanced(regions=2, countries=2, cities=2, sites=2)
    return World(topology=topo, seed=3)


def _udp_server(world, host, port=5300):
    server = UdpRpcServer(host, port)
    server.register("lookup",
                    lambda ctx, args: {"found": args["key"].upper()})
    server.start()
    return server


def _no_rng():
    raise AssertionError("policy drew randomness it must not need")


# -- RetryBudget -------------------------------------------------------------


def test_budget_burst_then_refill():
    budget = RetryBudget(rate=1.0, burst=2.0)
    assert budget.spend(0.0)
    assert budget.spend(0.0)
    assert not budget.spend(0.0)          # burst exhausted
    assert not budget.spend(0.5)          # half a token is not enough
    assert budget.spend(1.5)              # 1.5 tokens refilled by now
    assert budget.granted == 3
    assert budget.denied == 2


def test_budget_refill_caps_at_burst():
    budget = RetryBudget(rate=10.0, burst=3.0)
    for _ in range(3):
        assert budget.spend(0.0)
    # A long idle period refills to burst, not beyond.
    for _ in range(3):
        assert budget.spend(100.0)
    assert not budget.spend(100.0)


def test_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(rate=-1.0, burst=1.0)
    with pytest.raises(ValueError):
        RetryBudget(rate=1.0, burst=0.0)


def test_budget_metrics_bind(world):
    budget = RetryBudget(rate=1.0, burst=5.0)
    budget.bind_metrics(world.metrics, "test_budget")
    budget.spend(0.0)
    snapshot = world.metrics.snapshot()
    assert snapshot["test_budget.granted"] == 1
    assert snapshot["test_budget.tokens"] == 4.0


# -- policies ---------------------------------------------------------------


def test_fixed_retry_never_delays_or_draws_randomness():
    policy = FixedRetry(timeout=0.5, retries=3)
    assert policy.attempts == 4
    for attempt in range(1, 5):
        assert policy.retry_delay(attempt, _no_rng) == 0.0


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        ExponentialBackoff(base=0.0)
    with pytest.raises(ValueError):
        ExponentialBackoff(multiplier=0.5)
    with pytest.raises(ValueError):
        ExponentialBackoff(base=1.0, max_delay=0.5)
    with pytest.raises(ValueError):
        ExponentialBackoff(jitter=1.0)


def test_backoff_schedule_without_jitter_is_exact():
    policy = ExponentialBackoff(base=0.1, multiplier=2.0, max_delay=0.5,
                                jitter=0.0)
    delays = [policy.retry_delay(k, _no_rng) for k in range(1, 6)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]  # capped at max_delay


def test_backoff_jitter_is_deterministic_and_bounded():
    policy = ExponentialBackoff(base=0.1, multiplier=2.0, max_delay=5.0,
                                jitter=0.5)

    def draw(key):
        rng = policy.make_rng(key)
        return [policy.retry_delay(k, lambda: rng) for k in range(1, 6)]

    first, again = draw("host-a"), draw("host-a")
    other = draw("host-b")
    assert first == again                # same key -> same schedule
    assert first != other                # distinct keys desynchronize
    for k, delay in enumerate(first, start=1):
        ceiling = min(5.0, 0.1 * 2.0 ** (k - 1))
        assert ceiling * 0.5 <= delay <= ceiling


def test_jitter_rng_is_stable_across_processes():
    # Seeded by crc32 of the key, NOT by Python's randomized hash().
    assert jitter_rng("gls-node").random() == jitter_rng("gls-node").random()


# -- UdpRpcClient adoption ---------------------------------------------------


def _lossy_run(world_seed, client_factory):
    """One deterministic lossy workload; returns a replay fingerprint."""
    topo = Topology.balanced(regions=2, countries=2, cities=2, sites=2)
    world = World(topology=topo, seed=world_seed)
    world.network.params.loss[Level.WORLD] = 0.6
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r1/c0/m0/s0")
    _udp_server(world, b)
    client = client_factory(a)
    outcomes = []

    def run():
        for key in ("x", "y", "z"):
            try:
                value = yield from client.call(b, 5300, "lookup",
                                               {"key": key})
                outcomes.append(value["found"])
            except RpcTimeout:
                outcomes.append("timeout")

    proc = a.spawn(run())
    world.run_until(proc, limit=1000)
    return (outcomes, world.now, world.sim.events_processed,
            client.calls, client.retries_sent, client.timeouts_hit)


def test_fixed_retry_policy_is_byte_identical_to_legacy():
    legacy = _lossy_run(3, lambda a: UdpRpcClient(a, timeout=1.0, retries=8))
    policy = _lossy_run(3, lambda a: UdpRpcClient(
        a, policy=FixedRetry(timeout=1.0, retries=8)))
    assert legacy == policy
    assert legacy[4] > 0  # the lossy link actually forced retries


def test_backoff_policy_still_gets_through_loss():
    fingerprint = _lossy_run(3, lambda a: UdpRpcClient(
        a, policy=ExponentialBackoff(timeout=1.0, retries=8, base=0.1,
                                     jitter=0.5)))
    assert fingerprint[0] == ["X", "Y", "Z"]
    # And a second run replays identically (deterministic jitter).
    assert fingerprint == _lossy_run(3, lambda a: UdpRpcClient(
        a, policy=ExponentialBackoff(timeout=1.0, retries=8, base=0.1,
                                     jitter=0.5)))


def test_backoff_desynchronizes_clients_against_dead_host(world):
    # Two clients start identical calls at the same instant against a
    # dead host.  FixedRetry retries land at the same times; jittered
    # backoff spreads them.
    dead = world.host("node", "r0/c1/m0/s0")
    dead.crash()
    logs = {}
    for name in ("client-a", "client-b"):
        host = world.host(name, "r0/c0/m0/s%d" % (name == "client-b"))
        client = UdpRpcClient(host, policy=ExponentialBackoff(
            timeout=0.5, retries=3, base=0.2, jitter=0.5))
        client.retry_log = logs.setdefault(name, [])

        def run(c=client):
            try:
                yield from c.call(dead, 5300, "lookup", {"key": "x"})
            except RpcTimeout:
                pass

        world.sim.process(run())
    world.run(until=60.0)
    assert len(logs["client-a"]) == 3 and len(logs["client-b"]) == 3
    assert logs["client-a"] != logs["client-b"]


def test_fixed_retry_clients_do_synchronize_against_dead_host(world):
    # The contrast case for the test above: the legacy discipline
    # retries on the same beat.
    dead = world.host("node", "r0/c1/m0/s0")
    dead.crash()
    logs = {}
    for name in ("client-a", "client-b"):
        host = world.host(name, "r0/c0/m0/s%d" % (name == "client-b"))
        client = UdpRpcClient(host, timeout=0.5, retries=3)
        client.retry_log = logs.setdefault(name, [])

        def run(c=client):
            try:
                yield from c.call(dead, 5300, "lookup", {"key": "x"})
            except RpcTimeout:
                pass

        world.sim.process(run())
    world.run(until=60.0)
    assert logs["client-a"] == logs["client-b"] == [0.5, 1.0, 1.5]


def test_budget_denial_ends_call_early(world):
    dead = world.host("node", "r0/c1/m0/s0")
    dead.crash()
    host = world.host("client", "r0/c0/m0/s0")
    budget = RetryBudget(rate=0.0, burst=2.0)  # two retries, ever
    client = UdpRpcClient(host, policy=ExponentialBackoff(
        timeout=0.5, retries=10, base=0.1, jitter=0.0, budget=budget))
    outcome = []

    def run():
        try:
            yield from client.call(dead, 5300, "lookup", {"key": "x"})
        except RpcTimeout:
            outcome.append(world.now)

    world.sim.process(run())
    world.run(until=120.0)
    assert outcome  # gave up long before 11 x 0.5s of attempts
    assert client.retries_sent == 2
    assert client.budget_denied == 1
    assert budget.denied == 1


def test_budget_shared_across_clients_caps_system_retries(world):
    dead = world.host("node", "r0/c1/m0/s0")
    dead.crash()
    budget = RetryBudget(rate=0.0, burst=3.0)
    clients = []
    for index in range(4):
        host = world.host("client-%d" % index, "r0/c0/m0/s0")
        client = UdpRpcClient(host, policy=ExponentialBackoff(
            timeout=0.5, retries=5, base=0.1, jitter=0.5, budget=budget))
        clients.append(client)

        def run(c=client):
            try:
                yield from c.call(dead, 5300, "lookup", {"key": "x"})
            except RpcTimeout:
                pass

        world.sim.process(run())
    world.run(until=120.0)
    assert sum(c.retries_sent for c in clients) == 3
    assert sum(c.budget_denied for c in clients) == 4 - 3 + 3  # remainder


# -- the retries_sent bugfix -------------------------------------------------


def test_crash_mid_retry_does_not_count_unsent_retry(world):
    # Regression: retries_sent was incremented before _ensure_open /
    # send_to could fail on a socket a crash had closed, counting a
    # retry that never left the host.
    from repro.sim.transport import TransportError

    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c0/m0/s1")  # never started: no replies
    client = UdpRpcClient(a, timeout=0.5, retries=4)
    outcome = []

    def stranded():
        try:
            yield from client.call(b, 5300, "lookup", {"key": "x"})
        except TransportError:
            outcome.append(("send failed", world.now))
        except RpcTimeout:
            outcome.append(("timed out", world.now))

    # Survives the crash: not registered with host a.
    world.sim.process(stranded())

    def chaos():
        # Crash between the first attempt and its retry: the retry's
        # send hits a closed socket on a downed host.
        yield world.sim.timeout(0.25)
        a.crash()

    world.sim.process(chaos())
    world.run(until=30.0)
    assert outcome and outcome[0][0] == "send failed"
    assert client.retries_sent == 0


def test_metrics_expose_budget_denied(world):
    host = world.host("client", "r0/c0/m0/s0")
    client = UdpRpcClient(host, timeout=0.5, retries=1)
    client.bind_metrics(world.metrics, "udp_test")
    snapshot = world.metrics.snapshot()
    assert snapshot["udp_test.budget_denied"] == 0
