"""Pinning tests: ``deliver_burst``/``send_burst`` vs the scalar path.

The batched delivery layer must be *observably identical* to n scalar
``deliver``/``send_to`` calls — same metering, same per-message
loss/partition/down checks, same RNG draw order, same arrival
``(time, seq)`` ordering — differing only in kernel cost (one timer
per burst).  Every test here runs both paths and compares.
"""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.network import LinkParameters, Network
from repro.sim.topology import Level, Topology
from repro.sim.world import World


def make_net(seed=0, **params):
    sim = Simulator()
    topo = Topology.balanced(regions=2, countries=2, cities=2, sites=2)
    return Network(sim, topo, params=LinkParameters(**params), seed=seed)


def burst_vs_scalar(messages, *, src="r0/c0/m0/s0", dst="r1/c0/m0/s0",
                    dst_host="hostB", setup=None, **params):
    """Run the same message list through both paths; return both
    observations as (arrival log, meter snapshot, drops, scheduled)."""
    results = []
    for batched in (False, True):
        net = make_net(**params)
        topo = net.topology
        a, b = topo.site(src), topo.site(dst)
        if setup is not None:
            setup(net)
        log = []

        def deliver_fn(tag):
            return lambda _event: log.append((net.sim.now, tag))

        if batched:
            scheduled = net.deliver_burst(
                a, b, dst_host,
                [(size, deliver_fn(tag)) for size, tag in messages])
        else:
            scheduled = sum(
                net.deliver(a, b, dst_host, size, deliver_fn(tag))
                for size, tag in messages)
        net.sim.run()
        results.append((log, net.meter.snapshot(),
                        net.meter.dropped_messages, scheduled))
    return results


def test_burst_matches_scalar_clean_path():
    scalar, burst = burst_vs_scalar([(100 * (i + 1), i) for i in range(8)])
    assert burst == scalar
    assert burst[3] == 8


def test_burst_matches_scalar_with_loss_and_jitter():
    scalar, burst = burst_vs_scalar(
        [(500, i) for i in range(40)],
        loss={Level.WORLD: 0.3}, jitter_fraction=0.2, seed=11)
    assert burst == scalar
    assert burst[2] > 0  # losses actually happened
    assert burst[3] < 40


def test_burst_matches_scalar_down_host():
    scalar, burst = burst_vs_scalar(
        [(100, i) for i in range(5)],
        setup=lambda net: net.set_host_down("hostB"))
    assert burst == scalar
    assert burst[3] == 0
    assert burst[2] == 5  # every message metered as a drop
    assert burst[1]["WORLD"] == 500  # ... but bytes charged at send


def test_burst_matches_scalar_across_partition():
    def cut(net):
        net.partition_domain(net.topology.domain("r0"))

    scalar, burst = burst_vs_scalar([(100, i) for i in range(5)],
                                    setup=cut)
    assert burst == scalar
    assert burst[3] == 0


def test_varied_sizes_arrive_in_size_order_not_send_order():
    # Bigger messages take longer: send order 0..3 with shrinking
    # sizes must arrive reversed, on both paths identically.
    scalar, burst = burst_vs_scalar(
        [(1_000_000 - 200_000 * i, i) for i in range(4)])
    assert burst == scalar
    arrival_tags = [tag for _t, tag in burst[0]]
    assert arrival_tags == [3, 2, 1, 0]


def test_burst_uses_one_timer():
    net = make_net()
    topo = net.topology
    a, b = topo.site("r0/c0/m0/s0"), topo.site("r0/c0/m0/s1")
    before = net.sim.timers_scheduled
    net.deliver_burst(a, b, "h", [(100, lambda _e: None)
                                  for _ in range(50)])
    assert net.sim.timers_scheduled - before == 1
    net.sim.run()


def test_burst_counters():
    net = make_net(loss={Level.COUNTRY: 1.0})
    topo = net.topology
    a, b = topo.site("r0/c0/m0/s0"), topo.site("r0/c0/m1/s0")
    assert net.deliver_burst(a, b, "h", [(10, lambda _e: None)] * 4) == 0
    assert (net.burst_calls, net.burst_messages) == (1, 0)
    same = topo.site("r0/c0/m0/s1")
    assert net.deliver_burst(a, same, "h",
                             [(10, lambda _e: None)] * 3) == 3
    assert (net.burst_calls, net.burst_messages) == (2, 3)


def test_empty_burst():
    net = make_net()
    topo = net.topology
    a, b = topo.site("r0/c0/m0/s0"), topo.site("r0/c0/m0/s1")
    assert net.deliver_burst(a, b, "h", []) == 0
    net.sim.run()
    assert net.sim.events_processed == 0


# -- transport: send_burst ---------------------------------------------------


def udp_world(seed=3, **params):
    world = World(topology=Topology.balanced(2, 2, 2, 2), seed=seed,
                  params=LinkParameters(**params))
    a = world.host("alpha", world.topology.site("r0/c0/m0/s0"))
    b = world.host("beta", world.topology.site("r1/c1/m1/s1"))
    return world, a, b


def drive_udp(batched, **params):
    world, a, b = udp_world(**params)
    sender = a.udp_socket(100)
    receiver = b.udp_socket(200)
    log = []

    def drain():
        while True:
            datagram = yield receiver.recv()
            log.append((world.now, datagram.payload, datagram.size,
                        datagram.src_port))
    b.spawn(drain())
    items = [(("chunk", i), 64 + 32 * i) for i in range(12)]
    if batched:
        sent = sender.send_burst(b, 200, items)
    else:
        for payload, size in items:
            sender.send_to(b, 200, payload, size=size)
        sent = None
    world.run(until=30.0)
    return log, world.network.meter.snapshot(), sent


def test_send_burst_matches_send_to():
    scalar = drive_udp(batched=False)
    burst = drive_udp(batched=True)
    assert burst[0] == scalar[0]
    assert burst[1] == scalar[1]
    assert len(burst[0]) == 12


def test_send_burst_matches_send_to_lossy():
    scalar = drive_udp(batched=False, loss={Level.WORLD: 0.25},
                       jitter_fraction=0.1)
    burst = drive_udp(batched=True, loss={Level.WORLD: 0.25},
                      jitter_fraction=0.1)
    assert burst[0] == scalar[0]
    assert burst[1] == scalar[1]
    assert burst[2] == len(burst[0])  # scheduled == arrived (no drops
    # after the loss draw: host is up, port bound)


def test_send_burst_closed_socket_raises():
    from repro.sim.transport import TransportError
    world, a, b = udp_world()
    sock = a.udp_socket(1)
    sock.close()
    with pytest.raises(TransportError):
        sock.send_burst(b, 2, [("x", None)])
