"""Unit tests for hosts, datagrams and connections."""

import pytest

from repro.sim.kernel import SimulationError
from repro.sim.network import LinkParameters
from repro.sim.topology import Level, Topology
from repro.sim.transport import (ConnectionClosed, ConnectRefused,
                                 ConnectTimeout, HostDown, TransportError)
from repro.sim.world import World


@pytest.fixture
def world():
    topo = Topology.balanced(regions=2, countries=2, cities=2, sites=2)
    return World(topology=topo, seed=7)


def test_host_creation_and_lookup(world):
    host = world.host("alpha", "r0/c0/m0/s0")
    assert world.get_host("alpha") is host
    with pytest.raises(ValueError):
        world.host("alpha", "r0/c0/m0/s1")


# -- UDP -------------------------------------------------------------------


def test_udp_round_trip(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r1/c0/m0/s0")
    received = []

    def receiver():
        sock = b.udp_socket(5000)
        datagram = yield sock.recv()
        received.append((datagram.payload, world.now))

    def sender():
        sock = a.udp_socket()
        sock.send_to(b, 5000, {"op": "ping"})
        yield world.sim.timeout(0)

    b.spawn(receiver())
    a.spawn(sender())
    world.run()
    assert received and received[0][0] == {"op": "ping"}
    assert received[0][1] > 0.150  # at least one world-level latency


def test_udp_to_unbound_port_is_silently_dropped(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")
    sock = a.udp_socket()
    sock.send_to(b, 9999, "nobody home")
    world.run()  # no error raised


def test_udp_duplicate_bind_rejected(world):
    a = world.host("a", "r0/c0/m0/s0")
    a.udp_socket(5000)
    with pytest.raises(TransportError):
        a.udp_socket(5000)


def test_udp_loss(world):
    world.network.params.loss[Level.WORLD] = 1.0
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r1/c0/m0/s0")
    received = []

    def receiver():
        sock = b.udp_socket(5000)
        datagram = yield sock.recv()
        received.append(datagram)

    b.spawn(receiver())
    a.udp_socket().send_to(b, 5000, "lost")
    world.run(until=10.0)
    assert not received
    assert world.network.meter.dropped_messages == 1


# -- TCP -------------------------------------------------------------------


def test_connect_and_exchange(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c1/m0/s0")
    listener = b.listen(80)
    transcript = []

    def server():
        conn = yield listener.accept()
        request = yield conn.recv()
        transcript.append(("server got", request))
        conn.send("response:" + request)

    def client():
        conn = yield from a.connect(b, 80)
        conn.send("hello")
        reply = yield conn.recv()
        transcript.append(("client got", reply))
        conn.close()

    b.spawn(server())
    proc = a.spawn(client())
    world.run_until(proc, limit=100)
    assert ("server got", "hello") in transcript
    assert ("client got", "response:hello") in transcript


def test_connect_costs_a_round_trip(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r1/c0/m0/s0")
    b.listen(80)

    def client():
        conn = yield from a.connect(b, 80)
        return world.now

    proc = a.spawn(client())
    connected_at = world.run_until(proc, limit=100)
    assert connected_at >= world.network.rtt(a.site, b.site)


def test_connect_refused_when_no_listener(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")

    def client():
        try:
            yield from a.connect(b, 81)
        except ConnectRefused:
            return "refused"

    proc = a.spawn(client())
    assert world.run_until(proc, limit=100) == "refused"


def test_connect_timeout_to_down_host(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")
    b.listen(80)
    b.crash()

    def client():
        try:
            yield from a.connect(b, 80, timeout=1.0)
        except ConnectTimeout:
            return "timeout"

    proc = a.spawn(client())
    assert world.run_until(proc, limit=100) == "timeout"


def test_fifo_preserved_across_message_sizes(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r1/c0/m0/s0")
    listener = b.listen(80)
    received = []

    def server():
        conn = yield listener.accept()
        for _ in range(2):
            msg = yield conn.recv()
            received.append(msg["tag"])

    def client():
        conn = yield from a.connect(b, 80)
        conn.send({"tag": "big"}, size=5_000_000)
        conn.send({"tag": "small"}, size=10)

    b.spawn(server())
    a.spawn(client())
    world.run()
    assert received == ["big", "small"]


def test_recv_after_close_raises(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")
    listener = b.listen(80)

    def server():
        conn = yield listener.accept()
        msg = yield conn.recv()
        assert msg == "bye"
        try:
            yield conn.recv()
        except ConnectionClosed:
            return "eof"

    def client():
        conn = yield from a.connect(b, 80)
        conn.send("bye")
        conn.close()

    server_proc = b.spawn(server())
    a.spawn(client())
    assert world.run_until(server_proc, limit=100) == "eof"


def test_send_after_close_raises(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")
    b.listen(80)

    def client():
        conn = yield from a.connect(b, 80)
        conn.close()
        try:
            conn.send("too late")
        except ConnectionClosed:
            return "rejected"

    proc = a.spawn(client())
    assert world.run_until(proc, limit=100) == "rejected"


def test_crash_breaks_connections_and_kills_processes(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")
    listener = b.listen(80)
    outcome = []

    def server():
        conn = yield listener.accept()
        while True:
            yield conn.recv()

    def client():
        conn = yield from a.connect(b, 80)
        conn.send("one")
        yield world.sim.timeout(1.0)
        b.crash()
        try:
            yield conn.recv()
        except ConnectionClosed:
            outcome.append("client saw break")

    server_proc = b.spawn(server())
    a.spawn(client())
    world.run(until=50)
    assert outcome == ["client saw break"]
    assert not server_proc.alive


def test_spawn_on_crashed_host_rejected(world):
    a = world.host("a", "r0/c0/m0/s0")
    a.crash()
    with pytest.raises(HostDown):
        a.spawn(iter(()))


def test_restart_allows_new_daemons(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")
    b.listen(80)
    b.crash()
    b.restart()
    # Old listener is gone; binding the port again must work.
    listener = b.listen(80)

    def server():
        conn = yield listener.accept()
        msg = yield conn.recv()
        return msg

    def client():
        conn = yield from a.connect(b, 80)
        conn.send("after reboot")

    server_proc = b.spawn(server())
    a.spawn(client())
    assert world.run_until(server_proc, limit=100) == "after reboot"


def test_bytes_accounting_on_connection(world):
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")
    listener = b.listen(80)
    sizes = {}

    def server():
        conn = yield listener.accept()
        yield conn.recv()
        sizes["received"] = conn.bytes_received

    def client():
        conn = yield from a.connect(b, 80)
        sizes["sent"] = conn.send("payload", size=1000)

    b.spawn(server())
    a.spawn(client())
    world.run()
    assert sizes["sent"] == sizes["received"] > 1000


def test_connection_fifo_preserved_under_jitter():
    # Regression: delivery used to recompute the transfer delay
    # independently of the FIFO pacing clock (a second jitter draw,
    # or just one float-rounding ULP), letting a small message sent
    # after a large one arrive first.  Delivery now reuses the pacing
    # clock's exact arrival timestamp.
    for seed in range(30):
        world = World(topology=Topology.balanced(2, 1, 1, 2),
                      params=LinkParameters(jitter_fraction=0.3),
                      seed=seed)
        a = world.host("a", "r0/c0/m0/s0")
        b = world.host("b", "r1/c0/m0/s1")
        listener = b.listen(7000)
        received = []

        def sender():
            conn = yield from a.connect(b, 7000)
            conn.send("first", size=200_000)
            conn.send("second", size=10)
            yield world.sim.timeout(60.0)

        def receiver():
            conn = yield listener.accept()
            for _ in range(2):
                message = yield conn.recv()
                received.append(message)

        b.spawn(receiver())
        proc = a.spawn(sender())
        world.run_until(proc, limit=1000)
        assert received == ["first", "second"], "seed %d" % seed


def test_recv_backlog_fast_path_preserves_fifo(world):
    """A receiver that falls behind drains its backlog in exact send
    order — the direct hand-off path must not reorder or drop."""
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")
    listener = b.listen(7000)
    received = []

    def sender():
        conn = yield from a.connect(b, 7000)
        for index in range(8):
            conn.send(index)
        yield world.sim.timeout(5.0)   # everything lands; backlog builds
        conn.close()

    def receiver():
        conn = yield listener.accept()
        yield world.sim.timeout(4.0)   # let the backlog accumulate
        assert len(conn._inbox) == 8   # all eight queued, nobody waiting
        while True:
            try:
                message = yield conn.recv()
            except ConnectionClosed:
                return
            received.append(message)

    b.spawn(receiver())
    proc = a.spawn(sender())
    world.run_until(proc, limit=1000)
    world.run()
    assert received == list(range(8))


def test_recv_backlog_eof_repeats_for_every_recv(world):
    """EOF behind a backlog: queued messages drain first, then every
    subsequent recv() — fast path or slow — fails with
    ConnectionClosed."""
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r0/c0/m0/s1")
    listener = b.listen(7000)
    outcomes = []

    def sender():
        conn = yield from a.connect(b, 7000)
        conn.send("only")
        conn.close()
        yield world.sim.timeout(0)

    def receiver():
        conn = yield listener.accept()
        yield world.sim.timeout(5.0)   # message and EOF both queued
        outcomes.append((yield conn.recv()))
        for _ in range(2):             # EOF stays in place for repeats
            try:
                yield conn.recv()
            except ConnectionClosed:
                outcomes.append("closed")

    a.spawn(sender())
    proc = b.spawn(receiver())
    world.run_until(proc, limit=1000)
    assert outcomes == ["only", "closed", "closed"]


def test_abrupt_break_eof_outranks_stragglers(world):
    """After an abrupt break (peer crash), EOF sticks at the inbox
    head on both the parked-getter and backlog recv paths: every
    subsequent recv fails, and a message still in flight at crash
    time is dropped, not resurrected behind the failure."""
    a = world.host("a", "r0/c0/m0/s0")
    b = world.host("b", "r1/c0/m0/s0")
    listener = b.listen(7000)
    outcomes = []

    def server():
        conn = yield listener.accept()
        # ~3.5s in flight at world separation: still traveling when
        # the host dies.
        conn.send("straggler", size=5_000_000)
        yield world.sim.timeout(1000.0)  # killed by the crash

    def receiver():
        conn = yield from a.connect(b, 7000)
        for _ in range(3):
            try:
                message = yield conn.recv()
                outcomes.append(message)
            except ConnectionClosed:
                outcomes.append("closed")

    def controller():
        yield world.sim.timeout(1.0)     # after the send, before arrival
        b.crash()

    b.spawn(server())
    world.sim.process(controller())
    proc = a.spawn(receiver())
    world.run_until(proc, limit=100)
    world.run()
    assert outcomes == ["closed", "closed", "closed"]
